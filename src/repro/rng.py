"""Seeded randomness for reproducible experiments.

Every random choice in the library — Laplace noise for the mechanisms,
random graph generation, random workloads — flows through :class:`Rng`,
a thin wrapper around :class:`numpy.random.Generator`.  Constructing all
experiments from an explicit seed makes every number in EXPERIMENTS.md
regenerable bit-for-bit.

The Laplace distribution (Definition 3.1 of the paper) is the noise
distribution for all mechanisms in the paper: ``Lap(b)`` has density
``p(x) = exp(-|x|/b) / (2b)`` and the tail bound
``Pr[|Y| > t * b] = e^{-t}``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

import numpy as np

from .exceptions import PrivacyError

T = TypeVar("T")

__all__ = ["Rng", "laplace_tail_bound", "laplace_quantile"]


def laplace_tail_bound(scale: float, t: float) -> float:
    """Return ``Pr[|Y| > t * scale]`` for ``Y ~ Lap(scale)``.

    This is the exact tail probability ``e^{-t}`` quoted after
    Definition 3.1 in the paper.
    """
    if scale <= 0:
        raise ValueError(f"Laplace scale must be positive, got {scale}")
    if t < 0:
        raise ValueError(f"tail multiple must be nonnegative, got {t}")
    return float(np.exp(-t))


def laplace_quantile(scale: float, gamma: float) -> float:
    """Return the magnitude ``m`` with ``Pr[|Y| > m] = gamma``.

    Inverting the tail bound gives ``m = scale * ln(1/gamma)``; this is
    the per-variable high-probability magnitude used in every union-bound
    argument of the paper (e.g. Theorem 5.5's ``(1/eps) log(E/gamma)``).
    """
    if scale <= 0:
        raise ValueError(f"Laplace scale must be positive, got {scale}")
    if not 0 < gamma <= 1:
        raise ValueError(f"gamma must be in (0, 1], got {gamma}")
    return float(scale * np.log(1.0 / gamma))


class Rng:
    """Reproducible random number generator.

    Parameters
    ----------
    seed:
        Any value accepted by :func:`numpy.random.default_rng`.  Passing
        the same seed reproduces the identical stream of samples.
    """

    def __init__(self, seed: int | None = None) -> None:
        self._seed = seed
        self._gen = np.random.default_rng(seed)

    @property
    def seed(self) -> int | None:
        """The seed this generator was constructed with (``None`` if OS
        entropy was used)."""
        return self._seed

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator, for interop."""
        return self._gen

    def spawn(self) -> "Rng":
        """Return an independent child generator.

        Children derived from the same parent in the same order are
        themselves reproducible, so experiments can hand independent
        streams to sub-tasks without sharing state.
        """
        child = Rng.__new__(Rng)
        child._seed = None
        child._gen = np.random.default_rng(self._gen.integers(0, 2**63))
        return child

    # ------------------------------------------------------------------
    # Laplace sampling (Definition 3.1)
    # ------------------------------------------------------------------

    def laplace(self, scale: float) -> float:
        """Sample a single ``Lap(scale)`` variable.

        Raises :class:`~repro.exceptions.PrivacyError` on a non-positive
        scale, since a non-positive Laplace scale always indicates a
        privacy-parameter bug upstream.
        """
        if scale <= 0:
            raise PrivacyError(f"Laplace scale must be positive, got {scale}")
        return float(self._gen.laplace(loc=0.0, scale=scale))

    def laplace_vector(self, scale: float, size: int) -> np.ndarray:
        """Sample ``size`` i.i.d. ``Lap(scale)`` variables as an array."""
        if scale <= 0:
            raise PrivacyError(f"Laplace scale must be positive, got {scale}")
        if size < 0:
            raise ValueError(f"size must be nonnegative, got {size}")
        return self._gen.laplace(loc=0.0, scale=scale, size=size)

    # ------------------------------------------------------------------
    # General-purpose sampling used by generators and workloads
    # ------------------------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Sample uniformly from ``[low, high)``."""
        return float(self._gen.uniform(low, high))

    def uniform_vector(self, low: float, high: float, size: int) -> np.ndarray:
        """Sample ``size`` i.i.d. uniform values from ``[low, high)``."""
        return self._gen.uniform(low, high, size=size)

    def integer(self, low: int, high: int) -> int:
        """Sample an integer uniformly from ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def bit(self) -> int:
        """Sample a fair bit from ``{0, 1}``."""
        return int(self._gen.integers(0, 2))

    def bits(self, size: int) -> list[int]:
        """Sample ``size`` fair bits as a list of ints."""
        return [int(b) for b in self._gen.integers(0, 2, size=size)]

    def choice(self, items: Sequence[T]) -> T:
        """Choose one item uniformly from a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[int(self._gen.integers(0, len(items)))]

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """Choose ``count`` distinct items uniformly without replacement."""
        if count > len(items):
            raise ValueError(
                f"cannot sample {count} items from a sequence of {len(items)}"
            )
        indices = self._gen.choice(len(items), size=count, replace=False)
        return [items[int(i)] for i in indices]

    def shuffle(self, items: list[T]) -> None:
        """Shuffle a list in place."""
        self._gen.shuffle(items)  # type: ignore[arg-type]

    def exponential(self, scale: float) -> float:
        """Sample an exponential variable with the given scale."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return float(self._gen.exponential(scale))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        """Sample a normal variable."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return float(self._gen.normal(loc, scale))

    def permutation(self, n: int) -> list[int]:
        """Return a uniformly random permutation of ``range(n)``."""
        return [int(i) for i in self._gen.permutation(n)]

    def __repr__(self) -> str:
        return f"Rng(seed={self._seed!r})"
