"""repro.engine — the vectorized CSR graph-kernel backend.

A thin compute layer between the graph model (:mod:`repro.graphs`) and
every mechanism that post-processes noisy weights with an *exact*
shortest-path computation.  Three pieces:

* :mod:`repro.engine.csr` — :class:`CSRGraph`, a frozen
  integer-indexed compilation of a
  :class:`~repro.graphs.graph.WeightedGraph` (cached, invalidated by
  the graph's version counters, cheaply re-weightable);
* :mod:`repro.engine.kernels` — index-based Dijkstra, vectorized
  multi-source relaxation, min-plus repeated-squaring APSP, vectorized
  Laplace perturbation, predecessor path reconstruction;
* :mod:`repro.engine.backends` — the ``"python"`` / ``"numpy"``
  backend registry with an (|V|, |E|) auto-selection heuristic,
  threaded through the public API as ``backend=`` parameters and the
  CLI's ``--backend`` flag.
"""

from . import kernels
from .backends import (
    EngineBackend,
    NumpyBackend,
    PythonBackend,
    auto_select,
    available_backends,
    get_backend,
    kernel_span,
    register_backend,
    resolve_backend,
)
from .csr import CSRGraph, compile_csr

__all__ = [
    "CSRGraph",
    "compile_csr",
    "kernels",
    "EngineBackend",
    "PythonBackend",
    "NumpyBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "auto_select",
    "resolve_backend",
    "kernel_span",
]
