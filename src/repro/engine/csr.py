"""Compiled CSR form of a :class:`~repro.graphs.graph.WeightedGraph`.

Every exact-recomputation hot path in the library (Algorithm 3's
post-processing, the Section-4 baselines, Algorithm 2's covering
distances, the serving synopses) bottoms out in shortest-path sweeps
over the same public topology.  :class:`CSRGraph` compiles that
topology once into frozen integer-indexed numpy arrays — the standard
compressed-sparse-row layout of ``indptr`` / ``indices`` / ``weights``
— so the kernels in :mod:`repro.engine.kernels` can run over flat
arrays instead of dict-of-dicts adjacency.

Undirected edges are stored as two directed arcs.  ``arc_edge`` maps
every arc back to the index of its canonical edge (the
:meth:`~repro.graphs.graph.WeightedGraph.edge_list` order), which is
what makes re-weighting cheap: a new weight function is one fancy-index
gather, no topology work (:meth:`CSRGraph.with_weights`).

Compilation is cached on the source graph and invalidated by the
graph's version counters: a topology bump forces a full rebuild, while
a weights-only change reuses the frozen structure and only regathers
the weight array.  That cheap path covers both in-place
``set_weight`` mutation and the per-epoch refresh pattern of
:mod:`repro.serving` — ``WeightedGraph.with_weights`` hands the
compiled structure of an already-compiled graph to its re-weighted
clones.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import EngineError, VertexNotFoundError, WeightError
from ..graphs.graph import Vertex, WeightedGraph

__all__ = ["CSRGraph", "compile_csr"]

#: Attribute under which the compiled CSR is cached on the source graph.
_CACHE_ATTR = "_engine_csr_cache"


class _CSRStructure:
    """The frozen topology half of a compiled graph.

    Shared (never copied) between all re-weightings of the same
    topology; everything here is independent of the private weights.
    """

    __slots__ = (
        "directed",
        "indptr",
        "indices",
        "arc_edge",
        "vertices",
        "index",
        "_incoming",
    )

    def __init__(
        self,
        directed: bool,
        indptr: np.ndarray,
        indices: np.ndarray,
        arc_edge: np.ndarray,
        vertices: Tuple[Vertex, ...],
        index: Dict[Vertex, int],
    ) -> None:
        self.directed = directed
        self.indptr = indptr
        self.indices = indices
        self.arc_edge = arc_edge
        self.vertices = vertices
        self.index = index
        self._incoming: Tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def incoming(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The incoming-arc view ``(in_indptr, in_tails, in_order)``.

        ``in_order`` permutes the arc arrays into by-head order, so the
        vectorized relaxation kernel can gather each arc's weight as
        ``weights[in_order]``.  Computed lazily and cached — it is a
        pure function of the structure.
        """
        if self._incoming is None:
            n = len(self.vertices)
            heads = self.indices
            tails = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(self.indptr)
            )
            order = np.argsort(heads, kind="stable")
            in_indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(heads, minlength=n), out=in_indptr[1:]
            )
            self._incoming = (in_indptr, tails[order], order)
        return self._incoming


def _build_structure(graph: WeightedGraph) -> _CSRStructure:
    vertices = tuple(graph.vertex_list())
    index = {v: i for i, v in enumerate(vertices)}
    n = len(vertices)
    m = graph.num_edges
    arcs_per_edge = 1 if graph.directed else 2
    num_arcs = m * arcs_per_edge
    tails = np.empty(num_arcs, dtype=np.int64)
    heads = np.empty(num_arcs, dtype=np.int64)
    arc_edge = np.empty(num_arcs, dtype=np.int64)
    for e, (u, v, _) in enumerate(graph.edges()):
        ui, vi = index[u], index[v]
        pos = e * arcs_per_edge
        tails[pos], heads[pos], arc_edge[pos] = ui, vi, e
        if not graph.directed:
            tails[pos + 1], heads[pos + 1] = vi, ui
            arc_edge[pos + 1] = e
    order = np.argsort(tails, kind="stable")
    indptr = np.zeros(n + 1, dtype=np.int64)
    if num_arcs:
        np.cumsum(np.bincount(tails, minlength=n), out=indptr[1:])
    return _CSRStructure(
        graph.directed,
        indptr,
        heads[order],
        arc_edge[order],
        vertices,
        index,
    )


class CSRGraph:
    """A frozen, integer-indexed compilation of a weighted graph.

    Vertices are mapped to contiguous indices in insertion order
    (:meth:`index_of` / :meth:`vertex_at`); arc ``a`` runs from the
    vertex owning slot ``a`` of ``indptr`` to ``indices[a]`` with weight
    ``weights[a]``.  Instances are immutable — re-weighting produces a
    new instance sharing the structure arrays.
    """

    __slots__ = ("_structure", "_weights", "_edge_weights")

    def __init__(
        self,
        structure: _CSRStructure,
        edge_weights: np.ndarray,
    ) -> None:
        self._structure = structure
        self._edge_weights = edge_weights
        self._weights = edge_weights[structure.arc_edge]
        self._weights.setflags(write=False)
        self._edge_weights.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: WeightedGraph, cache: bool = True) -> "CSRGraph":
        """Compile a :class:`~repro.graphs.graph.WeightedGraph`.

        With ``cache`` (the default) the compiled instance is memoized
        on the graph object and invalidated by its
        :attr:`~repro.graphs.graph.WeightedGraph.topology_version` /
        :attr:`~repro.graphs.graph.WeightedGraph.weights_version`
        counters: an unchanged graph returns the same object, a
        weights-only change reuses the frozen structure arrays and just
        regathers the weight vector.
        """
        cached = getattr(graph, _CACHE_ATTR, None)
        topo, wver = graph.topology_version, graph.weights_version
        if cached is not None:
            cached_topo, cached_wver, csr = cached
            if cached_topo == topo:
                if cached_wver == wver:
                    return csr
                # Cheap path: same structure, fresh weights.
                csr = cls(csr._structure, graph.weight_vector())
                if cache:
                    setattr(graph, _CACHE_ATTR, (topo, wver, csr))
                return csr
        csr = cls(_build_structure(graph), graph.weight_vector())
        if cache:
            setattr(graph, _CACHE_ATTR, (topo, wver, csr))
        return csr

    def with_weights(
        self, edge_weights: np.ndarray | Sequence[float]
    ) -> "CSRGraph":
        """A re-weighted view sharing this instance's structure.

        ``edge_weights`` is aligned with the source graph's
        :meth:`~repro.graphs.graph.WeightedGraph.edge_list` order (one
        value per canonical edge, not per arc) — the same convention as
        :meth:`WeightedGraph.weight_vector`.
        """
        values = np.asarray(edge_weights, dtype=float)
        if values.shape != (self.num_edges,):
            raise WeightError(
                f"expected {self.num_edges} edge weights, got shape "
                f"{values.shape}"
            )
        return CSRGraph(self._structure, values.copy())

    # ------------------------------------------------------------------
    # Vertex <-> index mapping
    # ------------------------------------------------------------------

    def index_of(self, v: Vertex) -> int:
        """The contiguous index assigned to a vertex."""
        try:
            return self._structure.index[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def vertex_at(self, i: int) -> Vertex:
        """The vertex owning a contiguous index."""
        vertices = self._structure.vertices
        if not 0 <= i < len(vertices):
            raise EngineError(
                f"vertex index {i} out of range [0, {len(vertices)})"
            )
        return vertices[i]

    def indices_of(self, vs: Sequence[Vertex]) -> np.ndarray:
        """Vectorized :meth:`index_of` over a vertex sequence."""
        return np.asarray([self.index_of(v) for v in vs], dtype=np.int64)

    @property
    def vertices(self) -> Tuple[Vertex, ...]:
        """All vertices, ordered by their contiguous indices."""
        return self._structure.vertices

    # ------------------------------------------------------------------
    # Array views
    # ------------------------------------------------------------------

    @property
    def directed(self) -> bool:
        """Whether the compiled graph was directed."""
        return self._structure.directed

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._structure.vertices)

    @property
    def num_edges(self) -> int:
        """Number of canonical edges (arcs / 2 when undirected)."""
        return len(self._edge_weights)

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs in the CSR arrays."""
        return len(self._structure.indices)

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer: arcs of vertex ``i`` occupy
        ``indptr[i]:indptr[i+1]``."""
        return self._structure.indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices: the head vertex of each arc."""
        return self._structure.indices

    @property
    def weights(self) -> np.ndarray:
        """Per-arc weights, aligned with :attr:`indices` (read-only)."""
        return self._weights

    @property
    def edge_weights(self) -> np.ndarray:
        """Per-canonical-edge weights in ``edge_list`` order
        (read-only)."""
        return self._edge_weights

    @property
    def arc_edge(self) -> np.ndarray:
        """For each arc, the index of its canonical edge."""
        return self._structure.arc_edge

    def incoming(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Incoming-arc view for pull-style relaxation kernels; see
        :meth:`_CSRStructure.incoming`."""
        return self._structure.incoming()

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"CSRGraph({kind}, n={self.n}, arcs={self.num_arcs})"


def compile_csr(graph: WeightedGraph, cache: bool = True) -> CSRGraph:  # privlint: ignore[PL1] public compilation entry point for benches/tests; production callers reach CSRGraph.from_graph under a release mechanism
    """Module-level alias for :meth:`CSRGraph.from_graph`."""
    return CSRGraph.from_graph(graph, cache=cache)
