"""Index-based graph kernels over :class:`~repro.engine.csr.CSRGraph`.

These are the compute primitives behind the ``"numpy"`` backend:

* :func:`sssp_dijkstra` — single-source Dijkstra over the CSR arrays
  with an integer binary heap; bit-identical distances to the
  dict-based reference (both compute the minimum over left-associated
  floating-point path sums).
* :func:`multi_source_distances` — the all-pairs workhorse.  When
  scipy is importable it runs ``scipy.sparse.csgraph.dijkstra``
  directly over the CSR arrays (zero-copy); otherwise it falls back to
  :func:`relaxation_distances`, a pull-style vectorized Bellman–Ford —
  one ``minimum.reduceat`` sweep over every arc per round, all sources
  in a block simultaneously.  Either way every entry equals the
  reference Dijkstra value exactly: all three computations are minima
  over left-associated floating-point path sums, and floating-point
  ``min`` is exact, so the numpy backend agrees with the pure-Python
  one bit for bit.
* :func:`min_plus_apsp` — min-plus matrix repeated squaring for small
  dense graphs.  Doubling re-associates path sums, so this kernel is
  exact on integer-valued weights and ulp-close otherwise; it is
  exposed for dense workloads rather than wired into the default
  dispatch.
* :func:`laplace_perturb` — vectorized Laplace perturbation of a
  weight array (the release-side hot loop).
* :func:`path_from_predecessors` — predecessor-array path
  reconstruction.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import (
    DisconnectedGraphError,
    EngineError,
    GraphError,
    WeightError,
)
from ..rng import Rng
from .csr import CSRGraph

__all__ = [
    "sssp_dijkstra",
    "multi_source_distances",
    "relaxation_distances",
    "bellman_ford_distances",
    "min_plus_apsp",
    "dense_distance_matrix",
    "laplace_perturb",
    "path_from_predecessors",
]

#: Target element count per relaxation block — bounds the (sources x
#: arcs) scratch matrix to a few tens of MB.
_BLOCK_ELEMENTS = 4_000_000

try:  # Optional accelerator: scipy's C Dijkstra over the same arrays.
    from scipy.sparse import csr_matrix as _scipy_csr_matrix
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra
except ImportError:  # pragma: no cover - exercised on scipy-free installs
    _scipy_csr_matrix = None
    _scipy_dijkstra = None


def sssp_dijkstra(
    csr: CSRGraph, source: int, target: int | None = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Single-source Dijkstra over CSR arrays.

    Returns ``(dist, pred)``: ``dist[v]`` is the distance of every
    *settled* vertex (``inf`` otherwise), ``pred[v]`` the predecessor
    index on a shortest path (``-1`` for the source and unreached
    vertices).  With ``target`` given the search stops once the target
    settles.  Raises :class:`~repro.exceptions.WeightError` when a
    negative arc is scanned, mirroring the reference implementation.
    """
    n = csr.n
    if not 0 <= source < n:
        raise EngineError(f"source index {source} out of range [0, {n})")
    # Plain-Python views: list indexing in the hot loop is several
    # times faster than ndarray scalar indexing.
    indptr = csr.indptr.tolist()
    indices = csr.indices.tolist()
    weights = csr.weights.tolist()
    dist = np.full(n, np.inf)
    pred = np.full(n, -1, dtype=np.int64)
    settled = bytearray(n)
    tentative = [float("inf")] * n
    tentative[source] = 0.0
    heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
    counter = 0
    while heap:
        d, _, v = heapq.heappop(heap)
        if settled[v]:
            continue
        settled[v] = 1
        dist[v] = d
        if v == target:
            break
        for a in range(indptr[v], indptr[v + 1]):
            w = weights[a]
            if w < 0:
                raise WeightError(
                    f"Dijkstra requires nonnegative weights; edge "
                    f"({csr.vertex_at(v)!r}, {csr.vertex_at(indices[a])!r}) "
                    f"has weight {w}"
                )
            u = indices[a]
            candidate = d + w
            if not settled[u] and candidate < tentative[u]:
                tentative[u] = candidate
                pred[u] = v
                counter += 1
                heapq.heappush(heap, (candidate, counter, u))
    return dist, pred


def multi_source_distances(
    csr: CSRGraph,
    sources: Sequence[int] | np.ndarray,
    allow_negative: bool = False,
) -> np.ndarray:
    """Exact distances from every source index, vectorized.

    Returns a ``(len(sources), n)`` float matrix with ``inf`` for
    unreachable targets.  Dispatches to scipy's C Dijkstra when scipy
    is importable (zero-copy over the CSR arrays) and to
    :func:`relaxation_distances` otherwise; both match the reference
    Dijkstra bit for bit.

    Without ``allow_negative`` a negative weight raises
    :class:`~repro.exceptions.WeightError` (matching
    ``all_pairs_dijkstra``); with it, the relaxation kernel is used
    and non-convergence after ``n`` rounds raises
    :class:`~repro.exceptions.GraphError` (negative cycle).
    """
    n = csr.n
    src = np.asarray(sources, dtype=np.int64)
    if src.size and (src.min() < 0 or src.max() >= n):
        raise EngineError(f"source index out of range [0, {n})")
    if not allow_negative and csr.num_arcs and float(csr.weights.min()) < 0:
        raise WeightError(
            "multi-source kernel requires nonnegative weights; pass "
            "allow_negative=True for Bellman-Ford semantics"
        )
    if (
        not allow_negative
        and _scipy_dijkstra is not None
        and src.size
        and csr.num_arcs
    ):
        matrix = _scipy_csr_matrix(
            (csr.weights, csr.indices, csr.indptr), shape=(n, n)
        )
        return _scipy_dijkstra(matrix, directed=True, indices=src)
    return relaxation_distances(csr, src, allow_negative=allow_negative)


def relaxation_distances(
    csr: CSRGraph,
    sources: Sequence[int] | np.ndarray,
    allow_negative: bool = False,
) -> np.ndarray:
    """Pure-numpy multi-source distances (the scipy-free fallback).

    Runs pull-style Bellman–Ford rounds — for every vertex with
    incoming arcs, one ``np.minimum.reduceat`` over the gathered tail
    distances — until a round changes nothing.  With nonnegative
    weights the fixpoint matches Dijkstra bit for bit; with
    ``allow_negative``, non-convergence after ``n`` rounds raises
    :class:`~repro.exceptions.GraphError` (negative cycle).
    """
    n = csr.n
    src = np.asarray(sources, dtype=np.int64)
    if src.size and (src.min() < 0 or src.max() >= n):
        raise EngineError(f"source index out of range [0, {n})")
    dist = np.full((src.size, n), np.inf)
    dist[np.arange(src.size), src] = 0.0
    if csr.num_arcs == 0 or src.size == 0:
        return dist
    in_indptr, in_tails, in_order = csr.incoming()
    in_weights = csr.weights[in_order]
    nz = np.flatnonzero(np.diff(in_indptr) > 0)
    starts = in_indptr[nz]
    block = max(1, _BLOCK_ELEMENTS // max(csr.num_arcs, 1))
    for lo in range(0, src.size, block):
        d = dist[lo : lo + block]
        for _ in range(n + 1):
            candidates = d[:, in_tails] + in_weights
            mins = np.minimum.reduceat(candidates, starts, axis=1)
            improved = mins < d[:, nz]
            if not improved.any():
                break
            d[:, nz] = np.where(improved, mins, d[:, nz])
        else:
            raise GraphError("graph contains a negative cycle")
    return dist


def bellman_ford_distances(csr: CSRGraph, source: int) -> np.ndarray:  # privlint: ignore[PL1] negative-weight reference kernel exercised by parity tests/benches; in-tree releases dispatch via multi_source_distances
    """Single-source distances permitting negative weights.

    The vectorized counterpart of
    :func:`repro.algorithms.shortest_paths.bellman_ford` (distances
    only; raises on a negative cycle).
    """
    if not csr.directed and csr.num_arcs and float(csr.weights.min()) < 0:
        raise GraphError(
            "negative undirected edge forms a negative cycle"
        )
    return relaxation_distances(csr, [source], allow_negative=True)[0]


def dense_distance_matrix(csr: CSRGraph) -> np.ndarray:  # privlint: ignore[PL1] min-plus seed matrix for the bench-only APSP kernel; exercised by parity tests/benches
    """The one-hop min-plus matrix: ``D[i, j]`` is the arc weight
    (``inf`` if absent), with a zero diagonal."""
    n = csr.n
    dense = np.full((n, n), np.inf)
    np.fill_diagonal(dense, 0.0)
    if csr.num_arcs:
        tails = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(csr.indptr)
        )
        dense[tails, csr.indices] = csr.weights
    return dense


def min_plus_apsp(
    dense: np.ndarray, row_block: int = 32
) -> np.ndarray:
    """All-pairs distances by min-plus repeated squaring.

    ``dense`` is the one-hop matrix from :func:`dense_distance_matrix`.
    ``ceil(log2(n-1))`` squarings suffice; each squaring is computed in
    row blocks to bound the broadcast scratch at ``row_block * n^2``
    floats.  O(n^3 log n) work but fully vectorized — intended for
    small dense graphs (hundreds of vertices).
    """
    d = np.array(dense, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise EngineError(
            f"min-plus kernel needs a square matrix, got {d.shape}"
        )
    n = d.shape[0]
    if n <= 1:
        return d
    squarings = max(int(np.ceil(np.log2(n - 1))), 1) if n > 2 else 1
    result = np.empty_like(d)
    for _ in range(squarings):
        for lo in range(0, n, row_block):
            hi = min(lo + row_block, n)
            result[lo:hi] = np.min(
                d[lo:hi, :, None] + d[None, :, :], axis=1
            )
        if np.array_equal(result, d):
            break
        d, result = result, d
    return d


def laplace_perturb(
    weights: np.ndarray,
    scale: float,
    rng: Rng,
    clamp_at_zero: bool = False,
) -> np.ndarray:
    """Add i.i.d. ``Lap(scale)`` noise to a weight array in one
    vectorized draw, optionally clamping at zero (post-processing; see
    :mod:`repro.core.synthetic_graph` for why clamping preserves the
    error bound)."""
    values = np.asarray(weights, dtype=float)
    noisy = values + rng.laplace_vector(scale, values.size).reshape(
        values.shape
    )
    if clamp_at_zero:
        noisy = noisy.clip(min=0.0)
    return noisy


def path_from_predecessors(
    pred: np.ndarray, source: int, target: int
) -> List[int]:
    """Rebuild the index path from a :func:`sssp_dijkstra` predecessor
    array."""
    path = [target]
    while path[-1] != source:
        p = int(pred[path[-1]])
        if p < 0:
            raise DisconnectedGraphError(
                f"no path from index {source} to index {target}"
            )
        path.append(p)
    path.reverse()
    return path
