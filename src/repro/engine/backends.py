"""Backend registry: who runs the exact shortest-path hot paths.

Every public entry point that recomputes exact distances
(:func:`repro.algorithms.shortest_paths.dijkstra`,
:func:`~repro.algorithms.shortest_paths.all_pairs_dijkstra`, the
release classes, the serving synopses) dispatches through a *backend*:

* ``"python"`` — the reference dict-of-dicts implementation from
  :mod:`repro.algorithms.shortest_paths`; lowest constant factors on
  tiny graphs, O(interpreted everything) beyond that.
* ``"numpy"`` — compiles the graph to a cached
  :class:`~repro.engine.csr.CSRGraph` and runs the vectorized kernels
  of :mod:`repro.engine.kernels`.  Distances are bit-identical to the
  python backend (both are minima over left-associated floating-point
  path sums).

``resolve_backend(None | "auto", graph, ...)`` applies the
auto-selection heuristic: vectorization has fixed per-call overhead
(CSR compilation is cached, but index mapping and array setup are
not), so small inputs stay on the python backend while anything with
real work — all-pairs sweeps on dozens of vertices, single-source
runs on thousands of arcs — moves to numpy.  Both thresholds depend
only on public quantities (|V|, |E|), so the choice is
data-independent.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, Iterable, Tuple

import numpy as np

from ..exceptions import EngineError
from ..graphs.graph import Vertex, WeightedGraph
from ..telemetry import get_telemetry
from .csr import CSRGraph
from .kernels import multi_source_distances, sssp_dijkstra

__all__ = [
    "EngineBackend",
    "PythonBackend",
    "NumpyBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "auto_select",
    "resolve_backend",
    "kernel_span",
    "APSP_NUMPY_MIN_VERTICES",
    "SSSP_NUMPY_MIN_EDGES",
]

#: All-pairs sweeps amortize the vectorized setup almost immediately.
APSP_NUMPY_MIN_VERTICES = 32

#: Single-source runs only win once the relaxation loop dominates.
SSSP_NUMPY_MIN_EDGES = 2048


def kernel_span(name: str, **attributes: object):
    """A tracer span over one kernel call — but only when the current
    bundle carries a live phase profiler.  Kernel calls are the exact
    sweeps' innermost hot path, so they are never traced by default;
    with a profiler attached they become ``engine.*`` phases in the
    attribution table."""
    telemetry = get_telemetry()
    if telemetry.profiler.enabled:
        return telemetry.span(name, **attributes)
    return nullcontext()


class EngineBackend:
    """One implementation of the exact shortest-path surface.

    Both methods speak the library's dict convention — vertices are the
    caller's hashable labels, unreachable targets are simply absent —
    so swapping backends never changes a caller-visible type.
    """

    name: str = ""

    def sssp(
        self,
        graph: WeightedGraph,
        source: Vertex,
        target: Vertex | None = None,
    ) -> Tuple[Dict[Vertex, float], Dict[Vertex, Vertex]]:
        """Single-source distances and predecessors (Dijkstra
        semantics: nonnegative weights, optional early exit)."""
        raise NotImplementedError

    def all_pairs(
        self,
        graph: WeightedGraph,
        sources: Iterable[Vertex] | None = None,
    ) -> Dict[Vertex, Dict[Vertex, float]]:
        """Exact distances from every source (default: all vertices)."""
        raise NotImplementedError


class PythonBackend(EngineBackend):
    """The pure-Python reference implementation."""

    name = "python"

    def sssp(self, graph, source, target=None):
        from ..algorithms import shortest_paths

        with kernel_span("engine.sssp", backend=self.name):
            return shortest_paths._dijkstra_reference(
                graph, source, target
            )

    def all_pairs(self, graph, sources=None):
        chosen = (
            list(sources) if sources is not None else graph.vertex_list()
        )
        with kernel_span(
            "engine.all_pairs", backend=self.name, sources=len(chosen)
        ):
            result: Dict[Vertex, Dict[Vertex, float]] = {}
            for s in chosen:
                distances, _ = self.sssp(graph, s)
                result[s] = distances
            return result


class NumpyBackend(EngineBackend):
    """Vectorized CSR kernels from :mod:`repro.engine.kernels`."""

    name = "numpy"

    def sssp(self, graph, source, target=None):
        csr = CSRGraph.from_graph(graph)
        s = csr.index_of(source)
        t = csr.index_of(target) if target is not None else None
        with kernel_span("engine.sssp", backend=self.name):
            dist, pred = sssp_dijkstra(csr, s, t)
        vertices = csr.vertices
        distances = {
            vertices[i]: d
            for i, d in enumerate(dist.tolist())
            if d != float("inf")
        }
        parents = {
            vertices[i]: vertices[p]
            for i, p in enumerate(pred.tolist())
            if p >= 0
        }
        return distances, parents

    def all_pairs(self, graph, sources=None):
        csr = CSRGraph.from_graph(graph)
        chosen = (
            list(sources) if sources is not None else list(csr.vertices)
        )
        with kernel_span(
            "engine.all_pairs", backend=self.name, sources=len(chosen)
        ):
            matrix = multi_source_distances(csr, csr.indices_of(chosen))
        vertices = csr.vertices
        inf = float("inf")
        # One C-level pass each for the values and the reachability
        # mask; rows without unreachable targets take the zip fast path.
        rows = matrix.tolist()
        unreachable = np.isinf(matrix).any(axis=1).tolist()
        result: Dict[Vertex, Dict[Vertex, float]] = {}
        for s, values, has_inf in zip(chosen, rows, unreachable):
            if has_inf:
                result[s] = {
                    vertices[i]: d
                    for i, d in enumerate(values)
                    if d != inf
                }
            else:
                result[s] = dict(zip(vertices, values))
        return result


_REGISTRY: Dict[str, EngineBackend] = {}


def register_backend(backend: EngineBackend) -> EngineBackend:
    """Register a backend instance under its ``name``.

    Third-party accelerator backends (numba, GPU, ...) plug in here;
    the public API's ``backend=`` parameters accept any registered
    name.
    """
    if not backend.name:
        raise EngineError("backend must define a non-empty name")
    if backend.name in _REGISTRY:
        raise EngineError(
            f"backend {backend.name!r} is already registered"
        )
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> EngineBackend:
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EngineError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))


def auto_select(
    num_vertices: int, num_edges: int, all_pairs: bool = False
) -> str:
    """The auto-selection heuristic on public size parameters."""
    if all_pairs:
        return (
            "numpy" if num_vertices >= APSP_NUMPY_MIN_VERTICES else "python"
        )
    return "numpy" if num_edges >= SSSP_NUMPY_MIN_EDGES else "python"


def resolve_backend(
    backend: str | EngineBackend | None,
    graph: WeightedGraph,
    all_pairs: bool = False,
) -> EngineBackend:
    """Resolve a user-facing backend spec to a backend instance.

    ``None`` and ``"auto"`` apply :func:`auto_select`; a string looks
    up the registry; a backend instance passes through.
    """
    if isinstance(backend, EngineBackend):
        return backend
    if backend is None or backend == "auto":
        backend = auto_select(
            graph.num_vertices, graph.num_edges, all_pairs=all_pairs
        )
    return get_backend(backend)


register_backend(PythonBackend())
register_backend(NumpyBackend())
