"""Exception hierarchy for the ``repro`` library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  More specific subclasses distinguish structural graph
problems from privacy-accounting problems, mirroring the two halves of the
paper's model: the public topology and the private weights.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """A structural problem with a graph (bad vertex, bad edge, ...)."""


class VertexNotFoundError(GraphError):
    """A vertex referenced by the caller does not exist in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError):
    """An edge referenced by the caller does not exist in the graph."""

    def __init__(self, edge: object) -> None:
        super().__init__(f"edge {edge!r} is not in the graph")
        self.edge = edge


class DisconnectedGraphError(GraphError):
    """An operation requiring connectivity was attempted on a
    disconnected graph (e.g. exact distance between unreachable
    vertices, spanning tree of a disconnected graph)."""


class NotATreeError(GraphError):
    """An operation specific to trees was attempted on a non-tree graph.

    The tree algorithms of Section 4.1 of the paper require the public
    topology to be a tree; this error signals a violated precondition.
    """


class WeightError(ReproError):
    """An edge-weight function violates a precondition.

    Examples: negative weights passed to an algorithm that assumes
    ``w : E -> R+`` (Definition 2.1), or weights exceeding the bound ``M``
    required by the bounded-weight algorithms of Section 4.2.
    """


class SynopsisError(GraphError):
    """A problem with a serialized distance synopsis (unknown ``kind``,
    wrong format marker, unsupported version).

    Subclasses :class:`GraphError` (synopsis documents are public
    topology + released values, i.e. graph artifacts) and therefore
    :class:`ReproError`; the message for an unknown kind lists the
    registered kinds so a caller can see what its build supports.
    """


class PrivacyError(ReproError):
    """A privacy parameter or budget constraint is violated.

    Raised for non-positive ``eps``, ``delta`` outside ``[0, 1)``, or an
    exhausted privacy budget in :class:`repro.dp.accountant.Accountant`.
    """


class MechanismError(PrivacyError):
    """A problem with the release-mechanism registry (unknown mechanism
    name, duplicate registration, a mechanism asked to build outside
    its preconditions).

    Subclasses :class:`PrivacyError`: mechanisms are privacy mechanisms,
    and the pre-redesign services raised ``PrivacyError`` for unknown
    mechanism names, so existing ``except`` clauses keep working.
    """


class BudgetExceededError(PrivacyError):
    """The privacy budget tracked by an accountant has been exhausted."""


class MatchingError(ReproError):
    """A perfect matching was requested on a graph that has none, or a
    released matching fails validation."""


class EngineError(ReproError):
    """A problem with the graph-kernel engine (unknown backend name,
    kernel precondition violation, ...)."""


class LintError(ReproError):
    """A problem inside the :mod:`repro.privlint` static analyzer: an
    unparseable source file, a malformed ``repro-lint`` report or
    baseline document, or an unknown rule name in a suppression.

    The analyzer is fail-closed like the rest of the tooling: a file it
    cannot parse or a document it cannot trust raises instead of being
    silently skipped — a skipped file is an unchecked privacy invariant.
    """


class TelemetryError(ReproError):
    """A problem with the telemetry subsystem (metric type clash on a
    registered name, malformed metrics snapshot document, invalid
    quantile or accuracy parameter)."""


class AuditError(TelemetryError):
    """An audit log failed validation: broken hash chain, sequence gap,
    truncated or corrupted record, wrong format/version marker, or a
    replayed odometer that disagrees with a live ledger.

    Subclasses :class:`TelemetryError` (the audit trail is part of the
    observability layer), so existing telemetry ``except`` clauses keep
    working; audit verification is fail-closed — any doubt about the
    log's integrity raises rather than reporting a partial answer.
    """
