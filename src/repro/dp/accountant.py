"""A privacy-budget accountant.

Tracks a sequence of releases against a total budget under basic
composition (Lemma 3.3).  The paper's algorithms each spend their budget
in a single Laplace-mechanism release, but example applications (a
navigation service answering many kinds of queries over time) need to
account across releases — the accountant makes that explicit and fails
closed when the budget would be exceeded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..exceptions import BudgetExceededError, PrivacyError
from .params import PrivacyParams

__all__ = ["Accountant", "SpendRecord"]


@dataclass(frozen=True)
class SpendRecord:
    """One recorded budget expenditure."""

    label: str
    params: PrivacyParams


class Accountant:
    """Tracks cumulative ``(eps, delta)`` spending under basic
    composition.

    Parameters
    ----------
    budget:
        The total guarantee the caller promises downstream.  Spends that
        would push the running totals past it raise
        :class:`~repro.exceptions.BudgetExceededError` *before* any
        noise is drawn, so a failed spend leaks nothing.
    """

    def __init__(self, budget: PrivacyParams) -> None:
        self._budget = budget
        self._spent_eps = 0.0
        self._spent_delta = 0.0
        self._records: List[SpendRecord] = []

    @property
    def budget(self) -> PrivacyParams:
        """The total budget."""
        return self._budget

    @property
    def spent(self) -> PrivacyParams | None:
        """The total spent so far (``None`` if nothing spent)."""
        if not self._records:
            return None
        return PrivacyParams(self._spent_eps, self._spent_delta)

    @property
    def records(self) -> List[SpendRecord]:
        """All recorded expenditures, in order."""
        return list(self._records)

    def remaining_eps(self) -> float:
        """Budget eps not yet spent."""
        return self._budget.eps - self._spent_eps

    def remaining_delta(self) -> float:
        """Budget delta not yet spent."""
        return self._budget.delta - self._spent_delta

    def can_spend(self, params: PrivacyParams) -> bool:
        """Whether a spend of ``params`` fits in the remaining budget."""
        tolerance = 1e-12
        return (
            self._spent_eps + params.eps <= self._budget.eps + tolerance
            and self._spent_delta + params.delta
            <= self._budget.delta + tolerance
        )

    def spend(self, params: PrivacyParams, label: str = "") -> None:
        """Record an expenditure, failing closed if over budget."""
        if not self.can_spend(params):
            raise BudgetExceededError(
                f"spend {params} (label={label!r}) exceeds remaining budget "
                f"eps={self.remaining_eps():g}, "
                f"delta={self.remaining_delta():g}"
            )
        self._spent_eps += params.eps
        self._spent_delta += params.delta
        self._records.append(SpendRecord(label=label, params=params))

    def __repr__(self) -> str:
        return (
            f"Accountant(budget={self._budget}, "
            f"spent_eps={self._spent_eps:g}, "
            f"spent_delta={self._spent_delta:g}, "
            f"releases={len(self._records)})"
        )
