"""The exponential mechanism (McSherry–Talwar).

Used by :mod:`repro.core.histogram_release` to reproduce, at toy scale,
the Section 1.3 observation that the private edge-weight model is a
histogram model in ``R^{|E|}``, so generic synthetic-database machinery
applies to all-pairs distances.  The paper cites the DRV10 boosting
mechanism there; both it and this simpler mechanism share the defining
property discussed in Section 1.3 — error depending on ``||w||_1``-type
quantities and *exponential running time* — which is exactly the
trade-off the paper's polynomial-time algorithms avoid.

Given candidates ``c`` with quality scores ``q(w, c)`` whose
sensitivity in ``w`` is ``Delta``, the mechanism samples ``c`` with
probability proportional to ``exp(eps * q(w, c) / (2 * Delta))`` and is
eps-DP.  Utility: with probability ``1 - gamma`` the chosen candidate's
score is within ``(2 Delta / eps) * ln(|C| / gamma)`` of the best.
"""

from __future__ import annotations

import math
from typing import Sequence, TypeVar

import numpy as np

from ..exceptions import PrivacyError
from ..rng import Rng

T = TypeVar("T")

__all__ = ["ExponentialMechanism", "exponential_mechanism_utility_bound"]


def exponential_mechanism_utility_bound(
    eps: float, sensitivity: float, num_candidates: int, gamma: float
) -> float:
    """The standard utility bound: the score gap to the optimum is at
    most ``(2 Delta / eps) ln(|C| / gamma)`` with probability
    ``1 - gamma``."""
    if eps <= 0 or sensitivity <= 0:
        raise PrivacyError("eps and sensitivity must be positive")
    if num_candidates <= 0:
        raise PrivacyError("need at least one candidate")
    if not 0.0 < gamma < 1.0:
        raise PrivacyError(f"gamma must be in (0, 1), got {gamma}")
    return (2.0 * sensitivity / eps) * math.log(num_candidates / gamma)


class ExponentialMechanism:
    """Samples a candidate with probability ``exp(eps q / (2 Delta))``.

    Log-space sampling keeps the computation stable for large score
    ranges.
    """

    def __init__(self, eps: float, sensitivity: float, rng: Rng) -> None:
        if eps <= 0:
            raise PrivacyError(f"eps must be positive, got {eps}")
        if sensitivity <= 0:
            raise PrivacyError(
                f"sensitivity must be positive, got {sensitivity}"
            )
        self._eps = eps
        self._sensitivity = sensitivity
        self._rng = rng

    @property
    def eps(self) -> float:
        """The privacy budget of one :meth:`choose` call."""
        return self._eps

    def choose_index(self, scores: Sequence[float]) -> int:
        """Sample an index with probability proportional to
        ``exp(eps * score / (2 * sensitivity))``."""
        if len(scores) == 0:
            raise PrivacyError("cannot choose from zero candidates")
        logits = (
            np.asarray(scores, dtype=float)
            * self._eps
            / (2.0 * self._sensitivity)
        )
        logits -= logits.max()  # stabilize
        weights = np.exp(logits)
        probabilities = weights / weights.sum()
        return int(
            self._rng.generator.choice(len(scores), p=probabilities)
        )

    def choose(self, candidates: Sequence[T], scores: Sequence[float]) -> T:
        """Sample a candidate by its score."""
        if len(candidates) != len(scores):
            raise PrivacyError(
                f"{len(candidates)} candidates but {len(scores)} scores"
            )
        return candidates[self.choose_index(scores)]
