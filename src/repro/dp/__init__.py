"""Differential-privacy substrate.

Implements the paper's privacy model (Section 2), the Laplace mechanism
(Lemma 3.2), composition theorems (Lemmas 3.3 and 3.4), a budget
accountant, and every closed-form error bound the paper states
(:mod:`repro.dp.bounds`).
"""

from .params import (
    PrivacyParams,
    l1_distance,
    weights_are_neighboring,
)
from .mechanisms import LaplaceMechanism, laplace_noise_scale
from .composition import (
    basic_composition,
    advanced_composition,
    advanced_composition_epsilon_per_query,
)
from .accountant import Accountant
from .exponential import ExponentialMechanism, exponential_mechanism_utility_bound
from . import bounds

__all__ = [
    "PrivacyParams",
    "l1_distance",
    "weights_are_neighboring",
    "LaplaceMechanism",
    "laplace_noise_scale",
    "basic_composition",
    "advanced_composition",
    "advanced_composition_epsilon_per_query",
    "Accountant",
    "ExponentialMechanism",
    "exponential_mechanism_utility_bound",
    "bounds",
]
