"""Privacy parameters and the neighboring relation (Section 2).

Definition 2.1: two weight functions ``w, w'`` on the same edge set are
*neighboring* when ``||w - w'||_1 <= 1``.  Definition 2.2 is standard
``(eps, delta)``-differential privacy over that relation.  The paper's
"Scaling" remark (Section 1.2) generalizes the unit to any constant;
:func:`weights_are_neighboring` takes the unit as a parameter for that
reason.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..exceptions import PrivacyError

__all__ = ["PrivacyParams", "l1_distance", "weights_are_neighboring"]


@dataclass(frozen=True)
class PrivacyParams:
    """An ``(eps, delta)`` differential-privacy guarantee.

    ``delta = 0`` (the default) is pure differential privacy.  The class
    is immutable so a guarantee attached to a release cannot be mutated
    after the fact.
    """

    eps: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.eps) or self.eps <= 0:
            raise PrivacyError(f"eps must be positive and finite, got {self.eps}")
        if not 0.0 <= self.delta < 1.0:
            raise PrivacyError(f"delta must be in [0, 1), got {self.delta}")

    @property
    def is_pure(self) -> bool:
        """Whether this is pure (``delta = 0``) differential privacy."""
        return self.delta == 0.0

    def split(self, parts: int) -> "PrivacyParams":
        """An even split of the budget across ``parts`` releases under
        basic composition (Lemma 3.3): each part gets
        ``(eps/parts, delta/parts)``."""
        if parts <= 0:
            raise PrivacyError(f"parts must be positive, got {parts}")
        return PrivacyParams(self.eps / parts, self.delta / parts)

    def __str__(self) -> str:
        if self.is_pure:
            return f"{self.eps:g}-DP"
        return f"({self.eps:g}, {self.delta:g})-DP"


def l1_distance(
    w: Mapping[object, float], w_prime: Mapping[object, float]
) -> float:
    """``||w - w'||_1`` over the union of keys.

    The two weight functions must be over the same edge set in the
    model; a key missing on one side is treated as weight 0 so the
    function is total, which is convenient for tests that build
    neighbors by perturbing a few edges.
    """
    keys = set(w) | set(w_prime)
    # math.fsum is exactly rounded, so the result is independent of the
    # (set-dependent) iteration order — l1_distance(w, w') is then
    # bit-for-bit symmetric.
    return math.fsum(
        abs(w.get(key, 0.0) - w_prime.get(key, 0.0)) for key in keys
    )


def weights_are_neighboring(
    w: Mapping[object, float],
    w_prime: Mapping[object, float],
    unit: float = 1.0,
) -> bool:
    """Definition 2.1's neighboring relation: ``||w - w'||_1 <= unit``.

    ``unit`` defaults to the paper's constant 1; the Scaling remark of
    Section 1.2 corresponds to passing a different unit.
    """
    if unit <= 0:
        raise PrivacyError(f"neighboring unit must be positive, got {unit}")
    return l1_distance(w, w_prime) <= unit + 1e-12
