"""Composition theorems (Lemmas 3.3 and 3.4).

Basic composition: ``k`` adaptive ``(eps, delta)``-DP mechanisms compose
to ``(k eps, k delta)``-DP.

Advanced composition (Dwork–Rothblum–Vadhan): they also compose to
``(eps', k delta + delta')``-DP with

    eps' = sqrt(2 k ln(1/delta')) * eps + k * eps * (e^eps - 1).

The inverse direction — given a target total ``eps'``, what per-query
``eps`` may each of ``k`` queries use? — is what the all-pairs distance
baseline of Section 4 and Algorithm 2 need, so it is provided as
:func:`advanced_composition_epsilon_per_query` (solved numerically; the
paper's ``eps = O(eps'/sqrt(k ln(1/delta')))`` is the asymptotic form).
"""

from __future__ import annotations

import math

from ..exceptions import PrivacyError
from .params import PrivacyParams

__all__ = [
    "basic_composition",
    "advanced_composition",
    "advanced_composition_epsilon_per_query",
    "composed_noise_scale",
]


def basic_composition(params: PrivacyParams, k: int) -> PrivacyParams:
    """Lemma 3.3: the guarantee after ``k`` adaptive runs."""
    if k <= 0:
        raise PrivacyError(f"k must be positive, got {k}")
    return PrivacyParams(params.eps * k, min(params.delta * k, 1.0 - 1e-15))


def advanced_composition(
    params: PrivacyParams, k: int, delta_prime: float
) -> PrivacyParams:
    """Lemma 3.4: the guarantee after ``k`` adaptive runs, spending an
    extra failure probability ``delta'``."""
    if k <= 0:
        raise PrivacyError(f"k must be positive, got {k}")
    if not 0.0 < delta_prime < 1.0:
        raise PrivacyError(
            f"delta_prime must be in (0, 1), got {delta_prime}"
        )
    eps = params.eps
    total_eps = math.sqrt(2.0 * k * math.log(1.0 / delta_prime)) * eps + (
        k * eps * (math.exp(eps) - 1.0)
    )
    total_delta = min(k * params.delta + delta_prime, 1.0 - 1e-15)
    return PrivacyParams(total_eps, total_delta)


def composed_noise_scale(
    num_queries: int, eps: float, delta: float = 0.0
) -> float:
    """The per-answer Laplace scale for ``num_queries`` sensitivity-1
    queries under one ``(eps, delta)`` budget.

    ``delta = 0``: the query vector has L1 sensitivity at most
    ``num_queries``, so ``Lap(num_queries/eps)`` per entry is eps-DP
    (equivalently, basic composition).  ``delta > 0``: ``Lap(1/eps_q)``
    with ``eps_q`` from the Lemma 3.4 inverse.  This is the one shared
    accounting behind the all-pairs baselines, the engine-native
    synopsis builder, the hub-set releases, and mechanism
    auto-selection — change it here and every consumer moves together.
    """
    q = max(num_queries, 1)
    if delta > 0:
        return 1.0 / advanced_composition_epsilon_per_query(
            total_eps=eps, k=q, delta_prime=delta
        )
    return q / eps


def advanced_composition_epsilon_per_query(
    total_eps: float, k: int, delta_prime: float
) -> float:
    """The largest per-query ``eps`` whose k-fold advanced composition
    stays within ``total_eps``.

    Solves ``sqrt(2 k ln(1/delta')) x + k x (e^x - 1) = total_eps`` for
    ``x`` by bisection.  The paper uses the asymptotic
    ``eps' / O(sqrt(k ln(1/delta')))``; solving exactly gives slightly
    better constants and makes the benchmarks self-consistent.
    """
    if total_eps <= 0:
        raise PrivacyError(f"total_eps must be positive, got {total_eps}")
    if k <= 0:
        raise PrivacyError(f"k must be positive, got {k}")
    if not 0.0 < delta_prime < 1.0:
        raise PrivacyError(
            f"delta_prime must be in (0, 1), got {delta_prime}"
        )

    def composed(x: float) -> float:
        return math.sqrt(2.0 * k * math.log(1.0 / delta_prime)) * x + (
            k * x * (math.exp(x) - 1.0)
        )

    low, high = 0.0, total_eps  # composed(total_eps) >= total_eps always
    for _ in range(200):
        mid = (low + high) / 2.0
        if composed(mid) <= total_eps:
            low = mid
        else:
            high = mid
    if low <= 0.0:
        raise PrivacyError(
            "no positive per-query epsilon satisfies the composition "
            f"target (total_eps={total_eps}, k={k})"
        )
    return low
