"""Closed-form error bounds from the paper, as callables.

Every theorem in the paper states an additive-error bound.  The
benchmark harness compares *measured* error against these *predicted*
bounds, so each bound is implemented here with the explicit constants
recoverable from the paper's proofs (the paper states most bounds in
O-notation; where a constant is needed we use the one the proof yields
and document it).  ``log`` is the natural logarithm throughout.

Functions are grouped by paper section:

* Section 3 — Laplace tails and the CSS10 concentration lemma.
* Section 4 — distance-release bounds (baselines, trees, bounded
  weights, grids).
* Section 5 — shortest-path upper and lower bounds.
* Appendix B — spanning tree and matching bounds.
* Section 1.3 — the DRV10 boosting comparison formulas.
"""

from __future__ import annotations

import math

from ..exceptions import PrivacyError

__all__ = [
    "laplace_union_bound",
    "laplace_sum_concentration",
    "single_pair_distance_error",
    "all_pairs_basic_noise_scale",
    "all_pairs_advanced_noise_scale",
    "synthetic_graph_distance_error",
    "tree_single_source_error",
    "tree_all_pairs_error",
    "bounded_weight_error_approx",
    "bounded_weight_error_pure",
    "bounded_weight_optimal_k_approx",
    "bounded_weight_optimal_k_pure",
    "grid_error_approx",
    "shortest_path_error",
    "shortest_path_error_worst_case",
    "reconstruction_lower_bound",
    "row_recovery_bound",
    "mst_error",
    "mst_lower_bound",
    "matching_error",
    "matching_lower_bound",
    "drv10_integer_weights_error",
    "drv10_fractional_weights_error",
]


def _check_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise PrivacyError(f"{name} must be positive, got {value}")


def _check_gamma(gamma: float) -> None:
    if not 0.0 < gamma < 1.0:
        raise PrivacyError(f"gamma must be in (0, 1), got {gamma}")


# ----------------------------------------------------------------------
# Section 3: preliminaries
# ----------------------------------------------------------------------


def laplace_union_bound(scale: float, count: int, gamma: float) -> float:
    """Magnitude below which ``count`` i.i.d. ``Lap(scale)`` variables
    all stay with probability ``1 - gamma``.

    This is the ubiquitous ``scale * log(count / gamma)`` union bound
    (e.g. Theorem 5.5's ``(1/eps) log(E/gamma)``).
    """
    _check_positive(scale=scale)
    _check_gamma(gamma)
    if count <= 0:
        raise PrivacyError(f"count must be positive, got {count}")
    return scale * math.log(count / gamma)


def laplace_sum_concentration(scale: float, t: int, gamma: float) -> float:
    """Lemma 3.1 (CSS10): with probability ``1 - gamma`` the sum of
    ``t`` i.i.d. ``Lap(scale)`` variables has magnitude below
    ``4 * scale * sqrt(t * ln(2 / gamma))``."""
    _check_positive(scale=scale)
    _check_gamma(gamma)
    if t <= 0:
        raise PrivacyError(f"t must be positive, got {t}")
    return 4.0 * scale * math.sqrt(t * math.log(2.0 / gamma))


# ----------------------------------------------------------------------
# Section 4: distances
# ----------------------------------------------------------------------


def single_pair_distance_error(eps: float, gamma: float) -> float:
    """A single distance query is sensitivity-1, so Laplace noise at
    scale ``1/eps`` exceeds this magnitude with probability ``gamma``."""
    _check_positive(eps=eps)
    _check_gamma(gamma)
    return (1.0 / eps) * math.log(1.0 / gamma)


def all_pairs_basic_noise_scale(num_vertices: int, eps: float) -> float:
    """Pure-DP all-pairs baseline: ``V^2`` sensitivity-1 queries under
    basic composition need ``Lap(V^2 / eps)`` noise each (Section 4
    intro)."""
    _check_positive(eps=eps, num_vertices=num_vertices)
    return num_vertices**2 / eps


def all_pairs_advanced_noise_scale(
    num_vertices: int, eps: float, delta: float
) -> float:
    """Approx-DP all-pairs baseline noise scale from Section 4's intro:
    ``O(V sqrt(ln 1/delta)) / eps`` per query.

    The constant follows the paper's calculation: taking per-query
    ``eps' = eps / (V sqrt(2 ln(1/delta)))`` makes the advanced
    composition's first term equal ``eps`` (the second term is lower
    order for ``eps < 1``), so the noise scale is ``1/eps'``.
    """
    _check_positive(eps=eps, num_vertices=num_vertices)
    if not 0.0 < delta < 1.0:
        raise PrivacyError(f"delta must be in (0, 1), got {delta}")
    return num_vertices * math.sqrt(2.0 * math.log(1.0 / delta)) / eps


def synthetic_graph_distance_error(
    num_vertices: int, num_edges: int, eps: float, gamma: float
) -> float:
    """Releasing the graph with ``Lap(1/eps)`` per edge: every path
    changes by at most ``(V/eps) log(E/gamma)`` w.p. ``1 - gamma``
    (Section 4 intro)."""
    _check_positive(eps=eps, num_vertices=num_vertices, num_edges=num_edges)
    _check_gamma(gamma)
    return (num_vertices / eps) * math.log(num_edges / gamma)


def tree_single_source_error(
    num_vertices: int, eps: float, gamma: float
) -> float:
    """Theorem 4.1: single-source tree distances have per-distance error
    ``O(log^1.5 V * log(1/gamma)) / eps``.

    Constant from the proof: the error is a sum of at most
    ``2 log2(V)`` variables at scale ``log2(V)/eps``, so Lemma 3.1 gives
    ``4 * (log2 V / eps) * sqrt(2 log2 V * ln(2/gamma))``.  Algorithm 1
    uses "subtrees of size at most V/2", so its recursion depth and
    sensitivity are ``log2``; we follow that.
    """
    _check_positive(eps=eps)
    _check_gamma(gamma)
    if num_vertices < 1:
        raise PrivacyError(f"V must be >= 1, got {num_vertices}")
    if num_vertices == 1:
        return 0.0
    log_v = math.log2(num_vertices)
    return (
        4.0
        * (log_v / eps)
        * math.sqrt(2.0 * log_v * math.log(2.0 / gamma))
    )


def tree_all_pairs_error(num_vertices: int, eps: float, gamma: float) -> float:
    """Theorem 4.2: all released tree distances are within
    ``O(log^2.5 V * log(1/gamma)) / eps`` simultaneously w.p.
    ``1 - gamma``.

    Proof shape: each pairwise distance is a sum of at most 4 single
    source estimates, and the union bound over ``V(V-1)/2`` pairs turns
    ``log(1/gamma)`` into ``log(V^2/gamma)``.
    """
    _check_positive(eps=eps)
    _check_gamma(gamma)
    if num_vertices < 1:
        raise PrivacyError(f"V must be >= 1, got {num_vertices}")
    if num_vertices == 1:
        return 0.0
    per_pair_gamma = gamma / max(num_vertices * (num_vertices - 1) / 2.0, 1.0)
    return 4.0 * tree_single_source_error(num_vertices, eps, per_pair_gamma)


def bounded_weight_error_approx(
    k: int,
    covering_size: int,
    weight_bound: float,
    eps: float,
    delta: float,
    gamma: float,
) -> float:
    """Theorem 4.5: with a k-covering ``Z`` and weights in ``[0, M]``,
    the approx-DP release has per-distance error at most
    ``2kM + (Z/eps') log(Z^2/gamma)`` where ``eps'`` comes from advanced
    composition over the ``Z^2`` released distances.

    The paper sets ``eps' = O(eps / sqrt(ln 1/delta))``; we use
    ``eps' = eps / sqrt(2 ln(1/delta))`` (sufficient when the number of
    queries is at most ``1/eps'^2``, the regime of the theorem).
    """
    _check_positive(eps=eps, covering_size=covering_size)
    if k < 0:
        raise PrivacyError(f"k must be nonnegative, got {k}")
    if weight_bound < 0:
        raise PrivacyError(f"M must be nonnegative, got {weight_bound}")
    if not 0.0 < delta < 1.0:
        raise PrivacyError(f"delta must be in (0, 1), got {delta}")
    _check_gamma(gamma)
    eps_prime = eps / math.sqrt(2.0 * math.log(1.0 / delta))
    z = covering_size
    noise = (z / eps_prime) * math.log(max(z * z, 2) / gamma)
    return 2.0 * k * weight_bound + noise


def bounded_weight_error_pure(
    k: int,
    covering_size: int,
    weight_bound: float,
    eps: float,
    gamma: float,
) -> float:
    """Theorem 4.6: the pure-DP variant has per-distance error at most
    ``2kM + (Z^2/eps) log(Z^2/gamma)``."""
    _check_positive(eps=eps, covering_size=covering_size)
    if k < 0:
        raise PrivacyError(f"k must be nonnegative, got {k}")
    if weight_bound < 0:
        raise PrivacyError(f"M must be nonnegative, got {weight_bound}")
    _check_gamma(gamma)
    z = covering_size
    noise = (z * z / eps) * math.log(max(z * z, 2) / gamma)
    return 2.0 * k * weight_bound + noise


def bounded_weight_optimal_k_approx(
    num_vertices: int, weight_bound: float, eps: float
) -> int:
    """Theorem 4.3's choice ``k = floor(sqrt(V / (M eps)))`` for the
    approx-DP variant, clamped to ``[1, V - 1]``."""
    _check_positive(eps=eps, num_vertices=num_vertices)
    if weight_bound <= 0:
        raise PrivacyError(f"M must be positive, got {weight_bound}")
    k = int(math.floor(math.sqrt(num_vertices / (weight_bound * eps))))
    return max(1, min(k, num_vertices - 1))


def bounded_weight_optimal_k_pure(
    num_vertices: int, weight_bound: float, eps: float
) -> int:
    """Theorem 4.3's choice ``k = floor(V^(2/3) / (M eps)^(1/3))`` for
    the pure-DP variant, clamped to ``[1, V - 1]``."""
    _check_positive(eps=eps, num_vertices=num_vertices)
    if weight_bound <= 0:
        raise PrivacyError(f"M must be positive, got {weight_bound}")
    k = int(
        math.floor(num_vertices ** (2.0 / 3.0) / (weight_bound * eps) ** (1.0 / 3.0))
    )
    return max(1, min(k, num_vertices - 1))


def grid_error_approx(
    num_vertices: int,
    weight_bound: float,
    eps: float,
    delta: float,
    gamma: float,
) -> float:
    """Theorem 4.7: on the ``sqrt(V) x sqrt(V)`` grid, the covering of
    size ``<= V^(1/3)`` with ``k = 2 V^(1/3)`` gives error
    ``V^(1/3) * O(M + (1/eps) log(V/gamma) sqrt(log 1/delta))``."""
    _check_positive(eps=eps, num_vertices=num_vertices)
    if weight_bound < 0:
        raise PrivacyError(f"M must be nonnegative, got {weight_bound}")
    if not 0.0 < delta < 1.0:
        raise PrivacyError(f"delta must be in (0, 1), got {delta}")
    _check_gamma(gamma)
    v_third = num_vertices ** (1.0 / 3.0)
    return v_third * (
        4.0 * weight_bound
        + (1.0 / eps)
        * math.log(num_vertices / gamma)
        * math.sqrt(2.0 * math.log(1.0 / delta))
    )


# ----------------------------------------------------------------------
# Section 5: shortest paths
# ----------------------------------------------------------------------


def shortest_path_error(
    hops: int, num_edges: int, eps: float, gamma: float
) -> float:
    """Theorem 5.5: if a ``k``-hop path of weight ``W`` exists, the path
    Algorithm 3 releases weighs at most ``W + (2k/eps) log(E/gamma)``
    w.p. ``1 - gamma`` (simultaneously for all pairs)."""
    _check_positive(eps=eps, num_edges=num_edges)
    if hops < 0:
        raise PrivacyError(f"hops must be nonnegative, got {hops}")
    _check_gamma(gamma)
    return (2.0 * hops / eps) * math.log(num_edges / gamma)


def shortest_path_error_worst_case(
    num_vertices: int, num_edges: int, eps: float, gamma: float
) -> float:
    """Corollary 5.6: every pair's released path is within
    ``(2V/eps) log(E/gamma)`` of optimal w.p. ``1 - gamma``."""
    return shortest_path_error(num_vertices, num_edges, eps, gamma)


def reconstruction_lower_bound(
    num_vertices: int, eps: float, delta: float
) -> float:
    """Theorem 5.1 (also B.1 with ``V-1`` and B.4 with ``V/4`` units):
    the per-unit expected-error floor

        alpha = (1 - (1 + e^eps) delta) / (1 + e^{2 eps})

    multiplied here by ``V - 1`` parallel-edge pairs, matching the
    Figure 2 instance.  For small ``eps, delta`` this approaches
    ``0.49 (V - 1)``.
    """
    _check_positive(eps=eps)
    if num_vertices < 2:
        raise PrivacyError(f"V must be >= 2, got {num_vertices}")
    if not 0.0 <= delta < 1.0:
        raise PrivacyError(f"delta must be in [0, 1), got {delta}")
    numerator = 1.0 - (1.0 + math.exp(eps)) * delta
    return (num_vertices - 1) * max(numerator, 0.0) / (1.0 + math.exp(2.0 * eps))


def row_recovery_bound(eps: float, delta: float) -> float:
    """Lemma 5.3: an ``(eps, delta)``-DP algorithm guessing one uniform
    input bit errs with probability at least ``(1 - delta)/(1 + e^eps)``."""
    _check_positive(eps=eps)
    if not 0.0 <= delta < 1.0:
        raise PrivacyError(f"delta must be in [0, 1), got {delta}")
    return (1.0 - delta) / (1.0 + math.exp(eps))


# ----------------------------------------------------------------------
# Appendix B: spanning trees and matchings
# ----------------------------------------------------------------------


def mst_error(
    num_vertices: int, num_edges: int, eps: float, gamma: float
) -> float:
    """Theorem B.3: the Laplace-noised MST weighs at most
    ``2 (V-1)/eps * log(E/gamma)`` more than the true MST w.p.
    ``1 - gamma``."""
    _check_positive(eps=eps, num_edges=num_edges)
    if num_vertices < 1:
        raise PrivacyError(f"V must be >= 1, got {num_vertices}")
    _check_gamma(gamma)
    return (2.0 * (num_vertices - 1) / eps) * math.log(num_edges / gamma)


def mst_lower_bound(num_vertices: int, eps: float, delta: float) -> float:
    """Theorem B.1: the MST error floor on the Figure 3 (left) star
    gadget — same alpha as Theorem 5.1."""
    return reconstruction_lower_bound(num_vertices, eps, delta)


def matching_error(
    num_vertices: int, num_edges: int, eps: float, gamma: float
) -> float:
    """Theorem B.6: the Laplace-noised perfect matching weighs at most
    ``(V/eps) log(E/gamma)`` more than the optimum w.p. ``1 - gamma``."""
    _check_positive(eps=eps, num_edges=num_edges, num_vertices=num_vertices)
    _check_gamma(gamma)
    return (num_vertices / eps) * math.log(num_edges / gamma)


def matching_lower_bound(num_vertices: int, eps: float, delta: float) -> float:
    """Theorem B.4: matching error floor ``(V/4) * (1 - (1+e^eps)delta)
    / (1 + e^{2 eps})`` on the hourglass instance (V vertices = V/4
    gadgets)."""
    _check_positive(eps=eps)
    if num_vertices < 4:
        raise PrivacyError(f"V must be >= 4, got {num_vertices}")
    if not 0.0 <= delta < 1.0:
        raise PrivacyError(f"delta must be in [0, 1), got {delta}")
    numerator = 1.0 - (1.0 + math.exp(eps)) * delta
    return (num_vertices / 4.0) * max(numerator, 0.0) / (
        1.0 + math.exp(2.0 * eps)
    )


# ----------------------------------------------------------------------
# Section 1.3: the DRV10 boosting comparison (formula only; the
# exponential-time mechanism itself is out of the paper's scope)
# ----------------------------------------------------------------------


def drv10_integer_weights_error(
    total_weight: float, num_vertices: int, eps: float, delta: float
) -> float:
    """Section 1.3: with integer weights summing to ``||w||_1``, the
    DRV10 boosting mechanism releases all-pairs distances with error
    ``O~(sqrt(||w||_1) log V log^1.5(1/delta) / eps)``.  Implemented
    with constant 1 for comparison plots only.
    """
    _check_positive(eps=eps, num_vertices=num_vertices)
    if total_weight < 0:
        raise PrivacyError(f"||w||_1 must be nonnegative, got {total_weight}")
    if not 0.0 < delta < 1.0:
        raise PrivacyError(f"delta must be in (0, 1), got {delta}")
    return (
        math.sqrt(total_weight)
        * math.log(max(num_vertices, 2))
        * math.log(1.0 / delta) ** 1.5
        / eps
    )


def drv10_fractional_weights_error(
    total_weight: float, num_vertices: int, eps: float, delta: float
) -> float:
    """Section 1.3's fractional-weight extension:
    ``O~((||w||_1 * V)^(1/3) log^{4/3}(1/delta) / eps^(2/3))`` — again
    with constant 1, for comparison plots only."""
    _check_positive(eps=eps, num_vertices=num_vertices)
    if total_weight < 0:
        raise PrivacyError(f"||w||_1 must be nonnegative, got {total_weight}")
    if not 0.0 < delta < 1.0:
        raise PrivacyError(f"delta must be in (0, 1), got {delta}")
    return (
        (total_weight * num_vertices) ** (1.0 / 3.0)
        * math.log(1.0 / delta) ** (4.0 / 3.0)
        / eps ** (2.0 / 3.0)
    )
