"""The Laplace mechanism (Lemma 3.2).

Given a function ``f : X -> R^k`` with L1 sensitivity ``Delta_f``
(Definition 3.2), the Laplace mechanism adds i.i.d. ``Lap(Delta_f/eps)``
noise to each coordinate and is ``eps``-differentially private.  Every
algorithm in the paper is the Laplace mechanism applied to a carefully
chosen query vector, followed by post-processing — so this class is the
single point where privacy is actually enforced in the library.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..exceptions import PrivacyError
from ..rng import Rng
from .params import PrivacyParams

__all__ = ["laplace_noise_scale", "LaplaceMechanism"]


def laplace_noise_scale(sensitivity: float, eps: float) -> float:
    """The noise scale ``Delta_f / eps`` of Lemma 3.2."""
    if sensitivity <= 0:
        raise PrivacyError(
            f"sensitivity must be positive, got {sensitivity}"
        )
    if eps <= 0:
        raise PrivacyError(f"eps must be positive, got {eps}")
    return sensitivity / eps


class LaplaceMechanism:
    """A reusable Laplace mechanism with fixed sensitivity and budget.

    Parameters
    ----------
    sensitivity:
        The global L1 sensitivity ``Delta_f`` of the query vector that
        will be released.  Stating it explicitly (rather than inferring
        it) keeps the privacy argument local to the calling algorithm,
        which is where the paper's proofs establish it.
    eps:
        The privacy budget for the release.
    rng:
        Source of randomness.
    """

    def __init__(self, sensitivity: float, eps: float, rng: Rng) -> None:
        self._scale = laplace_noise_scale(sensitivity, eps)
        self._sensitivity = float(sensitivity)
        self._params = PrivacyParams(eps)
        self._rng = rng

    @property
    def scale(self) -> float:
        """The Laplace scale ``b = Delta_f / eps``."""
        return self._scale

    @property
    def sensitivity(self) -> float:
        """The declared sensitivity ``Delta_f``."""
        return self._sensitivity

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee of one full release through this
        mechanism."""
        return self._params

    def release_scalar(self, true_value: float) -> float:
        """Release a single real value."""
        return float(true_value) + self._rng.laplace(self._scale)

    def release_vector(
        self, true_values: Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """Release a vector of values (one draw per coordinate).

        The declared sensitivity must bound the L1 sensitivity of the
        whole vector, exactly as in Lemma 3.2.
        """
        values = np.asarray(true_values, dtype=float)
        noise = self._rng.laplace_vector(self._scale, values.size)
        return values + noise.reshape(values.shape)

    def release_function(
        self, f: Callable[[], Sequence[float]]
    ) -> np.ndarray:
        """Evaluate a query function and release its noisy value."""
        return self.release_vector(list(f()))

    def __repr__(self) -> str:
        return (
            f"LaplaceMechanism(sensitivity={self._sensitivity:g}, "
            f"eps={self._params.eps:g}, scale={self._scale:g})"
        )
