"""Exact (non-private) graph algorithms.

These are the substrates the paper's mechanisms post-process with:
Dijkstra for shortest paths (Algorithm 3 and the synthetic-graph
baseline run Dijkstra on noised weights), BFS for hop distances
(k-coverings are defined via hop distance), Kruskal/Prim for the MST
release of Theorem B.3, and exact matching for Theorem B.6.
"""

from .traversal import (
    bfs_hop_distances,
    connected_components,
    is_connected,
)
from .shortest_paths import (
    dijkstra,
    dijkstra_path,
    all_pairs_dijkstra,
    bellman_ford,
    path_hops,
)
from .spanning_tree import UnionFind, kruskal_mst, prim_mst, spanning_tree_weight
from .matching import (
    hungarian_min_cost_perfect_matching,
    exact_min_weight_perfect_matching,
    greedy_perfect_matching,
    matching_weight,
    is_perfect_matching,
)
from .covering import (
    is_k_covering,
    meir_moon_k_covering,
    grid_covering,
    nearest_in_set,
)

__all__ = [
    "bfs_hop_distances",
    "connected_components",
    "is_connected",
    "dijkstra",
    "dijkstra_path",
    "all_pairs_dijkstra",
    "bellman_ford",
    "path_hops",
    "UnionFind",
    "kruskal_mst",
    "prim_mst",
    "spanning_tree_weight",
    "hungarian_min_cost_perfect_matching",
    "exact_min_weight_perfect_matching",
    "greedy_perfect_matching",
    "matching_weight",
    "is_perfect_matching",
    "is_k_covering",
    "meir_moon_k_covering",
    "grid_covering",
    "nearest_in_set",
]
