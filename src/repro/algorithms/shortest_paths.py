"""Exact shortest-path algorithms.

Dijkstra with a binary heap is the workhorse: every private release in
the paper that outputs paths or distances post-processes noisy weights
with an *exact* shortest-path computation (Algorithm 3, the
synthetic-graph baseline of Section 4, Algorithm 2's distances between
covering vertices).  Bellman–Ford handles the negative weights that the
Appendix-B problems permit.

:func:`dijkstra` and :func:`all_pairs_dijkstra` dispatch through the
:mod:`repro.engine` backend registry: by default an (|V|, |E|)
heuristic picks between this module's pure-Python reference
implementation and the vectorized CSR kernels, and ``backend=`` forces
a specific one.  All backends return bit-identical distances, so the
choice is purely a performance knob.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Tuple

from ..exceptions import (
    DisconnectedGraphError,
    GraphError,
    VertexNotFoundError,
    WeightError,
)
from ..graphs.graph import Vertex, WeightedGraph

__all__ = [
    "dijkstra",
    "dijkstra_path",
    "all_pairs_dijkstra",
    "bellman_ford",
    "path_hops",
    "reconstruct_path",
]


def dijkstra(
    graph: WeightedGraph,
    source: Vertex,
    target: Vertex | None = None,
    backend: str | None = None,
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Vertex]]:
    """Single-source shortest paths with nonnegative weights.

    Returns ``(distances, parents)`` where ``parents`` maps each reached
    vertex (except the source) to its predecessor on a shortest path.
    With ``target`` given, the search stops once the target is settled.
    ``backend`` selects an engine backend (``"python"``, ``"numpy"``;
    default auto — see :mod:`repro.engine.backends`).

    Raises :class:`~repro.exceptions.WeightError` on a negative edge
    weight — use :func:`bellman_ford` for those.
    """
    from ..engine.backends import resolve_backend

    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if target is not None and not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    engine = resolve_backend(backend, graph, all_pairs=False)
    return engine.sssp(graph, source, target)


def _dijkstra_reference(
    graph: WeightedGraph,
    source: Vertex,
    target: Vertex | None = None,
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Vertex]]:
    """The dict-based binary-heap implementation (the ``"python"``
    backend).  Kept as the semantic reference the vectorized kernels
    are tested against."""
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    distances: Dict[Vertex, float] = {}
    parents: Dict[Vertex, Vertex] = {}
    counter = 0  # tiebreaker so heap never compares vertices
    heap: List[Tuple[float, int, Vertex]] = [(0.0, counter, source)]
    tentative: Dict[Vertex, float] = {source: 0.0}
    while heap:
        dist, _, v = heapq.heappop(heap)
        if v in distances:
            continue
        distances[v] = dist
        if v == target:
            break
        for u, weight in graph.neighbors(v):
            if weight < 0:
                raise WeightError(
                    f"Dijkstra requires nonnegative weights; edge "
                    f"({v!r}, {u!r}) has weight {weight}"
                )
            candidate = dist + weight
            if u not in distances and candidate < tentative.get(
                u, float("inf")
            ):
                tentative[u] = candidate
                parents[u] = v
                counter += 1
                heapq.heappush(heap, (candidate, counter, u))
    return distances, parents


def reconstruct_path(
    parents: Dict[Vertex, Vertex], source: Vertex, target: Vertex
) -> List[Vertex]:
    """Rebuild the vertex path from a Dijkstra/Bellman–Ford parent map."""
    path = [target]
    while path[-1] != source:
        v = path[-1]
        if v not in parents:
            raise DisconnectedGraphError(
                f"no path from {source!r} to {target!r}"
            )
        path.append(parents[v])
    path.reverse()
    return path


def dijkstra_path(
    graph: WeightedGraph, source: Vertex, target: Vertex
) -> Tuple[List[Vertex], float]:
    """The shortest path from source to target and its weight.

    Raises :class:`~repro.exceptions.DisconnectedGraphError` when the
    target is unreachable.
    """
    distances, parents = dijkstra(graph, source, target=target)
    if target not in distances:
        raise DisconnectedGraphError(
            f"no path from {source!r} to {target!r}"
        )
    return reconstruct_path(parents, source, target), distances[target]


def all_pairs_dijkstra(
    graph: WeightedGraph,
    sources: Iterable[Vertex] | None = None,
    backend: str | None = None,
) -> Dict[Vertex, Dict[Vertex, float]]:
    """Exact distances from every source (default: all vertices).

    Returns ``result[s][t] = d_w(s, t)`` for reachable pairs only.
    This is the library's hottest exact-recomputation path; ``backend``
    selects an engine backend (default auto, which vectorizes any
    non-trivial sweep — see :mod:`repro.engine.backends`).

    Nonnegativity is validated up front over *all* edges (not just
    scanned ones), so the outcome is identical for every backend and
    independent of the auto-selection heuristic; use
    :func:`bellman_ford` for negative weights.
    """
    from ..engine.backends import resolve_backend

    graph.check_nonnegative()
    if sources is not None:
        sources = list(sources)
        for s in sources:
            if not graph.has_vertex(s):
                raise VertexNotFoundError(s)
    engine = resolve_backend(backend, graph, all_pairs=True)
    return engine.all_pairs(graph, sources)


def bellman_ford(
    graph: WeightedGraph, source: Vertex
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Vertex]]:
    """Single-source shortest paths allowing negative weights.

    Appendix B permits negative weights for spanning trees and
    matchings; Bellman–Ford covers distance queries in that regime.
    Raises :class:`~repro.exceptions.GraphError` on a negative cycle
    (undirected graphs: any negative edge forms one, so this effectively
    requires nonnegative weights there — pass directed graphs for true
    negative-weight work).
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if not graph.directed:
        for u, v, w in graph.edges():
            if w < 0:
                raise GraphError(
                    "negative undirected edge "
                    f"({u!r}, {v!r}) forms a negative cycle"
                )
    distances: Dict[Vertex, float] = {source: 0.0}
    parents: Dict[Vertex, Vertex] = {}
    # Collect directed arcs (both orientations when undirected).
    arcs: List[Tuple[Vertex, Vertex, float]] = []
    for u, v, w in graph.edges():
        arcs.append((u, v, w))
        if not graph.directed:
            arcs.append((v, u, w))
    for _ in range(max(graph.num_vertices - 1, 0)):
        changed = False
        for u, v, w in arcs:
            if u in distances and distances[u] + w < distances.get(
                v, float("inf")
            ):
                distances[v] = distances[u] + w
                parents[v] = u
                changed = True
        if not changed:
            break
    else:
        for u, v, w in arcs:
            if u in distances and distances[u] + w < distances.get(
                v, float("inf")
            ):
                raise GraphError("graph contains a negative cycle")
    return distances, parents


def path_hops(path: List[Vertex]) -> int:
    """The hop length ``l(P)`` of a vertex path (number of edges)."""
    if not path:
        raise GraphError("empty vertex sequence is not a path")
    return len(path) - 1
