"""k-coverings (Definition 4.1, Lemma 4.4, Theorem 4.7).

A subset ``Z`` of vertices is a *k-covering* when every vertex is within
hop distance ``k`` of some member of ``Z``.  Lemma 4.4 (after Meir and
Moon) shows every connected graph on ``V >= k + 1`` vertices has a
k-covering of size at most ``floor(V / (k+1))``, built from the residue
classes of depth modulo ``k+1`` in a spanning tree rooted at an endpoint
of a longest tree path.  Algorithm 2 (bounded-weight distances) releases
noisy distances only between covering vertices, which is where its
``sqrt(V M / eps)`` error bound comes from.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Tuple

from ..exceptions import DisconnectedGraphError, GraphError
from ..graphs.graph import Vertex, WeightedGraph
from .traversal import bfs_hop_distances, is_connected

__all__ = [
    "is_k_covering",
    "meir_moon_k_covering",
    "greedy_k_covering",
    "grid_covering",
    "nearest_in_set",
]


def nearest_in_set(
    graph: WeightedGraph,
    targets: Iterable[Vertex],
    cutoff: int | None = None,
) -> Dict[Vertex, Tuple[Vertex, int]]:
    """For every vertex, the nearest target by hop distance.

    Multi-source BFS from all of ``targets``; returns
    ``v -> (nearest_target, hops)`` for every vertex reached (all
    vertices within ``cutoff`` hops of some target, or all reachable
    vertices when ``cutoff`` is ``None``).  This realizes step 2 of
    Algorithm 2: assigning each vertex ``v`` its covering vertex
    ``z(v)`` with ``h(v, z(v)) <= k``.
    """
    result: Dict[Vertex, Tuple[Vertex, int]] = {}
    queue: deque = deque()
    for z in targets:
        if not graph.has_vertex(z):
            raise GraphError(f"covering vertex {z!r} is not in the graph")
        if z not in result:
            result[z] = (z, 0)
            queue.append(z)
    while queue:
        v = queue.popleft()
        origin, hops = result[v]
        if cutoff is not None and hops >= cutoff:
            continue
        for u, _ in graph.neighbors(v):
            if u not in result:
                result[u] = (origin, hops + 1)
                queue.append(u)
    return result


def is_k_covering(
    graph: WeightedGraph, candidate: Iterable[Vertex], k: int
) -> bool:
    """Whether ``candidate`` is a k-covering of the graph
    (Definition 4.1)."""
    if k < 0:
        raise GraphError(f"k must be nonnegative, got {k}")
    candidate = list(candidate)
    if not candidate:
        return graph.num_vertices == 0
    reached = nearest_in_set(graph, candidate, cutoff=k)
    return len(reached) == graph.num_vertices


def _bfs_tree_parents(
    graph: WeightedGraph, root: Vertex
) -> Dict[Vertex, Vertex | None]:
    parents: Dict[Vertex, Vertex | None] = {root: None}
    queue = deque([root])
    while queue:
        v = queue.popleft()
        for u, _ in graph.neighbors(v):
            if u not in parents:
                parents[u] = v
                queue.append(u)
    return parents


def _tree_farthest(
    tree_adjacency: Dict[Vertex, List[Vertex]], start: Vertex
) -> Tuple[Vertex, Dict[Vertex, int]]:
    depths = {start: 0}
    queue = deque([start])
    farthest = start
    while queue:
        v = queue.popleft()
        if depths[v] > depths[farthest]:
            farthest = v
        for u in tree_adjacency[v]:
            if u not in depths:
                depths[u] = depths[v] + 1
                queue.append(u)
    return farthest, depths


def meir_moon_k_covering(graph: WeightedGraph, k: int) -> List[Vertex]:
    """A k-covering of size at most ``floor(V / (k+1))`` (Lemma 4.4).

    Construction: take a BFS spanning tree ``T``, locate an endpoint
    ``x`` of a longest path of ``T`` (double BFS), and partition the
    vertices into residue classes ``Z_i`` of tree-depth modulo ``k+1``.
    The smallest class that actually covers (verified against ``G``) is
    returned; when the tree's eccentricity from ``x`` is below ``k`` the
    singleton ``{x}`` already covers and is returned instead.

    Requires a connected graph with ``V >= k + 1`` (the lemma's
    hypothesis).
    """
    if k < 0:
        raise GraphError(f"k must be nonnegative, got {k}")
    n = graph.num_vertices
    if n == 0:
        return []
    if n < k + 1:
        raise GraphError(
            f"Lemma 4.4 requires V >= k + 1 (V={n}, k={k})"
        )
    if not is_connected(graph):
        raise DisconnectedGraphError(
            "k-coverings by Lemma 4.4 require a connected graph"
        )
    if k == 0:
        return graph.vertex_list()

    # Spanning tree of G as an adjacency map.
    root = next(iter(graph.vertices()))
    parents = _bfs_tree_parents(graph, root)
    tree_adjacency: Dict[Vertex, List[Vertex]] = {
        v: [] for v in graph.vertices()
    }
    for child, parent in parents.items():
        if parent is not None:
            tree_adjacency[child].append(parent)
            tree_adjacency[parent].append(child)

    # Endpoint of a longest tree path by double BFS.
    far, _ = _tree_farthest(tree_adjacency, root)
    x, depths = _tree_farthest(tree_adjacency, far)
    # ``x`` is the far end; re-root depths at x.
    _, depths = _tree_farthest(tree_adjacency, x)

    eccentricity = max(depths.values())
    if eccentricity < k:
        # Every vertex is within ecc < k tree-hops of x already.
        return [x]

    classes: List[List[Vertex]] = [[] for _ in range(k + 1)]
    for v, d in depths.items():
        classes[d % (k + 1)].append(v)
    # Smallest residue class first; verify coverage against G itself
    # (hop distances in G are at most tree hop distances, so tree
    # coverage implies graph coverage, but verification is cheap and
    # guards the implementation).
    for z in sorted(classes, key=len):
        if z and is_k_covering(graph, z, k):
            return z
    raise GraphError(
        "Meir-Moon construction failed to produce a covering; "
        "this indicates a bug"
    )  # pragma: no cover


def greedy_k_covering(graph: WeightedGraph, k: int) -> List[Vertex]:
    """A k-covering by greedy set cover.

    Often smaller than the Lemma 4.4 construction in practice; the
    bounded-weight benchmarks use it to explore the "for specific graphs
    we can obtain better bounds by finding a smaller set Z" remark after
    Theorem 4.6.  No size guarantee beyond being a valid covering.
    """
    if k < 0:
        raise GraphError(f"k must be nonnegative, got {k}")
    uncovered = set(graph.vertices())
    covering: List[Vertex] = []
    # Precompute each vertex's k-ball lazily; greedy picks the vertex
    # covering the most currently uncovered vertices.
    while uncovered:
        best_vertex = None
        best_gain: set = set()
        for v in graph.vertices():
            ball = set(bfs_hop_distances(graph, v, cutoff=k))
            gain = ball & uncovered
            if len(gain) > len(best_gain):
                best_gain = gain
                best_vertex = v
        if best_vertex is None or not best_gain:
            raise DisconnectedGraphError(
                "graph has an unreachable vertex; no covering exists"
            )
        covering.append(best_vertex)
        uncovered -= best_gain
    return covering


def grid_covering(rows: int, cols: int, spacing: int) -> List[Vertex]:
    """The explicit grid covering of Theorem 4.7.

    On the ``rows x cols`` grid with vertices ``(r, c)``, take vertices
    whose coordinates are both one less than a multiple of ``spacing``.
    The result is a ``2 * spacing``-covering of size about
    ``(rows / spacing) * (cols / spacing)``; with ``rows = cols =
    sqrt(V)`` and ``spacing = V^(1/3)`` this is the paper's
    ``2 V^(1/3)``-covering of size at most ``V^(1/3)``.
    """
    if rows <= 0 or cols <= 0:
        raise GraphError("grid dimensions must be positive")
    if spacing <= 0:
        raise GraphError(f"spacing must be positive, got {spacing}")
    row_coords = [r for r in range(rows) if (r + 1) % spacing == 0]
    col_coords = [c for c in range(cols) if (c + 1) % spacing == 0]
    # When the grid is narrower than the spacing, fall back to the last
    # coordinate so the covering is never empty.
    if not row_coords:
        row_coords = [rows - 1]
    if not col_coords:
        col_coords = [cols - 1]
    return [(r, c) for r in row_coords for c in col_coords]
