"""Breadth-first traversal: hop distances and connectivity.

The paper distinguishes the weighted distance ``d_w(x, y)`` from the
*hop* distance ``h(x, y)`` (Section 2).  Hop distances define
k-coverings (Definition 4.1) and the hop-dependent accuracy of
Theorem 5.5, so they get a dedicated, weight-blind implementation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List

from ..exceptions import VertexNotFoundError
from ..graphs.graph import Vertex, WeightedGraph

__all__ = [
    "bfs_hop_distances",
    "bfs_hop_distance",
    "connected_components",
    "is_connected",
]


def bfs_hop_distances(
    graph: WeightedGraph, source: Vertex, cutoff: int | None = None
) -> Dict[Vertex, int]:
    """Hop distances ``h(source, v)`` to every reachable vertex.

    With ``cutoff`` set, exploration stops beyond that many hops — used
    when verifying k-coverings, where only ``h <= k`` matters.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    distances: Dict[Vertex, int] = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        d = distances[v]
        if cutoff is not None and d >= cutoff:
            continue
        for u, _ in graph.neighbors(v):
            if u not in distances:
                distances[u] = d + 1
                queue.append(u)
    return distances


def bfs_hop_distance(graph: WeightedGraph, source: Vertex, target: Vertex) -> int:
    """The hop distance ``h(source, target)``.

    Returns ``-1`` when the target is unreachable (the paper writes
    ``infinity``; an int sentinel keeps the API integer-typed).
    """
    if not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    distances = bfs_hop_distances(graph, source)
    return distances.get(target, -1)


def connected_components(graph: WeightedGraph) -> List[List[Vertex]]:
    """Connected components as vertex lists, in discovery order.

    For directed graphs this computes *weakly* connected components,
    which is the right notion for reachability preconditions.
    """
    seen: set = set()
    components: List[List[Vertex]] = []
    undirected_neighbors = _undirected_adjacency(graph)
    for start in graph.vertices():
        if start in seen:
            continue
        component = []
        queue = deque([start])
        seen.add(start)
        while queue:
            v = queue.popleft()
            component.append(v)
            for u in undirected_neighbors[v]:
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
        components.append(component)
    return components


def _undirected_adjacency(graph: WeightedGraph) -> Dict[Vertex, List[Vertex]]:
    adjacency: Dict[Vertex, List[Vertex]] = {v: [] for v in graph.vertices()}
    for u, v, _ in graph.edges():
        adjacency[u].append(v)
        adjacency[v].append(u)
    return adjacency


def is_connected(graph: WeightedGraph) -> bool:
    """Whether the graph is (weakly) connected.  Empty graphs count as
    connected vacuously."""
    if graph.num_vertices == 0:
        return True
    return len(connected_components(graph)) == 1
