"""Minimum spanning trees (Appendix B.1's exact substrate).

Theorem B.3's mechanism adds Laplace noise to every weight and then
releases the *exact* MST of the noised graph, so we need exact MST
algorithms that tolerate the negative weights the noise can produce.
Both Kruskal (via union–find) and Prim are provided; they agree on
total weight and serve as mutual cross-checks in the tests.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Tuple

from ..exceptions import DisconnectedGraphError, VertexNotFoundError
from ..graphs.graph import Edge, Vertex, WeightedGraph

__all__ = ["UnionFind", "kruskal_mst", "prim_mst", "spanning_tree_weight"]


class UnionFind:
    """Disjoint-set forest with union by rank and path compression."""

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register an item as its own singleton set (no-op if known)."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: Hashable) -> Hashable:
        """The canonical representative of the item's set."""
        if item not in self._parent:
            raise KeyError(f"{item!r} is not in the union-find structure")
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns ``True`` if a merge happened, ``False`` if they were
        already together.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return True

    def together(self, a: Hashable, b: Hashable) -> bool:
        """Whether two items are in the same set."""
        return self.find(a) == self.find(b)

    def __len__(self) -> int:
        return len(self._parent)


def kruskal_mst(graph: WeightedGraph) -> List[Edge]:
    """The minimum spanning tree by Kruskal's algorithm.

    Returns the canonical edge keys of the tree.  Negative weights are
    fine (Appendix B allows them).  Raises
    :class:`~repro.exceptions.DisconnectedGraphError` when no spanning
    tree exists.
    """
    edges = sorted(graph.edges(), key=lambda item: item[2])
    forest = UnionFind(graph.vertices())
    tree: List[Edge] = []
    for u, v, _ in edges:
        if forest.union(u, v):
            key = graph.edge_key(u, v)
            assert key is not None
            tree.append(key)
    if len(tree) != graph.num_vertices - 1:
        raise DisconnectedGraphError(
            "graph is disconnected; no spanning tree exists"
        )
    return tree


def prim_mst(graph: WeightedGraph, start: Vertex | None = None) -> List[Edge]:
    """The minimum spanning tree by Prim's algorithm (heap-based)."""
    if graph.num_vertices == 0:
        return []
    if start is None:
        start = next(iter(graph.vertices()))
    elif not graph.has_vertex(start):
        raise VertexNotFoundError(start)
    in_tree = {start}
    tree: List[Edge] = []
    counter = 0
    heap: List[Tuple[float, int, Vertex, Vertex]] = []
    for u, w in graph.neighbors(start):
        heap.append((w, counter, start, u))
        counter += 1
    heapq.heapify(heap)
    while heap and len(in_tree) < graph.num_vertices:
        w, _, parent, v = heapq.heappop(heap)
        if v in in_tree:
            continue
        in_tree.add(v)
        key = graph.edge_key(parent, v)
        assert key is not None
        tree.append(key)
        for u, weight in graph.neighbors(v):
            if u not in in_tree:
                counter += 1
                heapq.heappush(heap, (weight, counter, v, u))
    if len(tree) != graph.num_vertices - 1:
        raise DisconnectedGraphError(
            "graph is disconnected; no spanning tree exists"
        )
    return tree


def spanning_tree_weight(graph: WeightedGraph, tree: Iterable[Edge]) -> float:
    """The total weight ``w(T)`` of a spanning tree's edges, evaluated
    against this graph's (possibly different) weight function.

    Theorem B.3's error analysis evaluates the *noised* MST under the
    *true* weights; this helper performs exactly that evaluation.
    """
    return float(sum(graph.weight(u, v) for u, v in tree))
