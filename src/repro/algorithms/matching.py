"""Exact minimum-weight perfect matching (Appendix B.2's substrate).

Theorem B.6's mechanism noises all weights and releases the *exact*
minimum-weight perfect matching of the noised graph.  Three engines are
provided:

* :func:`hungarian_min_cost_perfect_matching` — the O(n^3) Hungarian
  algorithm (Jonker–Volgenant potentials) for bipartite graphs of any
  size.  The paper's hourglass gadgets (Figure 3, right) are bipartite
  within each gadget, so the paper's experiments run on this engine.
* :func:`exact_min_weight_perfect_matching` — exact matching for
  *general* graphs by bitmask dynamic programming, run per connected
  component (components up to ~22 vertices).  The hourglass instance is
  n disjoint 4-vertex components, so this scales linearly in gadgets.
* :func:`greedy_perfect_matching` — a fast heuristic used only as a
  scalability baseline in benchmarks, never for correctness claims.

Negative weights are permitted throughout (Appendix B allows them, and
Laplace noise produces them).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..exceptions import GraphError, MatchingError, VertexNotFoundError
from ..graphs.graph import Edge, Vertex, WeightedGraph
from .traversal import connected_components

__all__ = [
    "hungarian_min_cost_assignment",
    "hungarian_min_cost_perfect_matching",
    "exact_min_weight_perfect_matching",
    "greedy_perfect_matching",
    "matching_weight",
    "is_perfect_matching",
    "bipartition",
]

_MAX_DP_COMPONENT = 22


def hungarian_min_cost_assignment(
    cost: Sequence[Sequence[float]],
) -> Tuple[List[int], float]:
    """Solve the square assignment problem.

    Parameters
    ----------
    cost:
        An ``n x n`` matrix of finite costs (negatives allowed).

    Returns
    -------
    (assignment, total):
        ``assignment[row] = column`` minimizing the total cost.
    """
    n = len(cost)
    if n == 0:
        return [], 0.0
    for row in cost:
        if len(row) != n:
            raise ValueError("cost matrix must be square")
    inf = float("inf")
    # Jonker–Volgenant style potentials; rows/columns are 1-indexed with
    # a virtual 0 column used while growing alternating paths.
    u = [0.0] * (n + 1)
    v = [0.0] * (n + 1)
    match = [0] * (n + 1)  # match[j] = row assigned to column j
    for i in range(1, n + 1):
        match[0] = i
        j0 = 0
        minv = [inf] * (n + 1)
        way = [0] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = match[j0]
            delta = inf
            j1 = 0
            for j in range(1, n + 1):
                if used[j]:
                    continue
                reduced = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if reduced < minv[j]:
                    minv[j] = reduced
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[match[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            match[j0] = match[j1]
            j0 = j1
    assignment = [0] * n
    for j in range(1, n + 1):
        if match[j]:
            assignment[match[j] - 1] = j - 1
    total = float(sum(cost[i][assignment[i]] for i in range(n)))
    return assignment, total


def bipartition(graph: WeightedGraph) -> Tuple[List[Vertex], List[Vertex]]:
    """Two-color the graph, returning the color classes.

    Raises :class:`~repro.exceptions.GraphError` if the graph contains
    an odd cycle (is not bipartite).
    """
    color: Dict[Vertex, int] = {}
    for component in connected_components(graph):
        root = component[0]
        color[root] = 0
        stack = [root]
        while stack:
            x = stack.pop()
            for y, _ in graph.neighbors(x):
                if y not in color:
                    color[y] = 1 - color[x]
                    stack.append(y)
                elif color[y] == color[x]:
                    raise GraphError("graph is not bipartite")
    left = [v for v in graph.vertices() if color[v] == 0]
    right = [v for v in graph.vertices() if color[v] == 1]
    return left, right


def hungarian_min_cost_perfect_matching(
    graph: WeightedGraph,
    left: Sequence[Vertex] | None = None,
    right: Sequence[Vertex] | None = None,
) -> List[Edge]:
    """Minimum-weight perfect matching of a bipartite graph.

    With the bipartition omitted it is computed by two-coloring.  Raises
    :class:`~repro.exceptions.MatchingError` when no perfect matching
    exists (unequal sides, or no feasible assignment).
    """
    if left is None or right is None:
        left, right = bipartition(graph)
    left = list(left)
    right = list(right)
    for v in (*left, *right):
        if not graph.has_vertex(v):
            raise VertexNotFoundError(v)
    if len(left) + len(right) != graph.num_vertices:
        raise MatchingError(
            "bipartition does not cover every vertex of the graph"
        )
    if len(left) != len(right):
        raise MatchingError(
            f"sides have different sizes ({len(left)} vs {len(right)}); "
            "no perfect matching exists"
        )
    n = len(left)
    if n == 0:
        return []
    # Missing edges get a prohibitive finite cost; if any ends up used,
    # there is no perfect matching.  The sentinel exceeds any achievable
    # finite matching cost by construction.
    magnitude = sum(abs(w) for _, _, w in graph.edges()) + 1.0
    big = magnitude * (n + 1)
    cost = [[big] * n for _ in range(n)]
    for i, a in enumerate(left):
        for j, b in enumerate(right):
            if graph.has_edge(a, b):
                cost[i][j] = graph.weight(a, b)
    assignment, _ = hungarian_min_cost_assignment(cost)
    matching: List[Edge] = []
    for i, j in enumerate(assignment):
        if cost[i][j] >= big:
            raise MatchingError("graph has no perfect matching")
        key = graph.edge_key(left[i], right[j])
        assert key is not None
        matching.append(key)
    return matching


def exact_min_weight_perfect_matching(graph: WeightedGraph) -> List[Edge]:
    """Exact minimum-weight perfect matching of a general graph.

    Solves each connected component by bitmask dynamic programming
    (``O(2^c * c)`` per component of ``c`` vertices), so every component
    must have at most ``22`` vertices and even order.  For bipartite
    graphs prefer :func:`hungarian_min_cost_perfect_matching`, which has
    no size limit.
    """
    matching: List[Edge] = []
    for component in connected_components(graph):
        if len(component) % 2 != 0:
            raise MatchingError(
                f"component of odd size {len(component)} cannot be "
                "perfectly matched"
            )
        if len(component) > _MAX_DP_COMPONENT:
            raise MatchingError(
                f"component of size {len(component)} exceeds the bitmask-DP "
                f"limit of {_MAX_DP_COMPONENT}; use the Hungarian engine "
                "for bipartite graphs"
            )
        matching.extend(_match_component(graph, component))
    return matching


def _match_component(
    graph: WeightedGraph, component: List[Vertex]
) -> List[Edge]:
    index = {v: i for i, v in enumerate(component)}
    c = len(component)
    if c == 0:
        return []
    # adjacency as weight lookup by index pair
    weight: Dict[Tuple[int, int], float] = {}
    for v in component:
        i = index[v]
        for u, w in graph.neighbors(v):
            if u in index:
                weight[(i, index[u])] = w
    inf = float("inf")
    full = 1 << c
    best = [inf] * full
    choice: List[Tuple[int, int] | None] = [None] * full
    best[0] = 0.0
    for mask in range(full):
        if best[mask] is inf:
            continue
        if bin(mask).count("1") % 2 != 0:
            continue
        # lowest unset... we build up by *adding* pairs to the matched set
        try:
            i = next(b for b in range(c) if not mask & (1 << b))
        except StopIteration:
            continue
        for j in range(i + 1, c):
            if mask & (1 << j):
                continue
            w = weight.get((i, j))
            if w is None:
                continue
            new_mask = mask | (1 << i) | (1 << j)
            candidate = best[mask] + w
            if candidate < best[new_mask]:
                best[new_mask] = candidate
                choice[new_mask] = (i, j)
    if best[full - 1] is inf or best[full - 1] == inf:
        raise MatchingError("component has no perfect matching")
    edges: List[Edge] = []
    mask = full - 1
    while mask:
        pair = choice[mask]
        assert pair is not None
        i, j = pair
        key = graph.edge_key(component[i], component[j])
        assert key is not None
        edges.append(key)
        mask &= ~((1 << i) | (1 << j))
    return edges


def greedy_perfect_matching(graph: WeightedGraph) -> List[Edge]:
    """A greedy (lightest-edge-first) perfect matching heuristic.

    Not guaranteed optimal — benchmarks use it only as a scalability
    baseline.  Raises :class:`~repro.exceptions.MatchingError` when the
    greedy process fails to cover every vertex (which can happen even on
    graphs that do have perfect matchings).
    """
    matched: set = set()
    matching: List[Edge] = []
    for u, v, _ in sorted(graph.edges(), key=lambda item: item[2]):
        if u not in matched and v not in matched:
            matched.add(u)
            matched.add(v)
            key = graph.edge_key(u, v)
            assert key is not None
            matching.append(key)
    if len(matched) != graph.num_vertices:
        raise MatchingError("greedy matching failed to cover all vertices")
    return matching


def matching_weight(graph: WeightedGraph, matching: List[Edge]) -> float:
    """Total weight of a matching under this graph's weight function.

    Like :func:`~repro.algorithms.spanning_tree.spanning_tree_weight`,
    used to evaluate a *noised* matching under the *true* weights
    (Theorem B.6's error analysis)."""
    return float(sum(graph.weight(u, v) for u, v in matching))


def is_perfect_matching(graph: WeightedGraph, matching: List[Edge]) -> bool:
    """Whether the edge set is a perfect matching of the graph."""
    covered: set = set()
    for u, v in matching:
        if not graph.has_edge(u, v):
            return False
        if u in covered or v in covered:
            return False
        covered.add(u)
        covered.add(v)
    return len(covered) == graph.num_vertices
