"""The release-mechanism registry: one catalog, every mechanism.

The paper's value proposition is a *menu* of release mechanisms —
Algorithm 1 for trees, Algorithm 2's covering for bounded weights, the
Section 4 all-pairs baselines — and the follow-up hub-set work grew
that menu further.  Before this module the menu lived as a hard-coded
``if/elif`` ladder inside the serving façade; now it is a registry,
mirroring the engine's backend registry
(:mod:`repro.engine.backends`): each mechanism is an object with a
``name``, data-independent applicability and noise-scale predictions,
and a ``build`` hook producing a
:class:`~repro.serving.synopsis.DistanceSynopsis`.  New mechanisms
(the ROADMAP's shortcut-graph recursion, debiased hub estimators, ...)
plug in with :func:`register_mechanism` and immediately become
available to :func:`~repro.serving.config.serve`, the CLI, and
auto-selection — no consumer surgery.

Auto-selection (:func:`auto_select_mechanism`) is a registry-wide
contest: every auto-eligible mechanism predicts its per-entry noise
scale from *public* facts (topology, vertex count, declared bound,
budget shape), the prediction is adjusted by the mechanism's
``selection_margin`` (hub answers are minima over relay sums, so their
scale must undercut a baseline's by a documented factor to actually
win), and the smallest adjusted scale takes the epoch.  Eligibility
gates encode the paper's structural dominance rules — Algorithm 1
dominates everything on trees, the covering families own the declared
weight-bound regime, the hub variants enter above their documented
crossover sizes — so the contest reproduces the retired ladder's
choices bit for bit while staying open to new entries.

Everything here depends only on public quantities, so mechanism choice
itself leaks nothing (the same argument the paper makes for its
topology-dependent algorithm selection).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from .algorithms.traversal import is_connected
from .apsp.bounded import HubSetBoundedRelease, hub_bounded_optimal_k
from .apsp.hubs import HubSetRelease, predicted_hub_scale
from .core.bounded_weight import (
    BoundedWeightRelease,
    bounded_weight_optimal_k_approx,
    bounded_weight_optimal_k_pure,
)
from .core.distance_oracle import all_pairs_noise_scale
from .core.tree_distances import TreeAllPairsRelease
from .dp.composition import composed_noise_scale
from .dp.params import PrivacyParams
from .exceptions import (
    DisconnectedGraphError,
    GraphError,
    MechanismError,
    PrivacyError,
)
from .graphs.graph import Vertex, WeightedGraph
from .graphs.tree import RootedTree
from .rng import Rng
from .telemetry import get_telemetry

# NOTE: repro.serving.* is imported lazily inside build() methods —
# repro.serving.service consumes this registry, so a module-scope
# import here would be circular.

__all__ = [
    "Mechanism",
    "MechanismParams",
    "register_mechanism",
    "get_mechanism",
    "available_mechanisms",
    "registered_mechanisms",
    "standalone_mechanisms",
    "auto_select_mechanism",
    "HUB_MIN_VERTICES",
    "HUB_SELECTION_MARGIN",
    "HUB_BOUNDED_MIN_VERTICES",
]

#: Below this vertex count the hub relay detour dominates whatever the
#: noise accounting saves, so auto-selection never picks hub-set.
HUB_MIN_VERTICES = 128

#: Safety factor on the hub mechanism's predicted noise scale before it
#: may displace an all-pairs baseline: a hub answer is a *min over
#: relay sums* (twice the per-entry noise, plus min-selection bias), so
#: its scale must beat the baseline's by this margin to actually win.
HUB_SELECTION_MARGIN = 4.0

#: Crossover for layering hubs over Algorithm 2's covering: optimal
#: coverings are small at moderate V, so the |Z|^2 table only loses to
#: the hub structure's ~|Z|^{3/2} accounting at road-network scale.
HUB_BOUNDED_MIN_VERTICES = 4096


@dataclass(frozen=True)
class MechanismParams:
    """The public inputs a mechanism builds from.

    Everything here is data-independent — the budget, a declared
    public weight bound, an explicit pair workload (the pairs are the
    *queries*, not the answers), a site subset for the relay builder —
    so passing the same params object to ``applicable`` /
    ``predicted_noise_scale`` / ``build`` leaks nothing about the
    private weights.
    """

    #: The ``(eps, delta)`` budget the release will spend.
    budget: PrivacyParams
    #: Public bound ``M`` on edge weights, if declared.
    weight_bound: float | None = None
    #: Explicit pair workload (``single-pair`` only).
    pairs: Tuple[Tuple[Vertex, Vertex], ...] | None = None
    #: Site subset to build over (``boundary-relay`` only; defaults to
    #: all vertices elsewhere).
    sites: Tuple[Vertex, ...] | None = None
    #: Hub-structure overrides (hub mechanisms and the relay builder).
    hub_count: int | None = None
    ball_size: int | None = None

    @property
    def eps(self) -> float:
        """Shorthand for ``budget.eps``."""
        return self.budget.eps

    @property
    def delta(self) -> float:
        """Shorthand for ``budget.delta``."""
        return self.budget.delta


def _is_tree_topology(graph: WeightedGraph) -> bool:
    """Whether the public topology is a connected undirected tree —
    the Algorithm 1 precondition, checked from public facts only."""
    return (
        not graph.directed
        and graph.num_edges == graph.num_vertices - 1
        and is_connected(graph)
    )


def _require_connected(graph: WeightedGraph, mechanism: str) -> None:
    if not is_connected(graph):
        raise DisconnectedGraphError(
            f"{mechanism} release requires a connected graph"
        )


class Mechanism:
    """One release mechanism: a named entry in the registry.

    Subclasses set ``name`` and implement the four hooks.  All hooks
    except :meth:`build` are pure functions of public facts; ``build``
    is the only method that reads private weights or consumes the rng.

    Attributes
    ----------
    name:
        The registry key (also the CLI's ``--mechanism`` value and the
        label recorded in ledger entries).
    standalone:
        Whether a :class:`~repro.serving.service.DistanceService` can
        build this mechanism from a graph + budget alone.  ``False``
        for mechanisms needing extra inputs (an explicit pair workload,
        a site subset).
    selection_margin:
        Multiplier applied to :meth:`predicted_noise_scale` in the
        auto-selection contest; > 1 for mechanisms whose answers
        compose several released entries (hub relays), so the raw
        per-entry scale understates the answer error.
    """

    name: str = ""
    standalone: bool = True
    selection_margin: float = 1.0

    def applicable(
        self, graph: WeightedGraph, params: MechanismParams
    ) -> bool:
        """Whether the mechanism's hard preconditions hold (topology
        shape, declared bound, budget shape).  Public facts only."""
        raise NotImplementedError

    def auto_eligible(
        self, graph: WeightedGraph, params: MechanismParams
    ) -> bool:
        """Whether auto-selection may consider this mechanism.

        Stricter than :meth:`applicable`: also encodes the documented
        dominance gates (trees defer to Algorithm 1, the declared-bound
        regime belongs to the covering families, hub variants enter
        above their crossover sizes).  Default: same as applicability.
        """
        return self.applicable(graph, params)

    def predicted_noise_scale(
        self, graph: WeightedGraph, params: MechanismParams
    ) -> float:
        """The per-released-entry Laplace scale this mechanism would
        pay, predicted from public size parameters — what the contest
        compares and what :class:`~repro.serving.estimates.Estimate`
        reports before a build exists.  Always positive."""
        raise NotImplementedError

    def selection_score(
        self, graph: WeightedGraph, params: MechanismParams
    ) -> float:
        """The margin-adjusted scale the auto-selection contest ranks
        by (lower wins; ties go to earlier registration)."""
        return self.selection_margin * self.predicted_noise_scale(
            graph, params
        )

    def validate(
        self, graph: WeightedGraph, params: MechanismParams
    ) -> None:
        """Raise if :meth:`build` would fail, *before* any budget is
        spent or noise drawn.  Checks are public (topology,
        connectivity, the declared bound's pre-noise precondition), so
        a refused build leaks nothing and burns no budget."""
        raise NotImplementedError

    def build(
        self,
        graph: WeightedGraph,
        params: MechanismParams,
        rng: Rng,
        backend: str | None = None,
    ) -> Any:
        """Run the release and return its
        :class:`~repro.serving.synopsis.DistanceSynopsis`."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: Dict[str, Mechanism] = {}
#: Registration order — the contest's deterministic tie-break.
_ORDER: list[Mechanism] = []


def register_mechanism(mechanism: Mechanism) -> Mechanism:
    """Register a mechanism instance under its ``name``.

    Follow-up mechanisms (shortcut-graph recursion, debiased hub
    estimators, ...) plug in here; registration order is the
    auto-selection contest's tie-break, so later entries must strictly
    undercut earlier ones to win.
    """
    if not mechanism.name:
        raise MechanismError("mechanism must define a non-empty name")
    if mechanism.name in _REGISTRY:
        raise MechanismError(
            f"mechanism {mechanism.name!r} is already registered"
        )
    _REGISTRY[mechanism.name] = mechanism
    _ORDER.append(mechanism)
    return mechanism


def get_mechanism(name: str) -> Mechanism:
    """Look up a registered mechanism by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise MechanismError(
            f"unknown mechanism {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def available_mechanisms() -> Tuple[str, ...]:
    """Names of all registered mechanisms, sorted."""
    return tuple(sorted(_REGISTRY))


def registered_mechanisms() -> Tuple[Mechanism, ...]:
    """All registered mechanism instances, in registration order."""
    return tuple(_ORDER)


def standalone_mechanisms() -> Tuple[str, ...]:
    """Names a :class:`~repro.serving.service.DistanceService` can be
    forced to (graph + budget suffice), in registration order."""
    return tuple(m.name for m in _ORDER if m.standalone)


def auto_select_mechanism(
    graph: WeightedGraph,
    budget: PrivacyParams,
    weight_bound: float | None = None,
) -> str:
    """Pick the strongest release mechanism the graph admits.

    A registry-wide predicted-noise-scale contest: every auto-eligible
    mechanism's margin-adjusted scale competes and the smallest wins
    (ties break by registration order, so a challenger must strictly
    undercut an incumbent).  Eligibility and prediction depend only on
    public facts, so the choice is itself data-independent.
    """
    telemetry = get_telemetry()
    with telemetry.span("mechanism.select") as span:
        params = MechanismParams(budget=budget, weight_bound=weight_bound)
        candidates = [
            m for m in _ORDER if m.auto_eligible(graph, params)
        ]
        if not candidates:
            raise MechanismError(
                "no registered mechanism is auto-eligible for this graph "
                "and budget"
            )
        winner = min(
            candidates, key=lambda m: m.selection_score(graph, params)
        )
        span.set_attribute("winner", winner.name)
        span.set_attribute("candidates", len(candidates))
        telemetry.audit.record(
            "mechanism.select",
            winner=winner.name,
            candidates=[m.name for m in candidates],
        )
    telemetry.registry.counter(
        "mechanism.selected", mechanism=winner.name
    ).inc()
    return winner.name


# ----------------------------------------------------------------------
# The catalog
# ----------------------------------------------------------------------


class TreeMechanism(Mechanism):
    """Algorithm 1 + Theorem 4.2: all-pairs distances on a tree.

    Error ``O(log^1.5 V / eps)`` with zero detour — strictly the
    paper's best mechanism when the topology admits it, which is why
    every other mechanism's eligibility gate defers to it on trees.
    """

    name = "tree"

    def applicable(self, graph, params):
        return _is_tree_topology(graph)

    def predicted_noise_scale(self, graph, params):
        # The release noises one value per level of the centroid
        # recursion, whose depth is <= ceil(log2 V); the proxy is that
        # bound (exact depth would need building the recursion plan).
        n = graph.num_vertices
        depth = max(math.ceil(math.log2(n)), 1) if n >= 2 else 1
        return depth / params.eps

    def validate(self, graph, params):
        # Topology-only validation (raises NotATreeError early).
        RootedTree(graph, next(iter(graph.vertices())))

    def build(self, graph, params, rng, backend=None):
        from .serving.synopsis import TreeSynopsis

        rooted = RootedTree(graph, next(iter(graph.vertices())))
        release = TreeAllPairsRelease(rooted, params.eps, rng)
        return TreeSynopsis.from_release(release)


class _BoundedFamily(Mechanism):
    """Shared gates of the declared-weight-bound family."""

    def applicable(self, graph, params):
        return params.weight_bound is not None

    def validate(self, graph, params):
        if params.weight_bound is None:
            raise GraphError(
                f"{self.name} mechanism requires a weight_bound"
            )
        # Mirrors the release's own pre-noise precondition, just
        # earlier (before the ledger spend).
        graph.check_bounded(params.weight_bound)
        _require_connected(graph, self.name)


class BoundedWeightMechanism(_BoundedFamily):
    """Algorithm 2's covering release (Section 4.2)."""

    name = "bounded-weight"

    def auto_eligible(self, graph, params):
        # Trees defer to Algorithm 1; road scale defers to hub-bounded.
        return (
            self.applicable(graph, params)
            and not _is_tree_topology(graph)
            and graph.num_vertices < HUB_BOUNDED_MIN_VERTICES
        )

    def predicted_noise_scale(self, graph, params):
        v = graph.num_vertices
        m, eps, delta = params.weight_bound, params.eps, params.delta
        if m is None:
            raise MechanismError(
                "bounded-weight prediction requires a weight_bound"
            )
        if delta > 0:
            k = bounded_weight_optimal_k_approx(v, m, eps)
        else:
            k = bounded_weight_optimal_k_pure(v, m, eps)
        k = min(k, max(v - 1, 1))
        # Meir–Moon: a connected graph has a k-covering of size
        # <= V/(k+1); the prediction prices that worst case.
        z = max(v // (k + 1), 1)
        return composed_noise_scale(z * (z - 1) // 2, eps, delta)

    def build(self, graph, params, rng, backend=None):
        from .serving.synopsis import BoundedWeightSynopsis

        release = BoundedWeightRelease(
            graph,
            params.weight_bound,
            params.eps,
            rng,
            delta=params.delta,
            backend=backend,
        )
        return BoundedWeightSynopsis.from_release(release)


class HubBoundedMechanism(_BoundedFamily):
    """The hub structure layered over Algorithm 2's covering
    (:class:`repro.apsp.bounded.HubSetBoundedRelease`)."""

    name = "hub-bounded"

    def auto_eligible(self, graph, params):
        return (
            self.applicable(graph, params)
            and not _is_tree_topology(graph)
            and graph.num_vertices >= HUB_BOUNDED_MIN_VERTICES
        )

    def predicted_noise_scale(self, graph, params):
        v = graph.num_vertices
        m, eps, delta = params.weight_bound, params.eps, params.delta
        if m is None:
            raise MechanismError(
                "hub-bounded prediction requires a weight_bound"
            )
        k = hub_bounded_optimal_k(v, m, eps, delta)
        z = max(v // (k + 1), 1)
        return predicted_hub_scale(
            z, eps, delta, params.hub_count, params.ball_size
        )

    def build(self, graph, params, rng, backend=None):
        from .serving.synopsis import HubBoundedSynopsis

        release = HubSetBoundedRelease(
            graph,
            params.weight_bound,
            params.eps,
            rng,
            delta=params.delta,
            hub_count=params.hub_count,
            ball_size=params.ball_size,
        )
        return HubBoundedSynopsis.from_release(release)


class _AllPairsFamily(Mechanism):
    """Shared gates of the unbounded all-pairs family: non-tree
    topology (trees defer to Algorithm 1) and no declared bound (that
    regime belongs to the covering families)."""

    def applicable(self, graph, params):
        return True

    def _family_eligible(self, graph, params):
        return params.weight_bound is None and not _is_tree_topology(
            graph
        )

    def validate(self, graph, params):
        _require_connected(graph, self.name)


class AllPairsBasicMechanism(_AllPairsFamily):
    """The Section 4 intro baseline under basic composition:
    ``Lap(P/eps)`` over the ``P = V(V-1)/2`` unordered pairs."""

    name = "all-pairs-basic"

    def auto_eligible(self, graph, params):
        # Pure budgets only; an approx budget uses the advanced
        # accounting instead.
        return self._family_eligible(graph, params) and params.delta == 0

    def predicted_noise_scale(self, graph, params):
        return all_pairs_noise_scale(graph.num_vertices, params.eps)

    def build(self, graph, params, rng, backend=None):
        from .serving.synopsis import build_all_pairs_synopsis

        return build_all_pairs_synopsis(
            graph, params.eps, rng, backend=backend
        )


class AllPairsAdvancedMechanism(_AllPairsFamily):
    """The Section 4 intro baseline under advanced composition
    (Lemma 3.4 inverse); requires ``delta > 0``."""

    name = "all-pairs-advanced"

    def applicable(self, graph, params):
        return params.delta > 0

    def auto_eligible(self, graph, params):
        return self._family_eligible(graph, params) and params.delta > 0

    def predicted_noise_scale(self, graph, params):
        if params.delta <= 0:
            raise MechanismError(
                "all-pairs-advanced requires a delta > 0 budget"
            )
        return all_pairs_noise_scale(
            graph.num_vertices, params.eps, params.delta
        )

    def validate(self, graph, params):
        if params.delta <= 0:
            raise PrivacyError(
                "all-pairs-advanced requires a delta > 0 budget"
            )
        _require_connected(graph, self.name)

    def build(self, graph, params, rng, backend=None):
        from .serving.synopsis import build_all_pairs_synopsis

        return build_all_pairs_synopsis(
            graph,
            params.eps,
            rng,
            delta=params.delta,
            backend=backend,
        )


class HubSetMechanism(_AllPairsFamily):
    """The improved hub-set release of :mod:`repro.apsp`: ~V^{3/2}
    released entries instead of V^2, entering the contest above
    :data:`HUB_MIN_VERTICES` with :data:`HUB_SELECTION_MARGIN`."""

    name = "hub-set"
    selection_margin = HUB_SELECTION_MARGIN

    def auto_eligible(self, graph, params):
        return (
            self._family_eligible(graph, params)
            and graph.num_vertices >= HUB_MIN_VERTICES
        )

    def predicted_noise_scale(self, graph, params):
        return predicted_hub_scale(
            graph.num_vertices,
            params.eps,
            params.delta,
            params.hub_count,
            params.ball_size,
        )

    def build(self, graph, params, rng, backend=None):
        from .serving.synopsis import HubSetSynopsis

        release = HubSetRelease(
            graph,
            params.eps,
            rng,
            delta=params.delta,
            hub_count=params.hub_count,
            ball_size=params.ball_size,
        )
        return HubSetSynopsis.from_release(release)


class SinglePairMechanism(Mechanism):
    """A fixed pair workload released as one vectorized ``Lap(Q/eps)``
    draw (Section 1.2's opener, batched).  Needs an explicit workload,
    so it never enters auto-selection and cannot back a standalone
    service."""

    name = "single-pair"
    standalone = False

    def applicable(self, graph, params):
        return params.pairs is not None

    def auto_eligible(self, graph, params):
        return False

    def predicted_noise_scale(self, graph, params):
        # Duplicate pairs are deduplicated at build time, so this is an
        # upper bound on the actual scale.
        q = len(params.pairs) if params.pairs else 1
        return max(q, 1) / params.eps

    def validate(self, graph, params):
        if params.pairs is None:
            raise GraphError(
                "single-pair mechanism requires an explicit pairs "
                "workload"
            )

    def build(self, graph, params, rng, backend=None):
        from .serving.synopsis import build_single_pair_synopsis

        return build_single_pair_synopsis(
            graph, params.pairs, params.eps, rng, backend=backend
        )


class BoundaryRelayMechanism(Mechanism):
    """The sharded-serving relay builder: a hub structure over an
    explicit site subset (the shard boundary), wrapped as a
    :class:`~repro.serving.synopsis.HubSetSynopsis` answering
    site-to-site distances.  Distances may traverse the whole graph
    (the relay reads every edge), which is why the sharded budget
    split charges it separately."""

    name = "boundary-relay"
    standalone = False

    def applicable(self, graph, params):
        return bool(params.sites)

    def auto_eligible(self, graph, params):
        return False

    def predicted_noise_scale(self, graph, params):
        m = len(params.sites) if params.sites else graph.num_vertices
        return predicted_hub_scale(
            m,
            params.eps,
            params.delta,
            params.hub_count,
            params.ball_size,
        )

    def validate(self, graph, params):
        if not params.sites:
            raise GraphError(
                "boundary-relay mechanism requires a non-empty sites "
                "subset"
            )

    def build(self, graph, params, rng, backend=None):
        from .apsp.hubs import (
            build_hub_structure,
            default_ball_size,
            default_hub_count,
        )
        from .engine.csr import CSRGraph
        from .serving.synopsis import HubSetSynopsis

        sites = tuple(params.sites)
        m = len(sites)
        hub_count = (
            default_hub_count(m)
            if params.hub_count is None
            else params.hub_count
        )
        ball_size = (
            default_ball_size(m)
            if params.ball_size is None
            else params.ball_size
        )
        csr = CSRGraph.from_graph(graph)
        structure, _ = build_hub_structure(
            csr,
            csr.indices_of(sites),
            hub_count,
            ball_size,
            params.eps,
            params.delta,
            rng,
        )
        return HubSetSynopsis(params.budget, sites, structure)

# The canonical registration order (also the contest's tie-break):
# tree first (it dominates when applicable), then the bounded family,
# then the all-pairs families with the baselines ahead of hub-set (a
# challenger must strictly undercut the incumbent), then the
# workload/site mechanisms that never auto-select.
register_mechanism(TreeMechanism())
register_mechanism(BoundedWeightMechanism())
register_mechanism(HubBoundedMechanism())
register_mechanism(AllPairsBasicMechanism())
register_mechanism(AllPairsAdvancedMechanism())
register_mechanism(HubSetMechanism())
register_mechanism(SinglePairMechanism())
register_mechanism(BoundaryRelayMechanism())
