"""Command-line interface: run the paper's releases on graph files.

Usage (after installing the package)::

    python -m repro.cli paths --graph city.json --eps 1.0 --gamma 0.05 \
        --out released.json
    python -m repro.cli distance --graph city.json --eps 1.0 \
        --source 0 --target 14
    python -m repro.cli tree-distances --graph net.json --eps 1.0 --root 0
    python -m repro.cli mst --graph net.json --eps 1.0 --out tree.json
    python -m repro.cli info --graph net.json
    python -m repro.cli serve --graph city.json --eps 1.0 \
        --pairs 0:14 3:9 --synopsis-out synopsis.json
    python -m repro.cli serve --graph city.json --config serving.json \
        --pairs 0:14 --estimate --level 0.9
    python -m repro.cli simulate --rows 12 --cols 12 --eps 1.0 \
        --epochs 2 --queries 500 --seed 0 --backend numpy
    python -m repro.cli simulate --rows 8 --cols 8 --eps 1.0 --seed 0 \
        --metrics-out metrics.json
    python -m repro.cli metrics --in metrics.json --format prom
    python -m repro.cli metrics --in metrics.json --tenant distance-service
    python -m repro.cli simulate --rows 8 --cols 8 --eps 1.0 --seed 0 \
        --epochs 3 --audit-log audit.jsonl --metrics-out metrics.json
    python -m repro.cli audit tail --log audit.jsonl -n 5
    python -m repro.cli audit verify --log audit.jsonl --metrics metrics.json
    python -m repro.cli audit replay --log audit.jsonl
    python -m repro.cli report --in metrics.json --rules alerts.json
    python -m repro.cli simulate --rows 8 --cols 8 --eps 1.0 --seed 0 \
        --profile-out profile.json --flight-out flight.json \
        --flight-threshold 0.001 --event-log events.jsonl
    python -m repro.cli profile --in profile.json --check
    python -m repro.cli profile --in profile.json --format collapsed
    python -m repro.cli flight --in flight.json -n 5
    python -m repro.cli lint
    python -m repro.cli lint --format json --out lint-report.json
    python -m repro.cli lint --paths src/repro/serving
    python -m repro.cli lint --update-baseline

The ``serve`` and ``simulate`` subcommands speak the declarative
serving API: ``--config`` loads a
:class:`~repro.serving.config.ServingConfig` JSON document (explicit
flags override its fields on ``serve``), ``--estimate`` prints rich
estimates — value, effective noise scale, Laplace confidence
interval — instead of bare floats.  Both accept ``--metrics-out`` to
dump the run's telemetry snapshot (all metrics and spans, including
per-tenant budget gauges); the ``metrics`` subcommand reads such a
snapshot back and renders it as JSON or Prometheus text exposition,
or answers "how much budget does tenant X have left" directly with
``--tenant``.

``--audit-log`` on ``serve`` and ``simulate`` appends the run's
privacy audit trail — every budget spend, epoch rotation, synopsis
build, and mechanism selection — to a hash-chained JSONL file (see
:mod:`repro.telemetry.audit`).  The ``audit`` subcommand inspects such
a log: ``tail`` prints the last records, ``replay`` reconstructs the
per-tenant privacy odometer, and ``verify`` fail-closed checks the
hash chain and the recorded budget arithmetic (optionally
cross-checking a ``--metrics`` snapshot's gauges bit-exactly).  The
``report`` subcommand renders a status summary — budget positions,
latency quantiles, and alerts fired by a declarative ``--rules``
document (:mod:`repro.telemetry.monitor`) — exiting 1 when any alert
fires, so it slots into CI and cron health checks.

The ``lint`` subcommand runs :mod:`repro.privlint`, the repo's
AST-based privacy/determinism static analyzer, over ``src/repro``
(or ``--paths`` subsets, pre-commit style).  It exits 1 when any
finding is not covered by the committed baseline or an inline
``privlint: ignore`` comment, which is the CI lint gate; ``--format
json`` emits the versioned ``repro-lint`` report document and
``--update-baseline`` regrows the grandfathered-findings baseline.

``serve`` and ``simulate`` also take the observability flags of
:mod:`repro.telemetry.profile` and :mod:`repro.telemetry.logging`:
``--profile-out`` runs the deterministic phase profiler plus the
background stack sampler and dumps a versioned ``repro-profile``
document (phase attribution table + flamegraph.pl-compatible
collapsed stacks); ``--flight-out`` arms the slow-query flight
recorder (``--flight-threshold`` sets the fixed fallback while the
adaptive per-route p99 warms up) and dumps its exemplar ring;
``--event-log`` appends structured JSONL lifecycle events.  The
``profile`` and ``flight`` subcommands read those documents back —
``profile --check`` fail-closed verifies that per-phase self times
sum to the profiled wall clock.  All of it is purely observational:
seeded answers are bit-identical with every flag on or off.

Graphs are read from the JSON format of :mod:`repro.graphs.io` (or,
with ``--edge-list``, from whitespace ``u v w`` lines).  All randomness
is controlled by ``--seed`` so runs are reproducible.  Released
artifacts (noisy graphs, trees) are written as JSON; scalar results are
printed to stdout.

Privacy note: each CLI invocation performs one release costing the
given ``--eps``.  Composition across invocations is the caller's
responsibility (see :class:`repro.dp.accountant.Accountant` for
programmatic budgeting).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from . import (
    Rng,
    release_private_mst,
    release_private_paths,
    release_synthetic_graph,
    release_tree_all_pairs,
    private_distance,
)
from .exceptions import ReproError
from .graphs.graph import WeightedGraph
from .graphs.io import graph_to_json, load_graph, read_edge_list
from .serving.service import MECHANISMS

__all__ = ["main", "build_parser"]


def _load(args: argparse.Namespace) -> WeightedGraph:
    path = Path(args.graph)
    if args.edge_list:
        with path.open() as stream:
            return read_edge_list(stream)
    return load_graph(path)


def _parse_vertex(token: str) -> object:
    """Interpret a vertex argument: int if it looks like one, tuple if
    it contains commas (grid vertices like ``3,4``), else string."""
    if "," in token:
        return tuple(_parse_vertex(part) for part in token.split(","))
    try:
        return int(token)
    except ValueError:
        return token


def _write_graph(graph: WeightedGraph, out: str | None) -> None:
    payload = graph_to_json(graph)
    if out:
        Path(out).write_text(payload)
    else:
        print(payload)


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Differentially private graph releases in the private "
            "edge-weight model (Sealfon, PODS 2016)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, needs_eps: bool = True):
        p.add_argument("--graph", required=True, help="input graph file")
        p.add_argument(
            "--edge-list",
            action="store_true",
            help="input is 'u v w' lines instead of repro JSON",
        )
        if needs_eps:
            p.add_argument(
                "--eps", type=float, required=True, help="privacy budget"
            )
        p.add_argument(
            "--seed", type=int, default=None, help="RNG seed (reproducible)"
        )

    p = sub.add_parser(
        "info", help="print graph statistics (no privacy cost)"
    )
    add_common(p, needs_eps=False)

    p = sub.add_parser(
        "distance",
        help="one private distance query (Laplace, sensitivity 1)",
    )
    add_common(p)
    p.add_argument("--source", required=True)
    p.add_argument("--target", required=True)
    p.add_argument(
        "--backend",
        choices=["auto", "python", "numpy"],
        default="auto",
        help="engine backend for the exact Dijkstra half of the query",
    )

    p = sub.add_parser(
        "paths",
        help="Algorithm 3: release a noisy graph answering all-pairs "
        "shortest paths",
    )
    add_common(p)
    p.add_argument("--gamma", type=float, default=0.05)
    p.add_argument(
        "--no-hop-bias",
        action="store_true",
        help="ablation: omit the (1/eps) log(E/gamma) offset",
    )
    p.add_argument("--out", help="write released graph JSON here")
    p.add_argument("--source", help="also print one released path")
    p.add_argument("--target")

    p = sub.add_parser(
        "synthetic",
        help="release a noisy synthetic graph (Section 4 baseline)",
    )
    add_common(p)
    p.add_argument("--out", help="write released graph JSON here")

    p = sub.add_parser(
        "tree-distances",
        help="Algorithm 1 + Theorem 4.2: all-pairs distances on a tree",
    )
    add_common(p)
    p.add_argument("--root", required=True)
    p.add_argument(
        "--pairs",
        nargs="*",
        default=[],
        metavar="X:Y",
        help="pairs to print, e.g. 3:17 0:9 (default: all from root)",
    )

    p = sub.add_parser(
        "mst", help="Theorem B.3: release an almost-minimum spanning tree"
    )
    add_common(p)
    p.add_argument("--out", help="write released tree edges JSON here")

    p = sub.add_parser(
        "serve",
        help="build a one-epoch distance synopsis and answer queries "
        "from it (post-processing; one budget spend total)",
    )
    add_common(p, needs_eps=False)
    p.add_argument(
        "--eps", type=float, default=None, help="privacy budget "
        "(required unless --config provides it)"
    )
    p.add_argument(
        "--config",
        default=None,
        help="load a declarative ServingConfig JSON document; explicit "
        "flags override its fields",
    )
    p.add_argument(
        "--delta", type=float, default=None, help="approx-DP budget delta"
    )
    p.add_argument(
        "--weight-bound",
        type=float,
        default=None,
        help="public bound M on edge weights (enables the Section 4.2 "
        "covering mechanism on non-tree graphs)",
    )
    p.add_argument(
        "--mechanism",
        choices=list(MECHANISMS),
        default=None,
        help="force a mechanism instead of auto-selecting",
    )
    p.add_argument(
        "--pairs",
        nargs="+",
        required=True,
        metavar="X:Y",
        help="queries to serve, e.g. 3:17 0,0:4,4",
    )
    p.add_argument(
        "--backend",
        choices=["auto", "python", "numpy"],
        default=None,
        help="engine backend for the exact-recomputation sweeps "
        "(default: auto-select on graph size)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition the graph into this many regional tenants and "
        "relay cross-shard queries over the boundary hubs (default 1 "
        "= unsharded)",
    )
    p.add_argument(
        "--estimate",
        action="store_true",
        help="print rich estimates (value, noise scale, confidence "
        "interval) instead of bare values",
    )
    p.add_argument(
        "--level",
        type=float,
        default=0.95,
        help="confidence level for --estimate intervals (default 0.95)",
    )
    p.add_argument(
        "--synopsis-out",
        help="also write the synopsis JSON here (unsharded only)",
    )
    _add_metrics_out(p)
    _add_audit_log(p)
    _add_observability(p)

    p = sub.add_parser(
        "simulate",
        help="replay rush-hour traffic through the serving engine and "
        "report throughput and empirical error",
    )
    p.add_argument("--rows", type=int, default=12)
    p.add_argument("--cols", type=int, default=12)
    p.add_argument(
        "--eps", type=float, default=None, help="epoch budget "
        "(required unless --config provides it)"
    )
    p.add_argument(
        "--config",
        default=None,
        help="load a declarative ServingConfig JSON document instead "
        "of the flag-style serving parameters",
    )
    p.add_argument("--delta", type=float, default=None)
    p.add_argument(
        "--epochs", type=int, default=1, help="data epochs to replay"
    )
    p.add_argument(
        "--queries", type=int, default=1000, help="rider queries per epoch"
    )
    p.add_argument(
        "--weight-bound",
        type=float,
        default=None,
        help="cap travel times at M and use the covering mechanism",
    )
    p.add_argument(
        "--mechanism",
        choices=list(MECHANISMS),
        default=None,
        help="force a mechanism instead of auto-selecting",
    )
    p.add_argument(
        "--backend",
        choices=["auto", "python", "numpy"],
        default=None,
        help="engine backend for releases and ground-truth sweeps "
        "(default: auto-select on graph size)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve through this many regional shard tenants plus a "
        "boundary-hub relay (default 1 = unsharded)",
    )
    p.add_argument("--seed", type=int, default=None)
    _add_metrics_out(p)
    _add_audit_log(p)
    _add_observability(p)

    p = sub.add_parser(
        "audit",
        help="inspect and verify a privacy audit log written by "
        "serve/simulate --audit-log (fail-closed: any hash-chain or "
        "odometer mismatch is an error)",
    )
    p.add_argument(
        "action",
        choices=["tail", "verify", "replay"],
        help="tail: print the last records; verify: check the hash "
        "chain and budget arithmetic; replay: reconstruct the "
        "per-tenant privacy odometer",
    )
    p.add_argument(
        "--log", required=True, help="audit log JSONL path"
    )
    p.add_argument(
        "-n",
        type=int,
        default=10,
        help="records to print for tail (default 10)",
    )
    p.add_argument(
        "--metrics",
        default=None,
        help="for verify: also cross-check the replayed budgets "
        "against this telemetry snapshot's gauges (bit-exact)",
    )

    p = sub.add_parser(
        "report",
        help="render a status summary (budget positions, latency "
        "quantiles, fired alerts) from a telemetry snapshot; exits 1 "
        "when any alert fires",
    )
    p.add_argument(
        "--in",
        dest="report_in",
        required=True,
        help="telemetry snapshot JSON written by --metrics-out",
    )
    p.add_argument(
        "--rules",
        default=None,
        help="evaluate this repro-alert-rules JSON document "
        "(threshold and budget-burn-rate rules)",
    )
    p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="render as human-readable text or JSON (default text)",
    )

    p = sub.add_parser(
        "metrics",
        help="render a telemetry snapshot written by serve/simulate "
        "--metrics-out (no privacy cost: snapshots hold only "
        "operational measurements)",
    )
    p.add_argument(
        "--in",
        dest="metrics_in",
        required=True,
        help="telemetry snapshot JSON written by --metrics-out "
        "('-' reads stdin, so snapshots convert offline in a pipe)",
    )
    p.add_argument(
        "--format",
        choices=["json", "prom"],
        default="json",
        help="render as pretty JSON or Prometheus text exposition",
    )
    p.add_argument(
        "--tenant",
        default=None,
        help="print this ledger tenant's remaining budget gauges "
        "instead of the full snapshot",
    )
    p.add_argument(
        "--out",
        default=None,
        help="write the rendering here instead of stdout",
    )

    p = sub.add_parser(
        "profile",
        help="render a phase-profile document written by serve/simulate "
        "--profile-out (attribution table, collapsed stacks, or raw "
        "JSON); --check verifies the attribution adds up",
    )
    p.add_argument(
        "--in",
        dest="profile_in",
        required=True,
        help="repro-profile JSON document ('-' reads stdin)",
    )
    p.add_argument(
        "--format",
        choices=["phases", "collapsed", "json"],
        default="phases",
        help="phases: the attribution table; collapsed: "
        "flamegraph.pl-compatible stack lines; json: the raw document",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="fail-closed consistency check: no phase's self time "
        "exceeds its wall time, and the self times sum to the "
        "profiled total within 10%%; exits 1 on violation",
    )

    p = sub.add_parser(
        "flight",
        help="inspect a slow-query flight-recorder dump written by "
        "serve/simulate --flight-out",
    )
    p.add_argument(
        "--in",
        dest="flight_in",
        required=True,
        help="repro-flight JSON document ('-' reads stdin)",
    )
    p.add_argument(
        "-n",
        type=int,
        default=10,
        help="exemplar records to print (default 10, newest last)",
    )
    p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="compact text lines or the raw document",
    )

    p = sub.add_parser(
        "lint",
        help="run the privlint static privacy/determinism analyzer "
        "(PL1 privacy taint — inter-procedural, PL2 rng discipline, "
        "PL3 observational purity, PL4 determinism hygiene, PL5 "
        "budget hygiene); exits 1 on findings not covered by the "
        "committed baseline",
    )
    p.add_argument(
        "--paths",
        nargs="+",
        default=None,
        metavar="PATH",
        help="files or directories to check (default: the whole "
        "installed repro package; directories never descend into "
        "tests/)",
    )
    p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="findings as text lines or the versioned repro-lint "
        "JSON report document (default text)",
    )
    p.add_argument(
        "--baseline",
        default=None,
        help="baseline file of grandfathered findings (default: the "
        "committed src/repro/privlint/baseline.json)",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather every current "
        "finding, then exit 0 (review the diff before committing)",
    )
    p.add_argument(
        "--out",
        default=None,
        help="also write the rendering here (CI uploads the JSON "
        "report as an artifact)",
    )
    p.add_argument(
        "--callgraph-out",
        default=None,
        metavar="PATH",
        help="write the project call graph the inter-procedural "
        "rules ran over as a versioned repro-callgraph JSON "
        "document (debugging aid; CI uploads it as an artifact)",
    )
    p.add_argument(
        "--report-unused-ignores",
        action="store_true",
        help="also list inline 'privlint: ignore' comments that "
        "suppressed no finding this run (warn-only; see "
        "--strict-ignores)",
    )
    p.add_argument(
        "--strict-ignores",
        action="store_true",
        help="exit 1 when any inline ignore suppressed no finding "
        "(implies --report-unused-ignores)",
    )

    return parser


def _add_metrics_out(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--metrics-out",
        default=None,
        help="write the run's telemetry snapshot here (metrics + "
        "spans; readable by the metrics subcommand)",
    )
    p.add_argument(
        "--metrics-format",
        choices=["json", "prom"],
        default="json",
        help="format for --metrics-out (default json snapshot; prom "
        "drops spans)",
    )


def _add_audit_log(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--audit-log",
        default=None,
        help="append the run's privacy audit trail (budget spends, "
        "rotations, builds) to this hash-chained JSONL file; "
        "readable by the audit subcommand",
    )


def _add_observability(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--event-log",
        default=None,
        help="append the run's structured lifecycle events (service "
        "start, builds, refreshes, batches) as JSON lines here",
    )
    p.add_argument(
        "--profile-out",
        default=None,
        help="profile the run (deterministic phase attribution plus a "
        "background stack sampler) and write the repro-profile JSON "
        "document here; readable by the profile subcommand",
    )
    p.add_argument(
        "--flight-out",
        default=None,
        help="record slow-query exemplars and write the repro-flight "
        "JSON document here; readable by the flight subcommand",
    )
    p.add_argument(
        "--flight-threshold",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fixed slow-query threshold while the recorder's "
        "per-route p99 sketch warms up (default: capture nothing "
        "until warmed)",
    )


def _observability_bundle(args: argparse.Namespace, telemetry):
    """Instruments requested by --profile-out / --flight-out, attached
    to (or creating) the run's private bundle.

    Returns ``(telemetry, profiler, sampler, flight)``; instrument
    slots are None when the matching flag is absent.  The instruments
    are created *here* rather than letting
    :func:`~repro.serving.config.serve` attach its own because the CLI
    must hold the references to dump them after the run — serve() sees
    them already enabled on the bundle and leaves them alone.
    """
    profiler = sampler = flight = None
    wants_flight = (
        args.flight_out is not None or args.flight_threshold is not None
    )
    if args.profile_out or wants_flight:
        from .telemetry import (
            FlightRecorder,
            PhaseProfiler,
            SamplingProfiler,
            Telemetry,
        )

        if telemetry is None:
            telemetry = Telemetry()
        if args.profile_out:
            profiler = PhaseProfiler()
            telemetry = telemetry.with_profiler(profiler)
            sampler = SamplingProfiler()
        if wants_flight:
            flight = FlightRecorder(
                threshold_seconds=args.flight_threshold
            )
            telemetry = telemetry.with_flight(flight)
    return telemetry, profiler, sampler, flight


def _run_observed(telemetry, profiler, sampler, root: str, fn):
    """Run ``fn`` under the bundle's root span with the stack sampler
    going, so every phase of the run lands inside one root frame and
    the attribution table's self times sum to the run's wall clock."""
    if profiler is None:
        return fn()
    from .telemetry import use_telemetry

    sampler.start()
    try:
        with use_telemetry(telemetry), telemetry.span(root):
            return fn()
    finally:
        sampler.stop()


def _write_observability(
    args: argparse.Namespace, profiler, sampler, flight
) -> None:
    if args.profile_out:
        from .telemetry import profile_document

        document = profile_document(profiler, sampler)
        Path(args.profile_out).write_text(
            json.dumps(document, indent=2)
        )
    if args.flight_out:
        Path(args.flight_out).write_text(
            json.dumps(flight.to_document(), indent=2)
        )


def _cmd_info(args: argparse.Namespace) -> int:
    # Topology-only statistics: in the paper's model the topology is
    # public but the weights are private, so printing total_weight()
    # here (as this command once did) was a raw unnoised release —
    # privlint PL1 caught it.  Weight-derived statistics belong behind
    # a budgeted release (the distance/serve subcommands).
    graph = _load(args)
    from .algorithms import is_connected

    stats = {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "directed": graph.directed,
        "connected": is_connected(graph),
    }
    print(json.dumps(stats, indent=2))
    return 0


def _cmd_distance(args: argparse.Namespace) -> int:
    graph = _load(args)
    rng = Rng(args.seed)
    value = private_distance(
        graph,
        _parse_vertex(args.source),
        _parse_vertex(args.target),
        eps=args.eps,
        rng=rng,
        backend=args.backend,
    )
    print(f"{value:.6f}")
    return 0


def _cmd_paths(args: argparse.Namespace) -> int:
    graph = _load(args)
    rng = Rng(args.seed)
    release = release_private_paths(
        graph,
        eps=args.eps,
        gamma=args.gamma,
        rng=rng,
        hop_bias=not args.no_hop_bias,
    )
    _write_graph(release.graph, args.out)
    if args.source and args.target:
        path = release.path(
            _parse_vertex(args.source), _parse_vertex(args.target)
        )
        print(json.dumps({"path": [str(v) for v in path]}))
    return 0


def _cmd_synthetic(args: argparse.Namespace) -> int:
    graph = _load(args)
    rng = Rng(args.seed)
    release = release_synthetic_graph(graph, eps=args.eps, rng=rng)
    _write_graph(release.graph, args.out)
    return 0


def _cmd_tree_distances(args: argparse.Namespace) -> int:
    graph = _load(args)
    rng = Rng(args.seed)
    root = _parse_vertex(args.root)
    release = release_tree_all_pairs(graph, eps=args.eps, rng=rng, root=root)
    if args.pairs:
        for token in args.pairs:
            x_raw, _, y_raw = token.partition(":")
            x, y = _parse_vertex(x_raw), _parse_vertex(y_raw)
            print(f"{token}\t{release.distance(x, y):.6f}")
    else:
        single = release.single_source
        for v in graph.vertices():
            print(f"{root}:{v}\t{single.distance_from_root(v):.6f}")
    return 0


def _cmd_mst(args: argparse.Namespace) -> int:
    graph = _load(args)
    rng = Rng(args.seed)
    release = release_private_mst(graph, eps=args.eps, rng=rng)
    edges = [[str(u), str(v)] for u, v in release.tree_edges]
    payload = json.dumps({"tree_edges": edges})
    if args.out:
        Path(args.out).write_text(payload)
    else:
        print(payload)
    return 0


def _serving_config(args: argparse.Namespace):
    """Assemble the declarative :class:`~repro.serving.ServingConfig`
    for the ``serve`` subcommand: the ``--config`` document (if any)
    as the base, explicit flags layered on top."""
    from .exceptions import GraphError
    from .serving import ServingConfig

    if args.config:
        text = Path(args.config).read_text()
        config = ServingConfig.from_json(text)
        # A DP budget is never defaulted: the document must state eps
        # explicitly (ServingConfig's eps=1.0 dataclass default is for
        # library callers who wrote it in code, not config files).
        if args.eps is None and "eps" not in json.loads(text):
            raise GraphError(
                "serve needs --eps (or a --config document providing it)"
            )
    else:
        if args.eps is None:
            raise GraphError(
                "serve needs --eps (or a --config document providing it)"
            )
        config = ServingConfig()
    overrides: dict = {}
    if args.eps is not None:
        overrides["eps"] = args.eps
    if args.delta is not None:
        overrides["delta"] = args.delta
    if args.weight_bound is not None:
        overrides["weight_bound"] = args.weight_bound
    if args.mechanism is not None:
        overrides["mechanism"] = args.mechanism
    if args.backend is not None:
        # The CLI's "auto" spelling is the config's None.
        overrides["backend"] = (
            None if args.backend == "auto" else args.backend
        )
    if args.shards is not None:
        overrides["shards"] = args.shards
    if args.audit_log is not None:
        overrides["audit_log"] = args.audit_log
    if args.event_log is not None:
        overrides["event_log"] = args.event_log
    return config.with_overrides(**overrides) if overrides else config


def _write_metrics(telemetry, path: str, fmt: str) -> None:
    """Dump a run's telemetry bundle for the ``metrics`` subcommand."""
    if fmt == "prom":
        Path(path).write_text(telemetry.prometheus_text())
    else:
        Path(path).write_text(json.dumps(telemetry.snapshot(), indent=2))


def _cmd_serve(args: argparse.Namespace) -> int:
    from .exceptions import GraphError
    from .serving import serve
    from .telemetry import Telemetry

    graph = _load(args)
    rng = Rng(args.seed)
    config = _serving_config(args)
    if config.shards > 1 and args.synopsis_out:
        raise GraphError(
            "--synopsis-out is not supported with --shards > 1 "
            "(a sharded service holds one synopsis per shard)"
        )
    # A fresh bundle per invocation: the snapshot measures this run
    # alone, not whatever else the process default has accumulated.
    telemetry = Telemetry() if args.metrics_out else None
    telemetry, profiler, sampler, flight = _observability_bundle(
        args, telemetry
    )

    def run():  # privlint: ignore[PL1] prints released estimates served from the budget-accounted noised synopsis
        service = serve(graph, config, rng, telemetry=telemetry)
        print(
            f"# mechanism: {service.mechanism}  "
            f"budget: {service.epoch_budget}"
        )
        for token in args.pairs:
            s_raw, _, t_raw = token.partition(":")
            s, t = _parse_vertex(s_raw), _parse_vertex(t_raw)
            if args.estimate:
                estimate = service.estimate(s, t)
                lo, hi = estimate.confidence_interval(args.level)
                print(
                    f"{token}\t{estimate.value:.6f}\t"
                    f"scale={estimate.noise_scale:g}\t"
                    f"ci{args.level:g}=[{lo:.6f}, {hi:.6f}]"
                )
            else:
                print(f"{token}\t{service.query(s, t):.6f}")
        return service

    service = _run_observed(
        telemetry, profiler, sampler, "serve.run", run
    )
    if args.synopsis_out:
        Path(args.synopsis_out).write_text(service.synopsis.to_json())
    if args.metrics_out:
        _write_metrics(
            service.telemetry, args.metrics_out, args.metrics_format
        )
    _write_observability(args, profiler, sampler, flight)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:  # privlint: ignore[PL1] prints released estimates and analyst-side error metrics from the replay harness
    from .exceptions import GraphError
    from .serving import ServingConfig, replay_rush_hour
    from .telemetry import Telemetry

    rng = Rng(args.seed)
    telemetry = Telemetry() if args.metrics_out else None
    telemetry, profiler, sampler, flight = _observability_bundle(
        args, telemetry
    )
    if args.config:
        # The config document is the single source of truth here —
        # refuse explicit serving flags rather than silently dropping
        # them (serve's flags-override-config layering would be
        # ambiguous for a whole replay's worth of parameters).
        clashes = sorted(
            name
            for name, value in (
                ("--eps", args.eps),
                ("--delta", args.delta),
                ("--weight-bound", args.weight_bound),
                ("--mechanism", args.mechanism),
                ("--backend", args.backend),
                ("--shards", args.shards),
            )
            if value is not None
        )
        if clashes:
            raise GraphError(
                "simulate got both --config and flag-style serving "
                f"parameters ({', '.join(clashes)}); pass one or the "
                "other"
            )
        text = Path(args.config).read_text()
        config = ServingConfig.from_json(text)
        if "eps" not in json.loads(text):
            raise GraphError(
                "simulate needs --eps (or a --config document "
                "providing it)"
            )
        report = _run_observed(
            telemetry,
            profiler,
            sampler,
            "simulate.run",
            lambda: replay_rush_hour(
                rng,
                rows=args.rows,
                cols=args.cols,
                epochs=args.epochs,
                queries_per_epoch=args.queries,
                config=config,
                telemetry=telemetry,
                audit_log=args.audit_log,
                event_log=args.event_log,
            ),
        )
    else:
        if args.eps is None:
            raise GraphError(
                "simulate needs --eps (or a --config document "
                "providing it)"
            )
        report = _run_observed(
            telemetry,
            profiler,
            sampler,
            "simulate.run",
            lambda: replay_rush_hour(
                rng,
                rows=args.rows,
                cols=args.cols,
                eps=args.eps,
                delta=args.delta if args.delta is not None else 0.0,
                epochs=args.epochs,
                queries_per_epoch=args.queries,
                weight_bound=args.weight_bound,
                backend=args.backend,
                mechanism=args.mechanism,
                shards=args.shards,
                telemetry=telemetry,
                audit_log=args.audit_log,
                event_log=args.event_log,
            ),
        )
    if args.metrics_out:
        _write_metrics(telemetry, args.metrics_out, args.metrics_format)
    _write_observability(args, profiler, sampler, flight)
    print(json.dumps(report.as_dict(), indent=2))
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .telemetry import validate_snapshot
    from .telemetry.audit import (
        read_audit_log,
        replay_odometer,
        verify_against_snapshot,
        verify_audit_log,
    )

    records = read_audit_log(args.log)
    if args.action == "tail":
        for record in records[-args.n :] if args.n > 0 else []:
            print(json.dumps(record))
        return 0
    if args.action == "replay":
        print(json.dumps(replay_odometer(records), indent=2))
        return 0
    summary = verify_audit_log(records)
    # verify prints the compact verdict; replay prints the odometer.
    del summary["odometer"]
    if args.metrics is not None:
        document = _load_snapshot(args.metrics)
        validate_snapshot(document)
        summary["gauges_checked"] = verify_against_snapshot(
            records, document
        )
    print(json.dumps(summary, indent=2))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .telemetry import validate_snapshot
    from .telemetry.monitor import evaluate_rules, load_alert_rules

    document = _load_snapshot(args.report_in)
    validate_snapshot(document)
    budgets: dict = {}
    latency: list = []
    for entry in document["metrics"]:
        labels = entry.get("labels", {})
        if (
            entry["kind"] == "gauge"
            and entry["name"].startswith("budget.")
            and "tenant" in labels
        ):
            budgets.setdefault(labels["tenant"], {})[entry["name"]] = (
                entry["value"]
            )
        elif (
            entry["kind"] == "histogram"
            and entry["name"] == "serving.query.latency"
        ):
            latency.append(
                {
                    "labels": dict(labels),
                    "count": entry.get("count", 0),
                    **(entry.get("quantiles") or {}),
                }
            )
    alerts = []
    if args.rules is not None:
        rules = load_alert_rules(Path(args.rules).read_text())
        alerts = evaluate_rules(rules, document)
    report = {
        "budgets": {
            tenant: {
                "eps_spent": gauges.get("budget.eps.spent", 0.0),
                "eps_remaining": gauges.get("budget.eps.remaining", 0.0),
                "delta_remaining": gauges.get(
                    "budget.delta.remaining", 0.0
                ),
            }
            for tenant, gauges in sorted(budgets.items())
        },
        "latency": latency,
        "alerts": [alert.as_dict() for alert in alerts],
    }
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        _print_text_report(report, rules_given=args.rules is not None)
    return 1 if alerts else 0


def _print_text_report(report: dict, rules_given: bool) -> None:
    print("== budgets ==")
    if not report["budgets"]:
        print("(no budget gauges in snapshot)")
    for tenant, position in report["budgets"].items():
        print(
            f"{tenant}: eps spent {position['eps_spent']:g} / "
            f"remaining {position['eps_remaining']:g} "
            f"(delta remaining {position['delta_remaining']:g})"
        )
    print("== query latency ==")
    if not report["latency"]:
        print("(no serving.query.latency histograms in snapshot)")
    for entry in report["latency"]:
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(entry["labels"].items())
        )
        quantiles = "  ".join(
            f"{q}={entry[q] * 1e6:.1f}us"
            for q in ("p50", "p95", "p99")
            if entry.get(q) is not None
        )
        print(f"{labels or '(no labels)'}: n={entry['count']}  {quantiles}")
    print("== alerts ==")
    if not report["alerts"]:
        print("(no rules given)" if not rules_given else "(none fired)")
    for alert in report["alerts"]:
        print(
            f"[{alert['severity']}] {alert['rule']}: {alert['message']}"
        )


def _load_snapshot(path: str) -> dict:
    """Parse a JSON document from a file, or stdin when ``path`` is
    ``-`` — so snapshots and profiles convert offline in a pipe."""
    from .exceptions import TelemetryError

    text = sys.stdin.read() if path == "-" else Path(path).read_text()
    try:
        return json.loads(text)
    except json.JSONDecodeError as error:
        raise TelemetryError(
            f"{'stdin' if path == '-' else path} is not valid JSON: "
            f"{error}"
        ) from None


def _emit(rendered: str, out: str | None) -> None:
    """Print a rendering, or write it to ``out`` when given."""
    if out is not None:
        Path(out).write_text(rendered)
    else:
        sys.stdout.write(rendered)


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .telemetry import snapshot_to_prometheus, validate_snapshot

    document = _load_snapshot(args.metrics_in)
    validate_snapshot(document)
    if args.tenant is not None:
        rendered = (
            json.dumps(_tenant_budget(document, args.tenant), indent=2)
            + "\n"
        )
    elif args.format == "prom":
        rendered = snapshot_to_prometheus(document)
    else:
        rendered = json.dumps(document, indent=2) + "\n"
    _emit(rendered, args.out)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .telemetry import validate_profile

    document = validate_profile(_load_snapshot(args.profile_in))
    if args.check:
        problems = _check_profile(document)
        if problems:
            for problem in problems:
                print(f"profile check failed: {problem}", file=sys.stderr)
            return 1
    if args.format == "json":
        print(json.dumps(document, indent=2))
    elif args.format == "collapsed":
        sys.stdout.write(str(document.get("collapsed") or ""))
    else:
        _print_phase_table(document)
    return 0


def _check_profile(document: dict) -> list:
    """Attribution-consistency violations in a profile document (empty
    list = consistent): per-phase self time bounded by wall time, and
    self times summing to the profiled total within 10%."""
    problems: list = []
    phases = document["phases"]
    if not phases:
        problems.append("document has no phases")
        return problems
    attributed = 0.0
    for row in phases:
        self_seconds = float(row["wall_self_seconds"])
        attributed += self_seconds
        if self_seconds > float(row["wall_seconds"]) + 1e-9:
            problems.append(
                f"phase {row['phase']!r} self time {self_seconds:.6f}s "
                f"exceeds its wall time {row['wall_seconds']:.6f}s"
            )
    total = float(document["total_wall_seconds"])
    if total > 0.0:
        drift = abs(attributed - total) / total
        if drift > 0.10:
            problems.append(
                f"attributed self time {attributed:.6f}s is "
                f"{drift:.1%} off the profiled total {total:.6f}s "
                "(tolerance 10%)"
            )
    return problems


def _print_phase_table(document: dict) -> None:
    print(
        f"# profiled wall time: {document['total_wall_seconds']:.6f}s"
        + (
            f"  stack samples: {document['samples']}"
            if "samples" in document
            else ""
        )
    )
    print(
        f"{'phase':<24} {'count':>7} {'wall_s':>10} {'self_s':>10} "
        f"{'cpu_s':>10} {'alloc_kb':>10}"
    )
    for row in document["phases"]:
        print(
            f"{row['phase']:<24} {row['count']:>7} "
            f"{row['wall_seconds']:>10.6f} "
            f"{row['wall_self_seconds']:>10.6f} "
            f"{row['cpu_seconds']:>10.6f} "
            f"{row['alloc_net_bytes'] / 1024.0:>+10.1f}"
        )


def _cmd_flight(args: argparse.Namespace) -> int:
    from .telemetry import validate_flight

    document = validate_flight(_load_snapshot(args.flight_in))
    if args.format == "json":
        print(json.dumps(document, indent=2))
        return 0
    records = document["records"]
    print(
        f"# considered {document['considered']}  "
        f"captured {document['captured']}  "
        f"retained {len(records)} (capacity {document['capacity']})"
    )
    for record in records[-args.n :] if args.n > 0 else []:
        pair = record.get("pair")
        pair_text = f"{pair[0]}->{pair[1]}" if pair else "-"
        phases = record.get("phases") or {}
        top = max(phases, key=phases.get) if phases else "-"
        print(
            f"[{record['seq']}] {record['route']} {pair_text}  "
            f"{record['latency_seconds'] * 1e6:.1f}us "
            f"(threshold {record['threshold_seconds'] * 1e6:.1f}us, "
            f"{'adaptive' if record.get('adaptive') else 'fixed'})  "
            f"mechanism={record.get('mechanism') or '-'}  "
            f"epoch={record.get('epoch')}  top_phase={top}"
        )
    return 0


def _tenant_budget(document: dict, tenant: str) -> dict:
    """One tenant's budget position from a snapshot's gauges."""
    from .exceptions import TelemetryError

    gauges = {
        entry["name"]: entry["value"]
        for entry in document["metrics"]
        if entry["kind"] == "gauge"
        and entry["name"].startswith("budget.")
        and entry.get("labels", {}).get("tenant") == tenant
    }
    if not gauges:
        known = sorted(
            {
                entry["labels"]["tenant"]
                for entry in document["metrics"]
                if entry["name"].startswith("budget.")
                and "tenant" in entry.get("labels", {})
            }
        )
        raise TelemetryError(
            f"no budget gauges for tenant {tenant!r} in the snapshot"
            + (f"; known tenants: {', '.join(known)}" if known else "")
        )
    return {
        "tenant": tenant,
        "eps_spent": gauges.get("budget.eps.spent", 0.0),
        "eps_remaining": gauges.get("budget.eps.remaining", 0.0),
        "delta_remaining": gauges.get("budget.delta.remaining", 0.0),
    }


def _cmd_lint(args: argparse.Namespace) -> int:
    from .privlint import (
        DEFAULT_BASELINE_PATH,
        callgraph_document,
        lint_document,
        load_baseline,
        render_text,
        run_lint,
        save_baseline,
    )

    paths = [Path(p) for p in args.paths] if args.paths else None
    start = time.perf_counter()
    result = run_lint(paths=paths)
    elapsed = time.perf_counter() - start
    # Wall time to stderr so CI logs make analyzer slowdowns visible
    # without disturbing the parseable stdout rendering.
    print(
        f"privlint: analyzed {len(result.files)} files in "
        f"{elapsed:.2f}s",
        file=sys.stderr,
    )
    if args.callgraph_out is not None and result.context is not None:
        Path(args.callgraph_out).write_text(
            json.dumps(
                callgraph_document(result.context.callgraph), indent=2
            )
            + "\n"
        )
    baseline_path = (
        Path(args.baseline) if args.baseline else DEFAULT_BASELINE_PATH
    )
    if args.update_baseline:
        count = save_baseline(baseline_path, result.findings)
        print(
            f"privlint: baseline {baseline_path} rewritten with "
            f"{count} grandfathered finding(s)"
        )
        return 0
    document = lint_document(result, load_baseline(baseline_path))
    show_unused = args.report_unused_ignores or args.strict_ignores
    rendered = (
        json.dumps(document, indent=2) + "\n"
        if args.format == "json"
        else render_text(document, show_unused_ignores=show_unused)
    )
    if args.out is not None:
        Path(args.out).write_text(rendered)
        if args.format == "text":
            sys.stdout.write(rendered)
    else:
        sys.stdout.write(rendered)
    status = 0
    new = document["summary"]["new"]
    if new:
        print(
            f"privlint: {new} new finding(s) — fix them, add an "
            "inline 'privlint: ignore[rule]' justification, or "
            "grandfather with --update-baseline",
            file=sys.stderr,
        )
        status = 1
    unused = document["summary"]["unused_ignores"]
    if unused and show_unused:
        strictness = (
            "failing the gate (--strict-ignores)"
            if args.strict_ignores
            else "warn-only; --strict-ignores fails the gate"
        )
        print(
            f"privlint: {unused} unused ignore comment(s) — delete "
            f"them or tighten their rule list ({strictness})",
            file=sys.stderr,
        )
        if args.strict_ignores:
            status = 1
    return status


_COMMANDS = {
    "info": _cmd_info,
    "distance": _cmd_distance,
    "paths": _cmd_paths,
    "synthetic": _cmd_synthetic,
    "tree-distances": _cmd_tree_distances,
    "mst": _cmd_mst,
    "serve": _cmd_serve,
    "simulate": _cmd_simulate,
    "audit": _cmd_audit,
    "report": _cmd_report,
    "metrics": _cmd_metrics,
    "profile": _cmd_profile,
    "flight": _cmd_flight,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
