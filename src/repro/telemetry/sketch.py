"""Streaming quantile sketch for latency histograms.

A DDSketch-style log-bucketed sketch: values are mapped to geometric
buckets ``gamma**k`` with ``gamma = (1 + a) / (1 - a)``, which
guarantees every reported quantile is within *relative* accuracy ``a``
of a true observed value.  Buckets are a sparse dict, so memory is
proportional to the dynamic range of the data (a few hundred ints for
latencies spanning nanoseconds to minutes), not the observation count.

The sketch is mergeable — :meth:`QuantileSketch.merge` adds another
sketch's buckets bucket-by-bucket, which is exact — so per-service
histograms can be combined into fleet-wide percentiles without bias.

The sketch is thread-safe: ingest, merge, and quantile reads hold a
per-sketch lock, so a background thread (the stack sampler, a metrics
scraper) can read quantiles while the serving thread observes into
the same sketch.  Lock ordering for two-sketch operations
(:meth:`QuantileSketch.merge`) is by object id, so concurrent
cross-merges cannot deadlock.

Zero dependencies beyond :mod:`math` and :mod:`threading`;
:meth:`QuantileSketch.observe_many` uses :mod:`numpy`
opportunistically for bulk ingest (the library already depends on it)
but the scalar path never imports it.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Sequence

from ..exceptions import TelemetryError

__all__ = ["QuantileSketch", "DEFAULT_RELATIVE_ACCURACY"]

#: Default relative accuracy: 0.1% — far tighter than the ±1 rank
#: percentile the test suite demands, at ~a few hundred buckets for
#: realistic latency ranges.
DEFAULT_RELATIVE_ACCURACY = 0.001

#: Observations at or below this magnitude collapse into the zero
#: bucket (log-bucketing cannot represent 0).
_ZERO_THRESHOLD = 1e-12


class QuantileSketch:
    """A mergeable streaming quantile sketch with relative-error bounds.

    Parameters
    ----------
    relative_accuracy:
        The guaranteed relative error ``a`` of reported quantiles,
        strictly between 0 and 1.
    """

    __slots__ = (
        "_accuracy",
        "_gamma",
        "_log_gamma",
        "_buckets",
        "_zero_count",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
    )

    def __init__(
        self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY
    ) -> None:
        if not (0.0 < relative_accuracy < 1.0):
            raise TelemetryError(
                "relative_accuracy must be in (0, 1), got "
                f"{relative_accuracy!r}"
            )
        self._accuracy = float(relative_accuracy)
        self._gamma = (1.0 + self._accuracy) / (1.0 - self._accuracy)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    @property
    def relative_accuracy(self) -> float:
        """The sketch's guaranteed relative quantile error."""
        return self._accuracy

    @property
    def count(self) -> int:
        """Number of observations ingested."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    @property
    def min(self) -> float:
        """Smallest observation, or ``inf`` when empty."""
        return self._min

    @property
    def max(self) -> float:
        """Largest observation, or ``-inf`` when empty."""
        return self._max

    def _key(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma)

    def observe(self, value: float) -> None:
        """Ingest one observation.

        Negative values are clamped to the zero bucket — the sketch
        tracks non-negative quantities (latencies, sizes); a negative
        duration is a clock artifact, not data.
        """
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value <= _ZERO_THRESHOLD:
                self._zero_count += 1
                return
            key = self._key(value)
            self._buckets[key] = self._buckets.get(key, 0) + 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Bulk-ingest observations.

        Vectorizes the log/bucket computation through numpy when
        available and worthwhile; otherwise falls back to the scalar
        loop.  Either path produces identical buckets.
        """
        n = len(values)
        if n == 0:
            return
        if n < 64:
            for v in values:
                self.observe(v)
            return
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is a core dep
            for v in values:
                self.observe(v)
            return
        arr = np.asarray(values, dtype=float)
        with self._lock:
            self._count += n
            self._sum += float(arr.sum())
            lo = float(arr.min())
            hi = float(arr.max())
            if lo < self._min:
                self._min = lo
            if hi > self._max:
                self._max = hi
            positive = arr[arr > _ZERO_THRESHOLD]
            self._zero_count += n - positive.size
            if positive.size:
                keys = np.ceil(
                    np.log(positive) / self._log_gamma
                ).astype(np.int64)
                uniq, counts = np.unique(keys, return_counts=True)
                buckets = self._buckets
                for key, cnt in zip(uniq.tolist(), counts.tolist()):
                    buckets[key] = buckets.get(key, 0) + cnt

    def quantile(self, q: float) -> float:
        """The value at rank ``q`` in [0, 1]; ``nan`` when empty.

        Uses the nearest-rank convention ``rank = q * (count - 1)``,
        matching :func:`numpy.percentile` rank semantics up to the
        sketch's relative accuracy.
        """
        if not (0.0 <= q <= 1.0):
            raise TelemetryError(f"quantile must be in [0, 1], got {q!r}")
        with self._lock:
            if self._count == 0:
                return math.nan
            rank = q * (self._count - 1)
            seen = self._zero_count
            if rank < seen:
                return 0.0
            for key in sorted(self._buckets):
                seen += self._buckets[key]
                if rank < seen:
                    # Midpoint of the bucket (gamma**(key-1),
                    # gamma**key], clamped to the exactly-tracked
                    # observation range so the extreme quantiles never
                    # stray outside the data.
                    estimate = (
                        2.0 * self._gamma ** key / (self._gamma + 1.0)
                    )
                    return min(max(estimate, self._min), self._max)
            return self._max

    def quantiles(self, qs: Iterable[float]) -> List[float]:
        """Batch form of :meth:`quantile`."""
        return [self.quantile(q) for q in qs]

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch into this one (exact for equal accuracy)."""
        if not isinstance(other, QuantileSketch):
            raise TelemetryError(
                f"can only merge QuantileSketch, got {type(other).__name__}"
            )
        if other._accuracy != self._accuracy:
            raise TelemetryError(
                "cannot merge sketches with different relative accuracy "
                f"({self._accuracy} vs {other._accuracy})"
            )
        if other is self:
            other = self.copy()
        # Both locks, in id order, so concurrent cross-merges between
        # the same pair of sketches cannot deadlock.
        first, second = sorted((self, other), key=id)
        with first._lock, second._lock:
            buckets = self._buckets
            for key, cnt in other._buckets.items():
                buckets[key] = buckets.get(key, 0) + cnt
            self._zero_count += other._zero_count
            self._count += other._count
            self._sum += other._sum
            if other._min < self._min:
                self._min = other._min
            if other._max > self._max:
                self._max = other._max

    def copy(self) -> "QuantileSketch":
        """A consistent point-in-time copy of this sketch."""
        result = QuantileSketch(self._accuracy)
        with self._lock:
            result._buckets = dict(self._buckets)
            result._zero_count = self._zero_count
            result._count = self._count
            result._sum = self._sum
            result._min = self._min
            result._max = self._max
        return result

    def merged(self, other: "QuantileSketch") -> "QuantileSketch":
        """A new sketch holding both inputs' observations."""
        result = QuantileSketch(self._accuracy)
        result.merge(self)
        result.merge(other)
        return result

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(count={self._count}, "
            f"p50={self.quantile(0.5):.6g}, "
            f"p99={self.quantile(0.99):.6g})"
        )
