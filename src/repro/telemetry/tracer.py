"""Lightweight span tracing for the serving stack.

A :class:`Tracer` records named, timed spans with parent/child nesting
driven by a plain context-manager stack — ``with tracer.span("epoch.refresh",
tenant=...)`` opens a span, and any span opened before it closes
becomes its child.  Spans carry JSON-safe attributes set at open time
or mid-flight (:meth:`Span.set_attribute`); zero-duration
:meth:`Tracer.event` marks point-in-time facts like budget spends.

Finished root spans are kept in a bounded deque (oldest evicted), so a
long-running service can trace every epoch without unbounded memory;
evictions are counted (:attr:`Tracer.dropped`, and an optional
``on_drop`` callback lets a bundle surface the loss as a
``trace.dropped`` counter).  Every span gets a tracer-unique integer
id; :meth:`Tracer.current_ids` reports the ``(trace_id, span_id)``
pair of the innermost open span so other subsystems — the audit log,
the structured event log — can correlate their records with the trace
that produced them.

Span *listeners* (:meth:`Tracer.add_listener`) observe every span
open and close — the hook the deterministic phase profiler
(:class:`repro.telemetry.profile.PhaseProfiler`) hangs off so it can
attribute CPU time and allocations to phases without a single extra
call site.  With no listeners registered the span path pays one truth
test and nothing else.
The tracer is deliberately single-threaded — it matches the library's
synchronous serving loop; the planned async front-end will scope one
tracer per task.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Deque, Dict, Iterator, List, Tuple

__all__ = ["Span", "Tracer", "NullTracer", "NULL_SPAN"]


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Span:
    """One timed, named, attributed unit of work."""

    __slots__ = (
        "name", "attributes", "children", "span_id", "_start", "_end"
    )

    def __init__(
        self,
        name: str,
        attributes: Dict[str, object],
        span_id: int = 0,
    ) -> None:
        self.name = name
        self.attributes = {
            k: _json_safe(v) for k, v in attributes.items()
        }
        self.children: List["Span"] = []
        self.span_id = span_id
        self._start = time.perf_counter()
        self._end: float | None = None

    @property
    def finished(self) -> bool:
        """Whether the span has closed."""
        return self._end is not None

    @property
    def duration_seconds(self) -> float:
        """Wall-clock span length; 0 while still open."""
        if self._end is None:
            return 0.0
        return self._end - self._start

    def set_attribute(self, key: str, value: object) -> None:
        """Attach or update an attribute mid-span."""
        self.attributes[key] = _json_safe(value)

    def _finish(self) -> None:
        self._end = time.perf_counter()

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe span tree rooted here."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }


class Tracer:
    """Records a bounded history of finished root span trees."""

    enabled = True

    def __init__(
        self,
        max_finished_roots: int = 1000,
        on_drop: Callable[[], None] | None = None,
    ) -> None:
        self._stack: List[Span] = []
        self._finished: Deque[Span] = deque(maxlen=max_finished_roots)
        self._seq = 0
        self._dropped = 0
        self._on_drop = on_drop
        self._listeners: List[object] = []

    def add_listener(self, listener: object) -> None:
        """Subscribe to span lifecycle events.

        ``listener.on_span_start(span)`` fires right after a span
        opens (it is already on the stack) and
        ``listener.on_span_finish(span)`` right after it closes (its
        duration is final).  Listeners observe; they must not open
        spans themselves.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: object) -> None:
        """Unsubscribe a listener added by :meth:`add_listener`."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _next_id(self) -> int:
        self._seq += 1
        return self._seq

    def _retire(self, span: Span) -> None:
        # The deque would evict silently; count the loss (and tell the
        # bundle, which surfaces it as the ``trace.dropped`` counter).
        if (
            self._finished.maxlen is not None
            and len(self._finished) == self._finished.maxlen
        ):
            self._dropped += 1
            if self._on_drop is not None:
                self._on_drop()
        self._finished.append(span)

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a span; nests under the innermost open span."""
        span = Span(name, attributes, span_id=self._next_id())
        self._stack.append(span)
        if self._listeners:
            for listener in self._listeners:
                listener.on_span_start(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span._finish()
            if self._listeners:
                for listener in self._listeners:
                    listener.on_span_finish(span)
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self._retire(span)

    def event(self, name: str, **attributes: object) -> Span:
        """Record a zero-duration point event."""
        span = Span(name, attributes, span_id=self._next_id())
        span._end = span._start  # a point in time, not an interval
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._retire(span)
        return span

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def current_ids(self) -> Tuple[int | None, int | None]:
        """``(trace_id, span_id)`` of the innermost open span.

        The trace id is the id of the open *root* span (the outermost
        ancestor); ``(None, None)`` when no span is open.
        """
        if not self._stack:
            return (None, None)
        return (self._stack[0].span_id, self._stack[-1].span_id)

    @property
    def dropped(self) -> int:
        """Finished roots evicted from the bounded history so far."""
        return self._dropped

    def finished_roots(self) -> List[Span]:
        """Finished root spans, oldest first."""
        return list(self._finished)

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-safe list of finished root span trees."""
        return [span.to_dict() for span in self._finished]

    def clear(self) -> None:
        """Drop the finished-span history (open spans unaffected)."""
        self._finished.clear()


class _NullSpanContext:
    """A reentrant context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> "Span":
        return NULL_SPAN

    def __exit__(self, *exc: object) -> None:
        pass


class _NullSpan(Span):
    """A span that ignores attributes (disabled telemetry)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", {})
        self._finish()

    def set_attribute(self, key: str, value: object) -> None:
        pass


NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer(Tracer):
    """A tracer that records nothing (disabled telemetry)."""

    enabled = False

    def span(self, name: str, **attributes: object):
        return _NULL_SPAN_CONTEXT

    def event(self, name: str, **attributes: object) -> Span:
        return NULL_SPAN
