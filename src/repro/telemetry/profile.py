"""Continuous profiling and the slow-query flight recorder.

PR 6's telemetry records *that* queries were slow — latency quantiles,
budget gauges — but never *why*.  This module adds the attribution
layer every production serving stack grows at this stage, in three
purely observational pieces:

* :class:`PhaseProfiler` — a deterministic phase profiler that
  piggybacks on the :class:`~repro.telemetry.tracer.Tracer`'s span
  listeners: every span open/close is charged to its phase (the span
  name — ``synopsis.build``, ``hubs.build``, ``epoch.refresh``,
  ``batch.serve``, ``engine.*`` ...), accumulating wall time, CPU
  time (:func:`time.process_time`), and :mod:`tracemalloc` allocation
  deltas.  *Self* time excludes child spans, so the self-times of all
  phases sum exactly to the root spans' wall clock — attribution that
  adds up instead of double counting.
* :class:`SamplingProfiler` — an optional low-overhead background
  stack sampler: a daemon thread wakes every few milliseconds, grabs
  the target thread's frame via :func:`sys._current_frames`, and
  counts collapsed stacks.  Output renders as flamegraph.pl-compatible
  collapsed-stack text (``frame;frame;frame count``) — the exporter
  that sits next to the JSON and Prometheus ones.
* :class:`FlightRecorder` — a bounded ring buffer of exemplar records
  for slow queries: pair, route, mechanism, epoch, the finished span
  subtree, and a per-phase breakdown.  A query is "slow" when its
  latency exceeds an adaptive threshold derived from the recorder's
  own live per-route :class:`~repro.telemetry.sketch.QuantileSketch`
  p99 (with a fixed-threshold fallback while the sketch warms up).
  Dumps as a versioned JSON document.

Like metrics, traces, and audit, none of this ever touches an
:class:`~repro.rng.Rng`: seeded answers are bit-identical with
profiling and flight recording on, off, or dumping to disk.  The null
twins (:data:`NULL_PROFILER`, :data:`NULL_FLIGHT`) keep disabled call
sites branch-free.
"""

from __future__ import annotations

import sys
import threading
import time
import tracemalloc
from collections import deque
from typing import Deque, Dict, List, Mapping, Tuple

from ..exceptions import TelemetryError
from .sketch import QuantileSketch
from .tracer import Span, Tracer

__all__ = [
    "PROFILE_FORMAT",
    "PROFILE_VERSION",
    "FLIGHT_FORMAT",
    "FLIGHT_VERSION",
    "PhaseProfiler",
    "PhaseStat",
    "SamplingProfiler",
    "FlightRecorder",
    "NullPhaseProfiler",
    "NullFlightRecorder",
    "NULL_PROFILER",
    "NULL_FLIGHT",
    "profile_document",
    "samples_to_collapsed",
    "span_phase_breakdown",
    "validate_profile",
    "validate_flight",
]

PROFILE_FORMAT = "repro-profile"
PROFILE_VERSION = 1

FLIGHT_FORMAT = "repro-flight"
FLIGHT_VERSION = 1


# ----------------------------------------------------------------------
# Deterministic phase profiler
# ----------------------------------------------------------------------


class PhaseStat:
    """Accumulated cost of one phase (one span name)."""

    __slots__ = (
        "count",
        "wall_seconds",
        "wall_self_seconds",
        "cpu_seconds",
        "cpu_self_seconds",
        "alloc_net_bytes",
    )

    def __init__(self) -> None:
        self.count = 0
        self.wall_seconds = 0.0
        self.wall_self_seconds = 0.0
        self.cpu_seconds = 0.0
        self.cpu_self_seconds = 0.0
        self.alloc_net_bytes = 0

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe stat row (phase name added by the profiler)."""
        return {
            "count": self.count,
            "wall_seconds": self.wall_seconds,
            "wall_self_seconds": self.wall_self_seconds,
            "cpu_seconds": self.cpu_seconds,
            "cpu_self_seconds": self.cpu_self_seconds,
            "alloc_net_bytes": self.alloc_net_bytes,
        }


class _Frame:
    """One open span's measurement state on the profiler's stack."""

    __slots__ = ("span", "wall", "cpu", "alloc", "child_wall", "child_cpu")

    def __init__(self, span: Span, wall: float, cpu: float, alloc: int):
        self.span = span
        self.wall = wall
        self.cpu = cpu
        self.alloc = alloc
        self.child_wall = 0.0
        self.child_cpu = 0.0


class PhaseProfiler:
    """Deterministic per-phase cost attribution over tracer spans.

    Attach to a tracer (:meth:`attach`, or let
    :meth:`Telemetry.with_profiler <repro.telemetry.Telemetry.with_profiler>`
    do it) and every span becomes a *phase sample*: wall-clock and CPU
    time plus the net :mod:`tracemalloc` allocation delta are charged
    to the span's name.  ``wall_self_seconds`` excludes time spent in
    child spans, so summing it over all phases reproduces the root
    spans' total wall clock — the invariant ``repro.cli profile
    --check`` verifies.

    ``trace_allocations=False`` skips tracemalloc entirely (it roughly
    doubles allocation cost while tracing); the profiler starts
    tracemalloc lazily on attach and stops it on detach only if it was
    the one to start it.
    """

    enabled = True

    def __init__(self, trace_allocations: bool = True) -> None:
        self._trace_allocations = trace_allocations
        self._stack: List[_Frame] = []
        self._phases: Dict[str, PhaseStat] = {}
        self._tracer: Tracer | None = None
        self._started_tracemalloc = False

    # -- tracer listener surface ---------------------------------------

    def attach(self, tracer: Tracer) -> "PhaseProfiler":
        """Start observing ``tracer``'s spans; returns self."""
        if self._tracer is not None:
            if self._tracer is tracer:
                return self
            raise TelemetryError(
                "PhaseProfiler is already attached to another tracer"
            )
        if self._trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        tracer.add_listener(self)
        self._tracer = tracer
        return self

    def detach(self) -> None:
        """Stop observing; accumulated phase stats are kept."""
        if self._tracer is not None:
            self._tracer.remove_listener(self)
            self._tracer = None
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False
        self._stack.clear()

    def _alloc_now(self) -> int:
        if self._trace_allocations and tracemalloc.is_tracing():
            return tracemalloc.get_traced_memory()[0]
        return 0

    def on_span_start(self, span: Span) -> None:
        self._stack.append(
            _Frame(
                span,
                time.perf_counter(),
                time.process_time(),
                self._alloc_now(),
            )
        )

    def on_span_finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1].span is not span:
            # A span opened before attach is closing now; its costs
            # were never sampled, so there is nothing to attribute.
            return
        frame = self._stack.pop()
        wall = time.perf_counter() - frame.wall
        cpu = time.process_time() - frame.cpu
        alloc = self._alloc_now() - frame.alloc
        stat = self._phases.get(span.name)
        if stat is None:
            stat = self._phases[span.name] = PhaseStat()
        stat.count += 1
        stat.wall_seconds += wall
        stat.cpu_seconds += cpu
        stat.alloc_net_bytes += alloc
        stat.wall_self_seconds += max(wall - frame.child_wall, 0.0)
        stat.cpu_self_seconds += max(cpu - frame.child_cpu, 0.0)
        if self._stack:
            parent = self._stack[-1]
            parent.child_wall += wall
            parent.child_cpu += cpu

    # -- read surface --------------------------------------------------

    @property
    def attached(self) -> bool:
        """Whether the profiler is currently observing a tracer."""
        return self._tracer is not None

    def phases(self) -> Dict[str, PhaseStat]:
        """Accumulated stats keyed by phase (span) name."""
        return dict(self._phases)

    def total_wall_seconds(self) -> float:
        """Sum of self wall time over all phases — exactly the wall
        clock spent inside root spans (children excluded from their
        parents, never double counted)."""
        return sum(
            s.wall_self_seconds for s in self._phases.values()
        )

    def phase_summary(self) -> List[Dict[str, object]]:
        """JSON-safe rows sorted by descending self wall time."""
        rows = []
        for name, stat in self._phases.items():
            row: Dict[str, object] = {"phase": name}
            row.update(stat.as_dict())
            rows.append(row)
        rows.sort(
            key=lambda r: (-float(r["wall_self_seconds"]), r["phase"])
        )
        return rows

    def clear(self) -> None:
        """Drop accumulated stats (open-span state unaffected)."""
        self._phases.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhaseProfiler(phases={len(self._phases)}, "
            f"total_wall={self.total_wall_seconds():.6g}s)"
        )


class NullPhaseProfiler(PhaseProfiler):
    """A profiler that records nothing (disabled bundles)."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(trace_allocations=False)

    def attach(self, tracer: Tracer) -> "NullPhaseProfiler":
        return self

    def detach(self) -> None:
        pass

    def on_span_start(self, span: Span) -> None:
        pass

    def on_span_finish(self, span: Span) -> None:
        pass


#: The shared disabled profiler every bundle carries by default.
NULL_PROFILER = NullPhaseProfiler()


# ----------------------------------------------------------------------
# Background sampling profiler
# ----------------------------------------------------------------------


def _frame_label(frame) -> str:
    code = frame.f_code
    filename = code.co_filename
    # Module-ish label: strip directories and the .py suffix so stacks
    # stay readable and stable across checkouts.
    slash = max(filename.rfind("/"), filename.rfind("\\"))
    base = filename[slash + 1 :]
    if base.endswith(".py"):
        base = base[:-3]
    return f"{base}.{code.co_name}"


class SamplingProfiler:
    """A thread-based stack sampler with collapsed-stack output.

    ``start()`` spawns a daemon thread that wakes every
    ``interval_seconds``, snapshots the target thread's Python stack
    (default: the thread that called ``start()``), and counts the
    collapsed root-to-leaf stack.  ``stop()`` takes one final
    synchronous sample — so even a sub-interval run yields a non-empty
    profile — and joins the thread.  Overhead is one frame walk per
    tick on a thread that is asleep the rest of the time; the sampled
    thread itself is never interrupted.

    This is the stack's first real second thread — the metrics
    registry and quantile sketch it might observe around are locked
    accordingly.
    """

    def __init__(self, interval_seconds: float = 0.002) -> None:
        if interval_seconds <= 0.0:
            raise TelemetryError(
                "sampling interval must be positive, got "
                f"{interval_seconds!r}"
            )
        self.interval_seconds = float(interval_seconds)
        self._counts: Dict[Tuple[str, ...], int] = {}
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._target_id: int | None = None

    def _sample_once(self) -> None:
        frames = sys._current_frames()
        frame = frames.get(self._target_id)
        if frame is None:
            return
        stack: List[str] = []
        while frame is not None:
            stack.append(_frame_label(frame))
            frame = frame.f_back
        key = tuple(reversed(stack))
        self._counts[key] = self._counts.get(key, 0) + 1

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval_seconds):
            self._sample_once()

    def start(self, target_thread_id: int | None = None) -> None:
        """Begin sampling (default target: the calling thread)."""
        if self._thread is not None:
            raise TelemetryError("SamplingProfiler is already running")
        self._target_id = (
            target_thread_id
            if target_thread_id is not None
            else threading.get_ident()
        )
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-stack-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Take one last sample, stop the thread, keep the counts."""
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join()
        self._thread = None
        # The final synchronous sample guarantees a short profiled
        # region still produces at least one stack.
        self._sample_once()

    @property
    def running(self) -> bool:
        """Whether the sampler thread is alive."""
        return self._thread is not None

    @property
    def sample_count(self) -> int:
        """Total stacks captured so far."""
        return sum(self._counts.values())

    def counts(self) -> Dict[Tuple[str, ...], int]:
        """Collapsed stack (root-to-leaf frames) -> sample count."""
        return dict(self._counts)

    def collapsed(self) -> str:
        """flamegraph.pl-compatible collapsed-stack text."""
        return samples_to_collapsed(self._counts)

    def clear(self) -> None:
        """Drop accumulated samples."""
        self._counts.clear()


def samples_to_collapsed(
    counts: Mapping[Tuple[str, ...], int] | Mapping[str, int]
) -> str:
    """Render stack counts as collapsed-stack text, one stack per
    line: ``frame;frame;frame count``.  Accepts tuple keys (from the
    sampler) or pre-joined ``"a;b;c"`` string keys (from a JSON
    round trip); lines are sorted for golden-file stability."""
    lines = []
    for key, count in counts.items():
        stack = ";".join(key) if isinstance(key, tuple) else str(key)
        lines.append(f"{stack} {int(count)}")
    lines.sort()
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Profile document
# ----------------------------------------------------------------------


def profile_document(
    profiler: "PhaseProfiler",
    sampler: "SamplingProfiler | None" = None,
) -> Dict[str, object]:
    """The versioned JSON profile document for one profiled run.

    Carries the deterministic phase table (sorted by self wall time)
    and, when a sampling profiler ran too, its collapsed-stack text
    and sample count — one artifact holding both views of the run.
    """
    doc: Dict[str, object] = {
        "format": PROFILE_FORMAT,
        "version": PROFILE_VERSION,
        "total_wall_seconds": profiler.total_wall_seconds(),
        "phases": profiler.phase_summary(),
    }
    if sampler is not None:
        doc["samples"] = sampler.sample_count
        doc["collapsed"] = sampler.collapsed()
    return doc


def validate_profile(doc: object) -> Dict[str, object]:
    """Check a parsed profile document; returns it typed as a dict."""
    if not isinstance(doc, dict):
        raise TelemetryError(
            "profile document must be a JSON object, got "
            f"{type(doc).__name__}"
        )
    if doc.get("format") != PROFILE_FORMAT:
        raise TelemetryError(
            f"not a profile document (format={doc.get('format')!r}, "
            f"expected {PROFILE_FORMAT!r})"
        )
    if doc.get("version") != PROFILE_VERSION:
        raise TelemetryError(
            f"unsupported profile version {doc.get('version')!r} "
            f"(this build reads version {PROFILE_VERSION})"
        )
    if not isinstance(doc.get("phases"), list):
        raise TelemetryError("profile document has no 'phases' list")
    return doc


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


def span_phase_breakdown(span: Span) -> Dict[str, float]:
    """Per-phase wall seconds inside one finished span subtree.

    Child durations aggregate by span name; the root's own row is its
    *self* time (children excluded), so the values sum to the root's
    duration.
    """
    breakdown: Dict[str, float] = {}
    child_total = 0.0

    def _walk(node: Span) -> None:
        nonlocal child_total
        for child in node.children:
            breakdown[child.name] = (
                breakdown.get(child.name, 0.0) + child.duration_seconds
            )
            if node is span:
                child_total += child.duration_seconds
            _walk(child)

    _walk(span)
    breakdown[span.name] = (
        breakdown.get(span.name, 0.0)
        + max(span.duration_seconds - child_total, 0.0)
    )
    return breakdown


class FlightRecorder:
    """A bounded ring buffer of slow-query exemplar records.

    Every served query's latency is offered to :meth:`consider`.  The
    recorder keeps one live :class:`QuantileSketch` per ``route``
    (point, intra, cross, batch-query, ...); once a route's sketch has
    ``warmup`` observations the capture threshold is its live p-
    ``quantile`` latency, before that the fixed ``threshold_seconds``
    fallback applies (``None`` = capture nothing until warmed).  A
    latency above threshold captures an exemplar — pair, route,
    mechanism, epoch, tenant, the finished span subtree, and the
    per-phase breakdown derived from it — into a deque of
    ``capacity`` records, evicting the oldest.

    Purely observational: the recorder never touches an rng, and the
    threshold adapts only to *observed latencies*, never to answers.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 64,
        threshold_seconds: float | None = None,
        quantile: float = 0.99,
        warmup: int = 200,
    ) -> None:
        if capacity < 1:
            raise TelemetryError(
                f"flight recorder capacity must be >= 1, got {capacity}"
            )
        if threshold_seconds is not None and threshold_seconds <= 0.0:
            raise TelemetryError(
                "flight threshold must be positive, got "
                f"{threshold_seconds!r}"
            )
        if not 0.0 < quantile < 1.0:
            raise TelemetryError(
                f"flight quantile must be in (0, 1), got {quantile!r}"
            )
        if warmup < 1:
            raise TelemetryError(
                f"flight warmup must be >= 1, got {warmup}"
            )
        self.capacity = int(capacity)
        self.threshold_seconds = threshold_seconds
        self.quantile = float(quantile)
        self.warmup = int(warmup)
        self._sketches: Dict[str, QuantileSketch] = {}
        self._records: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._seq = 0
        self._captured = 0
        self._considered = 0

    def current_threshold(self, route: str = "point") -> float | None:
        """The capture threshold a query on ``route`` faces right now
        (``None`` while cold with no fixed fallback)."""
        sketch = self._sketches.get(route)
        if sketch is not None and sketch.count >= self.warmup:
            return sketch.quantile(self.quantile)
        return self.threshold_seconds

    def consider(
        self,
        latency_seconds: float,
        *,
        pair: Tuple[object, object] | None = None,
        route: str = "point",
        mechanism: str | None = None,
        epoch: int | None = None,
        tenant: str | None = None,
        span: Span | None = None,
        cache_hit: bool | None = None,
    ) -> bool:
        """Offer one served query; capture and return True if slow.

        The threshold decision precedes the observation, so a slow
        query cannot raise the bar that judges it.
        """
        self._considered += 1
        threshold = self.current_threshold(route)
        sketch = self._sketches.get(route)
        if sketch is None:
            sketch = self._sketches[route] = QuantileSketch()
        adaptive = sketch.count >= self.warmup
        sketch.observe(latency_seconds)
        if threshold is None or latency_seconds <= threshold:
            return False
        record: Dict[str, object] = {
            "seq": self._seq,
            "ts": time.time(),  # privlint: ignore[PL4] observational record timestamp
            "latency_seconds": float(latency_seconds),
            "threshold_seconds": float(threshold),
            "adaptive": adaptive,
            "route": route,
            "pair": (
                [str(pair[0]), str(pair[1])] if pair is not None else None
            ),
            "mechanism": mechanism,
            "epoch": epoch,
            "tenant": tenant,
            "cache_hit": cache_hit,
        }
        # NULL_SPAN (span_id 0) and unfinished spans carry no signal.
        if span is not None and span.span_id > 0:
            record["span"] = span.to_dict()
            record["phases"] = span_phase_breakdown(span)
        else:
            record["span"] = None
            record["phases"] = {}
        self._seq += 1
        self._captured += 1
        self._records.append(record)
        return True

    # -- read surface --------------------------------------------------

    @property
    def captured(self) -> int:
        """Exemplars captured over the recorder's lifetime (>= the
        ring's current length once eviction starts)."""
        return self._captured

    @property
    def considered(self) -> int:
        """Queries offered to :meth:`consider` so far."""
        return self._considered

    def records(self) -> List[Dict[str, object]]:
        """The retained exemplars, oldest first."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def to_document(self) -> Dict[str, object]:
        """The versioned JSON flight-record document."""
        return {
            "format": FLIGHT_FORMAT,
            "version": FLIGHT_VERSION,
            "capacity": self.capacity,
            "quantile": self.quantile,
            "warmup": self.warmup,
            "threshold_seconds": self.threshold_seconds,
            "considered": self._considered,
            "captured": self._captured,
            "records": self.records(),
        }

    def clear(self) -> None:
        """Drop retained records and live sketches (capacity kept)."""
        self._records.clear()
        self._sketches.clear()
        self._captured = 0
        self._considered = 0
        self._seq = 0


class NullFlightRecorder(FlightRecorder):
    """A flight recorder that captures nothing (disabled bundles)."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def consider(self, latency_seconds, **kwargs) -> bool:
        return False


#: The shared disabled flight recorder (every bundle's default).
NULL_FLIGHT = NullFlightRecorder()


def validate_flight(doc: object) -> Dict[str, object]:
    """Check a parsed flight document; returns it typed as a dict."""
    if not isinstance(doc, dict):
        raise TelemetryError(
            "flight document must be a JSON object, got "
            f"{type(doc).__name__}"
        )
    if doc.get("format") != FLIGHT_FORMAT:
        raise TelemetryError(
            f"not a flight-record document (format="
            f"{doc.get('format')!r}, expected {FLIGHT_FORMAT!r})"
        )
    if doc.get("version") != FLIGHT_VERSION:
        raise TelemetryError(
            f"unsupported flight-record version {doc.get('version')!r} "
            f"(this build reads version {FLIGHT_VERSION})"
        )
    if not isinstance(doc.get("records"), list):
        raise TelemetryError("flight document has no 'records' list")
    return doc
