"""Metric instruments and the process registry that owns them.

Three instrument kinds, deliberately minimal:

* :class:`Counter` — monotone event count (``inc``);
* :class:`Gauge` — point-in-time value (``set`` / ``add``);
* :class:`Histogram` — streaming latency/size distribution backed by a
  :class:`~repro.telemetry.sketch.QuantileSketch` (p50/p95/p99).

A :class:`MetricsRegistry` interns instruments by ``(name, labels)``:
asking twice for the same name and label set returns the same object,
so instrumented layers never coordinate — the service, the ledger, and
a benchmark all reach the same counter by naming it.  Label values are
stringified (Prometheus semantics); a name registered as one kind
cannot be re-registered as another.

Disabled telemetry swaps in the null instruments at the bottom of this
module: same interface, no state, no branches at call sites.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Tuple

from ..exceptions import TelemetryError
from .sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]

LabelKey = Tuple[Tuple[str, str], ...]

#: Quantiles every histogram reports in snapshots and expositions.
SNAPSHOT_QUANTILES = (0.5, 0.95, 0.99)


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "labels", "_value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0

    @property
    def value(self) -> int:
        """The current count."""
        return self._value

    def inc(self, amount: int = 1) -> None:
        """Increase the counter; negative amounts are rejected."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self._value += amount


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "labels", "_value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    @property
    def value(self) -> float:
        """The current level."""
        return self._value

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self._value = float(value)

    def add(self, amount: float) -> None:
        """Shift the gauge's value."""
        self._value += float(amount)


class Histogram:
    """A streaming distribution with p50/p95/p99 quantiles."""

    __slots__ = ("name", "labels", "_sketch")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    ) -> None:
        self.name = name
        self.labels = labels
        self._sketch = QuantileSketch(relative_accuracy)

    @property
    def sketch(self) -> QuantileSketch:
        """The backing quantile sketch."""
        return self._sketch

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._sketch.count

    @property
    def sum(self) -> float:
        """Sum of observations."""
        return self._sketch.sum

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._sketch.observe(value)

    def observe_many(self, values) -> None:
        """Record a batch of observations (vectorized)."""
        self._sketch.observe_many(values)

    def quantile(self, q: float) -> float:
        """The value at rank ``q``; ``nan`` when empty."""
        return self._sketch.quantile(q)


class MetricsRegistry:
    """Interns and snapshots the process's metric instruments.

    Interning, instance ordinals, and the enumeration behind
    :meth:`metrics` / :meth:`snapshot` hold a registry lock, so
    concurrent threads asking for the same ``(name, labels)`` always
    get the *same* instrument and a scraper thread can snapshot while
    the serving thread registers.  (Instrument mutation itself is a
    GIL-atomic int/float bump, or goes through the sketch's own lock.)
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], object] = {}
        self._instances: Dict[LabelKey, int] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels: Mapping[str, object]):
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TelemetryError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, cannot reuse as {cls.kind}"
                    )
                return existing
            metric = cls(name, key[1])
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: object) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``."""
        return self._get(Histogram, name, labels)

    def instance_labels(self, **labels: object) -> Dict[str, str]:
        """Labels plus a registry-unique ``instance`` ordinal.

        Two services built with the same tenant in one registry get
        distinct label sets, so their counters never collide.
        """
        base = _label_key(labels)
        with self._lock:
            ordinal = self._instances.get(base, 0)
            self._instances[base] = ordinal + 1
        out = {k: v for k, v in base}
        out["instance"] = str(ordinal)
        return out

    def metrics(self) -> List[object]:
        """All instruments, sorted by (name, labels)."""
        with self._lock:
            return [
                self._metrics[key] for key in sorted(self._metrics)
            ]

    def histograms(self, name: str) -> List[Histogram]:
        """Every histogram registered under ``name`` (any labels)."""
        return [
            m
            for m in self.metrics()
            if isinstance(m, Histogram) and m.name == name
        ]

    def merged_histogram(self, name: str) -> QuantileSketch | None:
        """One sketch folding every label set of histogram ``name``.

        ``None`` when the name has no histograms — callers distinguish
        "not instrumented" from "instrumented but empty".
        """
        parts = self.histograms(name)
        if not parts:
            return None
        merged = QuantileSketch(parts[0].sketch.relative_accuracy)
        for part in parts:
            merged.merge(part.sketch)
        return merged

    def snapshot(self) -> List[Dict[str, object]]:
        """A JSON-safe list describing every instrument.

        Counters and gauges carry ``value``; histograms carry
        ``count`` / ``sum`` / ``min`` / ``max`` and the standard
        quantiles (``nan``-free: empty histograms report ``null``
        quantiles).
        """
        out: List[Dict[str, object]] = []
        for metric in self.metrics():
            entry: Dict[str, object] = {
                "name": metric.name,
                "kind": metric.kind,
                "labels": {k: v for k, v in metric.labels},
            }
            if isinstance(metric, Histogram):
                sketch = metric.sketch
                entry["count"] = sketch.count
                entry["sum"] = sketch.sum
                if sketch.count:
                    entry["min"] = sketch.min
                    entry["max"] = sketch.max
                    entry["quantiles"] = {
                        f"p{int(q * 100)}": sketch.quantile(q)
                        for q in SNAPSHOT_QUANTILES
                    }
                else:
                    entry["min"] = None
                    entry["max"] = None
                    entry["quantiles"] = {
                        f"p{int(q * 100)}": None
                        for q in SNAPSHOT_QUANTILES
                    }
            else:
                entry["value"] = metric.value
            out.append(entry)
        return out

    def clear(self) -> None:
        """Drop every instrument and instance ordinal."""
        with self._lock:
            self._metrics.clear()
            self._instances.clear()


class _NullCounter(Counter):
    """A counter that ignores everything (disabled telemetry)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    """A gauge that ignores everything (disabled telemetry)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram(Histogram):
    """A histogram that ignores everything (disabled telemetry)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """A registry that hands out shared no-op instruments.

    Instrumented code keeps its straight-line shape — it asks for a
    counter and bumps it — while disabled telemetry reduces every call
    to a no-op method on a shared singleton.
    """

    enabled = False

    def counter(self, name: str, **labels: object) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return NULL_GAUGE

    def histogram(self, name: str, **labels: object) -> Histogram:
        return NULL_HISTOGRAM

    def instance_labels(self, **labels: object) -> Dict[str, str]:
        out = {k: str(v) for k, v in labels.items()}
        out["instance"] = "0"
        return out
