"""JSON-line structured logs for serving lifecycle events.

The audit trail (:mod:`repro.telemetry.audit`) is deliberately narrow:
hash-chained, fail-closed, privacy-spending-only.  Operational
visibility needs the opposite trade — a cheap, greppable stream of
*everything the stack does*: service start, synopsis builds, epoch
refreshes, batch serves, flight-recorder captures.  :class:`EventLog`
writes one JSON object per line with the same correlation fields as
the audit schema — ``tenant``, ``epoch``, and the ``(trace_id,
span_id)`` of the enclosing tracer span via
:meth:`~repro.telemetry.tracer.Tracer.current_ids` — so a slow span in
a trace, a spend in the audit log, and a lifecycle event in the event
log can all be joined on span ids.

Record schema (one JSON object per line)::

    {"seq": 4, "ts": 1754500000.123, "event": "epoch.refresh",
     "tenant": "west", "epoch": 3, "trace_id": 7, "span_id": 9,
     "fields": {...}}

There is no hash chain — this is a log, not a ledger; use the audit
trail when tampering matters.  :class:`NullEventLog`
(:data:`NULL_LOG`) mirrors :data:`~repro.telemetry.NULL_TELEMETRY`'s
null-object pattern so disabled call sites stay branch-free, and like
every other telemetry surface the event log never touches an
:class:`~repro.rng.Rng` — seeded answers are bit-identical with
logging on, off, or streaming to disk.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Mapping

from ..exceptions import TelemetryError

__all__ = [
    "EVENT_LOG_FORMAT",
    "EVENT_LOG_VERSION",
    "EventLog",
    "NullEventLog",
    "NULL_LOG",
    "read_event_log",
]

EVENT_LOG_FORMAT = "repro-events"
EVENT_LOG_VERSION = 1


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


class EventLog:
    """An append-only JSON-lines log of structured events.

    With ``path=None`` events accumulate in memory only; with a path,
    each record is appended to the JSONL file and flushed immediately
    (tail -f friendly).  The first record is always a ``log.open``
    header carrying the format marker and version.  Bind a tracer
    (:meth:`bind_tracer`, or let
    :meth:`Telemetry.with_log <repro.telemetry.Telemetry.with_log>` do
    it) and every event carries the ids of the span it happened
    inside.
    """

    enabled = True

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self._path = os.fspath(path) if path is not None else None
        self._records: List[Dict[str, object]] = []
        self._file = None
        self._seq = 0
        self._tracer = None
        if self._path is not None:
            self._file = open(self._path, "w", encoding="utf-8")
        self.emit(
            "log.open",
            format=EVENT_LOG_FORMAT,
            version=EVENT_LOG_VERSION,
        )

    @property
    def path(self) -> str | None:
        """The backing JSONL file, if any."""
        return self._path

    def bind_tracer(self, tracer) -> None:
        """Correlate future events with ``tracer``'s open spans."""
        self._tracer = tracer

    def emit(
        self,
        event: str,
        *,
        tenant: str | None = None,
        epoch: int | None = None,
        **fields: object,
    ) -> Dict[str, object]:
        """Append one event; returns the completed record."""
        trace_id = span_id = None
        if self._tracer is not None:
            trace_id, span_id = self._tracer.current_ids()
        rec: Dict[str, object] = {
            "seq": self._seq,
            "ts": time.time(),  # privlint: ignore[PL4] observational record timestamp
            "event": event,
            "tenant": tenant,
            "epoch": epoch,
            "trace_id": trace_id,
            "span_id": span_id,
            "fields": {k: _json_safe(v) for k, v in fields.items()},
        }
        self._seq += 1
        self._records.append(rec)
        if self._file is not None:
            self._file.write(
                json.dumps(rec, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._file.flush()
        return rec

    def records(self) -> List[Dict[str, object]]:
        """Every event emitted so far, oldest first."""
        return list(self._records)

    def tail(self, n: int = 10) -> List[Dict[str, object]]:
        """The most recent ``n`` events."""
        if n <= 0:
            return []
        return list(self._records[-n:])

    def __len__(self) -> int:
        return len(self._records)

    def close(self) -> None:
        """Flush and close the backing file (in-memory records stay)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class NullEventLog(EventLog):
    """An event log that records nothing (logging disabled)."""

    enabled = False

    def __init__(self) -> None:  # noqa: D107 — no file, no header
        self._path = None
        self._records = []
        self._file = None
        self._seq = 0
        self._tracer = None

    def emit(self, event, *, tenant=None, epoch=None, **fields):
        return {}

    def bind_tracer(self, tracer) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared disabled event log (the default on every bundle).
NULL_LOG = NullEventLog()


def read_event_log(path: str | os.PathLike) -> List[Dict[str, object]]:
    """Parse an event-log JSONL file; fail-closed.

    Checks that every line is a JSON object with the schema's keys,
    that sequence numbers are gapless from 0, and that the first
    record is the ``log.open`` header with a readable version.
    Raises :class:`~repro.exceptions.TelemetryError` otherwise.
    """
    required = ("seq", "ts", "event", "tenant", "epoch", "trace_id",
                "span_id", "fields")
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for i, line in enumerate(fh):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                rec = json.loads(stripped)
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"event log invalid (line {i + 1}): malformed "
                    f"JSON ({exc.msg}) — truncated or corrupted record"
                ) from exc
            if not isinstance(rec, Mapping):
                raise TelemetryError(
                    f"event log invalid (line {i + 1}): record is not "
                    "a JSON object"
                )
            missing = [k for k in required if k not in rec]
            if missing:
                raise TelemetryError(
                    f"event log invalid (line {i + 1}): record "
                    f"missing keys {missing}"
                )
            if rec["seq"] != len(records):
                raise TelemetryError(
                    f"event log invalid (line {i + 1}): sequence gap "
                    f"(expected seq {len(records)}, got {rec['seq']!r})"
                )
            records.append(dict(rec))
    if not records:
        raise TelemetryError(
            "event log invalid: empty log (no log.open header)"
        )
    head = records[0]
    fields = head.get("fields")
    if head.get("event") != "log.open" or not isinstance(fields, Mapping):
        raise TelemetryError(
            "event log invalid (line 1): first record must be the "
            "'log.open' header"
        )
    if fields.get("format") != EVENT_LOG_FORMAT:
        raise TelemetryError(
            f"not an event log (format={fields.get('format')!r}, "
            f"expected {EVENT_LOG_FORMAT!r})"
        )
    if fields.get("version") != EVENT_LOG_VERSION:
        raise TelemetryError(
            f"unsupported event log version {fields.get('version')!r} "
            f"(this build reads version {EVENT_LOG_VERSION})"
        )
    return records
