"""Alert rules and a calibration watchdog over telemetry snapshots.

Two watchers close the loop between *recording* observability data
(PR 6's registry and the audit trail) and *acting* on it:

* **Declarative alert rules** — JSON documents (format
  ``repro-alert-rules`` v1) evaluated against a standard telemetry
  snapshot.  A ``threshold`` rule compares one field of matching
  metric entries (a counter/gauge ``value``, or a histogram's
  ``count``/``sum``/``p50``/``p95``/``p99``) against a bound; a
  ``burn-rate`` rule fires when a tenant's spent fraction of its
  epoch budget — reconstructed from the ``budget.eps.spent`` /
  ``budget.eps.remaining`` gauges — crosses a threshold, the "this
  epoch will run out of privacy budget" pager.
* **A calibration watchdog** — the serving stack advertises per-pair
  noise scales (:meth:`~repro.serving.estimates.Estimate`'s
  ``noise_scale``, from each synopsis's ``noise_scale_for``).
  Nothing checks the *observed* dispersion of answers actually
  matches.  The watchdog re-estimates a fixed probe set across
  epochs and compares the sample standard deviation of each pair's
  answers against the advertised Laplace std (``sqrt(2) * b`` for
  scale ``b``), flagging pairs whose ratio drifts outside a
  configurable band.  Valid when the underlying true distances stay
  fixed across the observed epochs (refresh with the same weights),
  so dispersion is noise and nothing else — the watchdog is a
  deployment self-test, not a production invariant.

Like all telemetry, evaluation is read-only over snapshots and never
touches an :class:`~repro.rng.Rng`; the watchdog's probes go through
the public ``estimate()`` surface and consume no extra budget.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from ..exceptions import TelemetryError
from .export import validate_snapshot

__all__ = [
    "ALERT_RULES_FORMAT",
    "ALERT_RULES_VERSION",
    "Alert",
    "AlertRule",
    "CalibrationWatchdog",
    "evaluate_rules",
    "load_alert_rules",
]

ALERT_RULES_FORMAT = "repro-alert-rules"
ALERT_RULES_VERSION = 1

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
}

_RULE_KINDS = ("threshold", "burn-rate")
_FIELDS = ("value", "count", "sum", "min", "max", "p50", "p95", "p99")
_SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert condition."""

    name: str
    kind: str = "threshold"
    metric: str = ""
    field: str = "value"
    op: str = ">"
    value: float = 0.0
    labels: Mapping[str, str] = None  # type: ignore[assignment]
    severity: str = "warning"

    def __post_init__(self) -> None:
        if not self.name:
            raise TelemetryError("alert rule needs a non-empty name")
        if self.kind not in _RULE_KINDS:
            raise TelemetryError(
                f"alert rule {self.name!r}: unknown kind "
                f"{self.kind!r} (expected one of "
                f"{', '.join(_RULE_KINDS)})"
            )
        if self.kind == "threshold" and not self.metric:
            raise TelemetryError(
                f"alert rule {self.name!r}: threshold rules need a "
                "metric name"
            )
        if self.field not in _FIELDS:
            raise TelemetryError(
                f"alert rule {self.name!r}: unknown field "
                f"{self.field!r} (expected one of {', '.join(_FIELDS)})"
            )
        if self.op not in _OPS:
            raise TelemetryError(
                f"alert rule {self.name!r}: unknown op {self.op!r} "
                f"(expected one of {', '.join(sorted(_OPS))})"
            )
        if self.severity not in _SEVERITIES:
            raise TelemetryError(
                f"alert rule {self.name!r}: unknown severity "
                f"{self.severity!r} (expected one of "
                f"{', '.join(_SEVERITIES)})"
            )
        if self.labels is None:
            object.__setattr__(self, "labels", {})


@dataclass(frozen=True)
class Alert:
    """One fired alert."""

    rule: str
    severity: str
    metric: str
    labels: Mapping[str, str]
    observed: float
    threshold: float
    message: str

    def as_dict(self) -> Dict[str, object]:
        """A JSON-safe rendering (the ``report`` CLI's rows)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "metric": self.metric,
            "labels": dict(self.labels),
            "observed": self.observed,
            "threshold": self.threshold,
            "message": self.message,
        }


def load_alert_rules(text: str) -> List[AlertRule]:
    """Parse a ``repro-alert-rules`` JSON document; fail-closed."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TelemetryError(
            f"alert rules document is not valid JSON: {exc.msg}"
        ) from exc
    if not isinstance(doc, dict) or doc.get("format") != (
        ALERT_RULES_FORMAT
    ):
        raise TelemetryError(
            "not an alert-rules document (expected format "
            f"{ALERT_RULES_FORMAT!r})"
        )
    if doc.get("version") != ALERT_RULES_VERSION:
        raise TelemetryError(
            f"unsupported alert-rules version {doc.get('version')!r} "
            f"(this build reads version {ALERT_RULES_VERSION})"
        )
    rules = doc.get("rules")
    if not isinstance(rules, list):
        raise TelemetryError("alert-rules document has no 'rules' list")
    out: List[AlertRule] = []
    for i, raw in enumerate(rules):
        if not isinstance(raw, dict):
            raise TelemetryError(f"alert rule #{i} is not an object")
        unknown = sorted(
            set(raw) - set(AlertRule.__dataclass_fields__)
        )
        if unknown:
            raise TelemetryError(
                f"alert rule #{i}: unknown fields {', '.join(unknown)}"
            )
        out.append(AlertRule(**raw))
    return out


def _entry_value(entry: Mapping[str, object], field: str):
    if field == "value":
        return entry.get("value")
    if field in ("count", "sum", "min", "max"):
        return entry.get(field)
    quantiles = entry.get("quantiles")
    if isinstance(quantiles, Mapping):
        return quantiles.get(field)
    return None


def _labels_match(
    entry_labels: Mapping[str, str], wanted: Mapping[str, str]
) -> bool:
    return all(
        entry_labels.get(k) == str(v) for k, v in wanted.items()
    )


def _threshold_alerts(
    rule: AlertRule, metrics: Sequence[Mapping[str, object]]
) -> List[Alert]:
    alerts: List[Alert] = []
    for entry in metrics:
        if entry.get("name") != rule.metric:
            continue
        labels = entry.get("labels", {})
        if not _labels_match(labels, rule.labels):
            continue
        observed = _entry_value(entry, rule.field)
        if observed is None:
            continue  # empty histogram / missing field: nothing to judge
        if _OPS[rule.op](observed, rule.value):
            alerts.append(
                Alert(
                    rule=rule.name,
                    severity=rule.severity,
                    metric=rule.metric,
                    labels=dict(labels),
                    observed=float(observed),
                    threshold=rule.value,
                    message=(
                        f"{rule.metric}"
                        f"{dict(labels) if labels else ''} "
                        f"{rule.field}={observed:g} {rule.op} "
                        f"{rule.value:g}"
                    ),
                )
            )
    return alerts


def _burn_rate_alerts(
    rule: AlertRule, metrics: Sequence[Mapping[str, object]]
) -> List[Alert]:
    spent: Dict[str, float] = {}
    remaining: Dict[str, float] = {}
    for entry in metrics:
        labels = entry.get("labels", {})
        tenant = labels.get("tenant")
        if tenant is None or not _labels_match(labels, rule.labels):
            continue
        if entry.get("name") == "budget.eps.spent":
            spent[tenant] = float(entry.get("value", 0.0))
        elif entry.get("name") == "budget.eps.remaining":
            remaining[tenant] = float(entry.get("value", 0.0))
    alerts: List[Alert] = []
    for tenant in sorted(set(spent) & set(remaining)):
        total = spent[tenant] + remaining[tenant]
        if total <= 0.0:
            continue
        rate = spent[tenant] / total
        if _OPS[rule.op](rate, rule.value):
            alerts.append(
                Alert(
                    rule=rule.name,
                    severity=rule.severity,
                    metric="budget.eps.spent",
                    labels={"tenant": tenant},
                    observed=rate,
                    threshold=rule.value,
                    message=(
                        f"tenant {tenant!r} has burned "
                        f"{rate:.0%} of its epoch eps budget "
                        f"({rule.op} {rule.value:g})"
                    ),
                )
            )
    return alerts


def evaluate_rules(
    rules: Sequence[AlertRule], snapshot: Mapping[str, object]
) -> List[Alert]:
    """Evaluate rules over a telemetry snapshot document.

    Returns fired alerts in rule order (then metric order within a
    rule); an empty list means the deployment is quiet.
    """
    doc = validate_snapshot(dict(snapshot))
    metrics = doc["metrics"]
    alerts: List[Alert] = []
    for rule in rules:
        if rule.kind == "threshold":
            alerts.extend(_threshold_alerts(rule, metrics))
        else:
            alerts.extend(_burn_rate_alerts(rule, metrics))
    return alerts


#: Laplace(b) has variance ``2 b**2``: the advertised standard
#: deviation of an answer with noise scale ``b``.
_LAPLACE_STD_FACTOR = math.sqrt(2.0)


@dataclass
class _PairHistory:
    values: List[float] = field(default_factory=list)
    scales: List[float] = field(default_factory=list)
    epochs: List[int] = field(default_factory=list)


class CalibrationWatchdog:
    """Checks observed answer dispersion against advertised noise.

    Parameters
    ----------
    pairs:
        The probe ``(source, target)`` pairs re-estimated each epoch.
    band:
        Acceptable ``observed_std / advertised_std`` range; outside
        it the pair is flagged as drifting (too noisy, or suspiciously
        quiet — both mean the advertised confidence intervals are
        wrong).
    min_epochs:
        Observations required before a pair is judged (a sample std
        needs at least 2).
    telemetry:
        Optional bundle: :meth:`report` publishes per-pair
        ``calibration.ratio`` gauges and a ``calibration.drift``
        counter into it.

    The check is only meaningful when the *true* distances of the
    probe pairs are identical across the observed epochs (e.g. epochs
    refreshed with the same weights): then every answer is ``truth +
    Laplace(scale)`` and the sample std estimates the noise std.
    """

    def __init__(
        self,
        pairs: Sequence[Tuple[object, object]],
        band: Tuple[float, float] = (0.5, 2.0),
        min_epochs: int = 2,
        telemetry=None,
    ) -> None:
        low, high = band
        if not 0.0 < low < high:
            raise TelemetryError(
                f"calibration band must satisfy 0 < low < high, got "
                f"({low}, {high})"
            )
        if min_epochs < 2:
            raise TelemetryError(
                f"min_epochs must be at least 2 (a sample std needs "
                f"two observations), got {min_epochs}"
            )
        self._pairs = list(pairs)
        self._band = (float(low), float(high))
        self._min_epochs = int(min_epochs)
        self._telemetry = telemetry
        self._history: Dict[Tuple[object, object], _PairHistory] = {
            pair: _PairHistory() for pair in self._pairs
        }

    @property
    def pairs(self) -> List[Tuple[object, object]]:
        """The probe pairs."""
        return list(self._pairs)

    @property
    def band(self) -> Tuple[float, float]:
        """The acceptable observed/advertised std ratio range."""
        return self._band

    def observe_epoch(self, server) -> None:
        """Probe every pair through ``server.estimate`` once.

        Free post-processing: estimates read the standing synopsis.
        Call once per epoch, after each refresh.
        """
        for pair in self._pairs:
            estimate = server.estimate(*pair)
            self.observe_value(
                pair, estimate.value, estimate.noise_scale,
                epoch=estimate.epoch,
            )

    def observe_value(
        self,
        pair: Tuple[object, object],
        value: float,
        scale: float,
        epoch: int = 0,
    ) -> None:
        """Record one probe observation (the testable low level)."""
        history = self._history.get(pair)
        if history is None:
            raise TelemetryError(
                f"pair {pair!r} is not one of the watchdog's probes"
            )
        history.values.append(float(value))
        history.scales.append(float(scale))
        history.epochs.append(int(epoch))

    @staticmethod
    def _sample_std(values: Sequence[float]) -> float:
        n = len(values)
        mean = sum(values) / n
        return math.sqrt(
            sum((v - mean) ** 2 for v in values) / (n - 1)
        )

    def report(self) -> Dict[str, object]:
        """Judge every probe pair; publishes gauges when wired.

        Returns ``{"format": "repro-calibration", "band": [lo, hi],
        "pairs": [...], "drifting": [...]}`` where each pair entry
        carries the observation count, the mean advertised scale, the
        advertised and observed stds, their ratio, and a status of
        ``"ok"`` / ``"drift"`` / ``"pending"`` (not enough epochs) /
        ``"deterministic"`` (advertised scale 0 — nothing to check
        unless dispersion appears).
        """
        low, high = self._band
        entries: List[Dict[str, object]] = []
        drifting: List[str] = []
        for pair in self._pairs:
            history = self._history[pair]
            label = f"{pair[0]}->{pair[1]}"
            n = len(history.values)
            entry: Dict[str, object] = {"pair": label, "samples": n}
            if n < self._min_epochs:
                entry["status"] = "pending"
                entries.append(entry)
                continue
            mean_scale = sum(history.scales) / n
            advertised = _LAPLACE_STD_FACTOR * mean_scale
            observed = self._sample_std(history.values)
            entry["mean_scale"] = mean_scale
            entry["advertised_std"] = advertised
            entry["observed_std"] = observed
            if advertised == 0.0:
                # A deterministic answer (same-vertex, or a released
                # zero-scale entry): any dispersion at all is drift.
                drift = observed > 0.0
                entry["ratio"] = None
                entry["status"] = (
                    "drift" if drift else "deterministic"
                )
            else:
                ratio = observed / advertised
                drift = not low <= ratio <= high
                entry["ratio"] = ratio
                entry["status"] = "drift" if drift else "ok"
                if self._telemetry is not None:
                    self._telemetry.registry.gauge(
                        "calibration.ratio", pair=label
                    ).set(ratio)
            if drift:
                drifting.append(label)
                if self._telemetry is not None:
                    self._telemetry.registry.counter(
                        "calibration.drift", pair=label
                    ).inc()
            entries.append(entry)
        return {
            "format": "repro-calibration",
            "band": [low, high],
            "min_epochs": self._min_epochs,
            "pairs": entries,
            "drifting": drifting,
        }

    def alerts(self) -> List[Alert]:
        """Drifting pairs rendered as :class:`Alert` objects."""
        report = self.report()
        low, high = self._band
        alerts: List[Alert] = []
        for entry in report["pairs"]:
            if entry.get("status") != "drift":
                continue
            ratio = entry.get("ratio")
            alerts.append(
                Alert(
                    rule="calibration-watchdog",
                    severity="critical",
                    metric="calibration.ratio",
                    labels={"pair": str(entry["pair"])},
                    observed=(
                        float(ratio)
                        if ratio is not None
                        else float(entry["observed_std"])
                    ),
                    threshold=high,
                    message=(
                        f"pair {entry['pair']} dispersion is "
                        f"{'outside' if ratio is not None else 'nonzero for'}"
                        f" the advertised noise scale "
                        f"(band [{low:g}, {high:g}])"
                    ),
                )
            )
        return alerts
