"""Append-only, tamper-evident audit trail for privacy spending.

A DP deployment's budget accounting (:class:`repro.serving.ledger.
BudgetLedger`) is in-process state: it vanishes on exit, and nothing
off-box can check that the advertised guarantee was respected.  The
audit log makes spending *durable and verifiable*:

* :class:`AuditLog` records structured events — budget spends and
  ledger rotations, mechanism selections, epoch/shard refreshes,
  batch serves — as JSON-line records with monotonic sequence
  numbers, the epoch and tenant they concern, the ``(trace_id,
  span_id)`` of the enclosing tracer span, and a per-record SHA-256
  hash chained to the previous record, so truncation, reordering, or
  edits are detectable.
* :func:`read_audit_log` replays a file fail-closed: any structural
  or chain defect raises :class:`~repro.exceptions.AuditError`.
* :func:`replay_odometer` reconstructs a *privacy odometer* from the
  records — per-tenant cumulative ``(eps, delta)`` in the current
  epoch, per-epoch history, and lifetime totals across rotations —
  summing spends in record order, which matches the accountant's own
  ``+=`` accumulation bit for bit.
* :func:`verify_audit_log` checks the log's internal accounting
  (each spend record's cumulative/remaining figures against the
  replayed sums), and :func:`verify_against_ledger` checks a replay
  against a *live* ledger and its published gauges — both bit-exact,
  both fail-closed.

Record schema (one JSON object per line)::

    {"seq": 3, "ts": 1754500000.123, "kind": "budget.spend",
     "epoch": 0, "tenant": "west", "trace_id": 7, "span_id": 9,
     "payload": {...}, "hash": "<sha256 hex>"}

``hash`` is ``sha256(prev_hash + canonical_json(record_sans_hash))``
where the first record chains from :data:`GENESIS_HASH` and canonical
JSON is sorted-keys/compact-separators.  Record 0 has kind
``audit.open`` and carries the format marker and version in its
payload.  Like the rest of the telemetry layer, auditing never
touches an :class:`~repro.rng.Rng` — seeded answers are bit-identical
with auditing enabled, disabled, or logging to disk.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Dict, List, Mapping, Sequence

from ..exceptions import AuditError

__all__ = [
    "AUDIT_FORMAT",
    "AUDIT_VERSION",
    "GENESIS_HASH",
    "AuditLog",
    "NullAuditLog",
    "NULL_AUDIT",
    "read_audit_log",
    "replay_odometer",
    "validate_records",
    "verify_audit_log",
    "verify_against_ledger",
    "verify_against_snapshot",
]

AUDIT_FORMAT = "repro-audit"
AUDIT_VERSION = 1

#: The hash the first record chains from.
GENESIS_HASH = "0" * 64

_REQUIRED_KEYS = frozenset(
    ("seq", "ts", "kind", "epoch", "tenant", "trace_id", "span_id",
     "payload", "hash")
)


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


def _canonical(doc: Mapping[str, object]) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _chain_hash(prev_hash: str, record: Mapping[str, object]) -> str:
    body = {k: v for k, v in record.items() if k != "hash"}
    return hashlib.sha256(
        (prev_hash + _canonical(body)).encode("utf-8")
    ).hexdigest()


class AuditLog:
    """An append-only, hash-chained event log.

    With ``path=None`` the log is in-memory only (still chained, still
    verifiable); with a path, every record is appended to the JSONL
    file and flushed immediately.  Opening an existing non-empty file
    *resumes* it: the existing records are validated (fail-closed) and
    the chain continues from the last hash.
    """

    enabled = True

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self._path = os.fspath(path) if path is not None else None
        self._records: List[Dict[str, object]] = []
        self._file = None
        self._seq = 0
        self._prev_hash = GENESIS_HASH
        self._tracer = None
        resumed = False
        if self._path is not None and os.path.exists(self._path) and (
            os.path.getsize(self._path) > 0
        ):
            existing = read_audit_log(self._path)
            self._records = existing
            last = existing[-1]
            self._seq = int(last["seq"]) + 1  # type: ignore[arg-type]
            self._prev_hash = str(last["hash"])
            resumed = True
        if self._path is not None:
            self._file = open(
                self._path, "a" if resumed else "w", encoding="utf-8"
            )
        header = {"format": AUDIT_FORMAT, "version": AUDIT_VERSION}
        if resumed:
            header["resumed"] = True
        self.record("audit.open", **header)

    @property
    def path(self) -> str | None:
        """The backing JSONL file, if any."""
        return self._path

    @property
    def seq(self) -> int:
        """The sequence number the next record will get."""
        return self._seq

    @property
    def head_hash(self) -> str:
        """The hash of the most recent record."""
        return self._prev_hash

    def bind_tracer(self, tracer) -> None:
        """Correlate future records with ``tracer``'s open spans."""
        self._tracer = tracer

    def record(
        self,
        kind: str,
        *,
        epoch: int | None = None,
        tenant: str | None = None,
        **payload: object,
    ) -> Dict[str, object]:
        """Append one event; returns the completed record."""
        trace_id = span_id = None
        if self._tracer is not None:
            trace_id, span_id = self._tracer.current_ids()
        rec: Dict[str, object] = {
            "seq": self._seq,
            "ts": time.time(),  # privlint: ignore[PL4] observational record timestamp
            "kind": kind,
            "epoch": epoch,
            "tenant": tenant,
            "trace_id": trace_id,
            "span_id": span_id,
            "payload": {k: _json_safe(v) for k, v in payload.items()},
        }
        rec["hash"] = _chain_hash(self._prev_hash, rec)
        self._prev_hash = rec["hash"]
        self._seq += 1
        self._records.append(rec)
        if self._file is not None:
            self._file.write(_canonical(rec) + "\n")
            self._file.flush()
        return rec

    def records(self) -> List[Dict[str, object]]:
        """Every record appended so far (including any resumed from
        disk), oldest first."""
        return list(self._records)

    def tail(self, n: int = 10) -> List[Dict[str, object]]:
        """The most recent ``n`` records."""
        if n <= 0:
            return []
        return list(self._records[-n:])

    def __len__(self) -> int:
        return len(self._records)

    def close(self) -> None:
        """Flush and close the backing file (in-memory records stay)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "AuditLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class NullAuditLog(AuditLog):
    """An audit log that records nothing (auditing disabled)."""

    enabled = False

    def __init__(self) -> None:  # noqa: D107 — no file, no chain
        self._path = None
        self._records = []
        self._file = None
        self._seq = 0
        self._prev_hash = GENESIS_HASH
        self._tracer = None

    def record(self, kind, *, epoch=None, tenant=None, **payload):
        return {}

    def bind_tracer(self, tracer) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared disabled audit log (the default on every bundle).
NULL_AUDIT = NullAuditLog()


def _fail(message: str, line: int | None = None) -> AuditError:
    where = f" (line {line})" if line is not None else ""
    return AuditError(f"audit log invalid{where}: {message}")


def validate_records(
    records: Sequence[Mapping[str, object]]
) -> List[Dict[str, object]]:
    """Structural + chain validation of in-order records; fail-closed.

    Checks the header, monotonic sequence numbers, required keys, and
    the full hash chain; returns the records as plain dicts.
    """
    if not records:
        raise _fail("empty log (no audit.open header)")
    out: List[Dict[str, object]] = []
    prev_hash = GENESIS_HASH
    for i, rec in enumerate(records):
        line = i + 1
        if not isinstance(rec, Mapping):
            raise _fail("record is not a JSON object", line)
        missing = _REQUIRED_KEYS - set(rec)
        if missing:
            raise _fail(
                f"record missing keys {sorted(missing)}", line
            )
        if rec["seq"] != i:
            raise _fail(
                f"sequence gap: expected seq {i}, got {rec['seq']!r}",
                line,
            )
        expected = _chain_hash(prev_hash, rec)
        if rec["hash"] != expected:
            raise _fail(
                f"hash chain broken at seq {i}: record was altered, "
                "reordered, or an earlier record is missing",
                line,
            )
        prev_hash = str(rec["hash"])
        out.append(dict(rec))
    head = out[0]
    if head["kind"] != "audit.open":
        raise _fail(
            f"first record must be 'audit.open', got {head['kind']!r}",
            1,
        )
    payload = head["payload"]
    if not isinstance(payload, Mapping):
        raise _fail("audit.open payload is not an object", 1)
    if payload.get("format") != AUDIT_FORMAT:
        raise _fail(
            f"not an audit log (format={payload.get('format')!r}, "
            f"expected {AUDIT_FORMAT!r})",
            1,
        )
    if payload.get("version") != AUDIT_VERSION:
        raise _fail(
            f"unsupported audit log version {payload.get('version')!r} "
            f"(this build reads version {AUDIT_VERSION})",
            1,
        )
    return out


def read_audit_log(path: str | os.PathLike) -> List[Dict[str, object]]:
    """Parse and validate a JSONL audit log; fail-closed.

    Raises :class:`~repro.exceptions.AuditError` on malformed JSON
    (including a truncated final line), sequence gaps, a broken hash
    chain, or a missing/mismatched header.
    """
    parsed: List[object] = []
    with open(path, "r", encoding="utf-8") as fh:
        for i, line in enumerate(fh):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                parsed.append(json.loads(stripped))
            except json.JSONDecodeError as exc:
                raise _fail(
                    f"malformed JSON ({exc.msg}) — truncated or "
                    "corrupted record",
                    i + 1,
                ) from exc
    return validate_records(parsed)  # type: ignore[arg-type]


def _fresh_tenant_state(epoch: object) -> Dict[str, object]:
    return {
        "epoch": epoch,
        "spent_eps": 0.0,
        "spent_delta": 0.0,
        "spends": 0,
        "budget_eps": None,
        "budget_delta": None,
        "lifetime_eps": 0.0,
        "lifetime_delta": 0.0,
        "lifetime_spends": 0,
        "by_epoch": {},
    }


def replay_odometer(
    records: Sequence[Mapping[str, object]]
) -> Dict[str, object]:
    """Reconstruct per-tenant privacy spending from audit records.

    The odometer sums each spend's ``eps``/``delta`` in record order —
    the same left-to-right ``+=`` the live accountant performs — so the
    reconstructed current-epoch totals are bit-exact against the
    ledger.  ``ledger.rotate`` records (and a spend arriving with a
    new epoch) reset a tenant's current-epoch accumulation while the
    lifetime totals keep counting: the odometer only ever goes up.
    """
    tenants: Dict[str, Dict[str, object]] = {}
    epoch: int = 0
    spends = 0
    for rec in records:
        kind = rec["kind"]
        payload = rec.get("payload", {})
        if kind == "budget.spend":
            tenant = str(rec["tenant"])
            rec_epoch = rec["epoch"]
            state = tenants.setdefault(
                tenant, _fresh_tenant_state(rec_epoch)
            )
            if state["epoch"] != rec_epoch:
                state["epoch"] = rec_epoch
                state["spent_eps"] = 0.0
                state["spent_delta"] = 0.0
                state["spends"] = 0
            state["spent_eps"] += payload["eps"]
            state["spent_delta"] += payload["delta"]
            state["spends"] += 1
            state["budget_eps"] = payload.get("budget_eps")
            state["budget_delta"] = payload.get("budget_delta")
            state["lifetime_eps"] += payload["eps"]
            state["lifetime_delta"] += payload["delta"]
            state["lifetime_spends"] += 1
            per = state["by_epoch"].setdefault(
                str(rec_epoch), {"eps": 0.0, "delta": 0.0, "spends": 0}
            )
            per["eps"] += payload["eps"]
            per["delta"] += payload["delta"]
            per["spends"] += 1
            spends += 1
            if isinstance(rec_epoch, int):
                epoch = max(epoch, rec_epoch)
        elif kind == "ledger.rotate":
            new_epoch = rec["epoch"]
            for tenant in payload.get("tenants", []):
                state = tenants.get(str(tenant))
                if state is None:
                    continue
                state["epoch"] = new_epoch
                state["spent_eps"] = 0.0
                state["spent_delta"] = 0.0
                state["spends"] = 0
                if payload.get("budget_eps") is not None:
                    state["budget_eps"] = payload["budget_eps"]
                    state["budget_delta"] = payload.get("budget_delta")
            if isinstance(new_epoch, int):
                epoch = max(epoch, new_epoch)
    return {
        "format": "repro-audit-odometer",
        "epoch": epoch,
        "spend_records": spends,
        "tenants": tenants,
    }


def verify_audit_log(
    records: Sequence[Mapping[str, object]]
) -> Dict[str, object]:
    """Check a log's internal accounting; fail-closed.

    Every ``budget.spend`` record carries the cumulative
    ``spent_eps``/``spent_delta`` and ``remaining_eps``/
    ``remaining_delta`` the live accountant reported at spend time;
    this replays the log and demands each figure match the
    reconstruction bit-exactly.  Returns a summary (record counts and
    the final odometer).
    """
    running: Dict[str, Dict[str, object]] = {}
    for rec in records:
        if rec["kind"] == "ledger.rotate":
            for tenant in rec.get("payload", {}).get("tenants", []):
                running.pop(str(tenant), None)
            continue
        if rec["kind"] != "budget.spend":
            continue
        tenant = str(rec["tenant"])
        payload = rec["payload"]
        state = running.setdefault(
            tenant,
            {"epoch": rec["epoch"], "eps": 0.0, "delta": 0.0},
        )
        if state["epoch"] != rec["epoch"]:
            state.update(epoch=rec["epoch"], eps=0.0, delta=0.0)
        state["eps"] += payload["eps"]
        state["delta"] += payload["delta"]
        checks = (
            ("spent_eps", state["eps"]),
            ("spent_delta", state["delta"]),
        )
        if payload.get("budget_eps") is not None:
            checks += (
                ("remaining_eps", payload["budget_eps"] - state["eps"]),
            )
        if payload.get("budget_delta") is not None:
            checks += (
                (
                    "remaining_delta",
                    payload["budget_delta"] - state["delta"],
                ),
            )
        for field, expected in checks:
            recorded = payload.get(field)
            if recorded != expected:
                raise AuditError(
                    f"audit replay mismatch at seq {rec['seq']} "
                    f"(tenant {tenant!r}, epoch {rec['epoch']}): "
                    f"recorded {field}={recorded!r} but replay "
                    f"reconstructs {expected!r}"
                )
    odometer = replay_odometer(records)
    return {
        "records": len(records),
        "spend_records": odometer["spend_records"],
        "tenants": sorted(odometer["tenants"]),
        "epoch": odometer["epoch"],
        "odometer": odometer,
        "verified": True,
    }


_BUDGET_GAUGES = (
    "budget.eps.spent",
    "budget.eps.remaining",
    "budget.delta.remaining",
)


def verify_against_snapshot(
    records: Sequence[Mapping[str, object]],
    snapshot: Mapping[str, object],
) -> int:
    """Cross-check replayed budgets against a snapshot's gauges.

    The offline counterpart of :func:`verify_against_ledger` for the
    CLI, where the live ledger is gone but the run also wrote a
    ``--metrics-out`` telemetry snapshot: every ``budget.*`` gauge in
    the snapshot must match the value the replayed odometer predicts
    (using the ledger's own expressions, so bit-exact).  Returns the
    number of gauge comparisons made; raises
    :class:`~repro.exceptions.AuditError` on any mismatch, or on a
    gauge for a tenant the log never saw spend.
    """
    odometer = replay_odometer(records)
    tenants = odometer["tenants"]
    gauges: Dict[str, Dict[str, float]] = {}
    for entry in snapshot.get("metrics", []):  # type: ignore[union-attr]
        if entry.get("kind") != "gauge":
            continue
        name = entry.get("name")
        if name not in _BUDGET_GAUGES:
            continue
        tenant = entry.get("labels", {}).get("tenant")
        if tenant is None:
            continue
        gauges.setdefault(tenant, {})[name] = entry.get("value")
    checked = 0
    for tenant, values in sorted(gauges.items()):
        state = tenants.get(tenant)
        if state is None:
            raise AuditError(
                f"snapshot publishes budget gauges for tenant "
                f"{tenant!r} but the audit log never saw it spend"
            )
        budget_eps = state["budget_eps"]
        budget_delta = state["budget_delta"]
        if state["spends"] > 0:
            remaining_eps = budget_eps - state["spent_eps"]
            remaining_delta = budget_delta - state["spent_delta"]
        else:
            # The tenant's epoch was rotated closed: the ledger reset
            # its gauges to the full epoch budget.
            remaining_eps = budget_eps
            remaining_delta = budget_delta
        expected = {
            "budget.eps.spent": budget_eps - remaining_eps,
            "budget.eps.remaining": remaining_eps,
            "budget.delta.remaining": remaining_delta,
        }
        for name, value in sorted(values.items()):
            if value != expected[name]:
                raise AuditError(
                    f"audit replay disagrees with snapshot gauge "
                    f"{name!r} for tenant {tenant!r}: replayed "
                    f"{expected[name]!r} != published {value!r}"
                )
            checked += 1
    return checked


def _registry_value(registry, name: str, tenant: str) -> float | None:
    for metric in registry.metrics():
        if metric.name == name and dict(metric.labels) == {
            "tenant": tenant
        }:
            return metric.value
    return None


def verify_against_ledger(
    records: Sequence[Mapping[str, object]],
    ledger,
    registry=None,
) -> Dict[str, object]:
    """Check a replayed log against a live ledger; fail-closed.

    For every tenant active in the ledger's current epoch, the
    replayed cumulative ``(eps, delta)`` and the derived remaining
    budget must equal the ledger's figures *bit-exactly* (the replay
    repeats the accountant's own summation order and the ledger's own
    ``budget - spent`` expression, so equality is ``==``, not
    approximate).  With ``registry`` given, the published
    ``budget.*`` gauges are cross-checked against the replay too.
    Raises :class:`~repro.exceptions.AuditError` on any disagreement.
    """
    summary = verify_audit_log(records)
    odometer = summary["odometer"]
    tenants = odometer["tenants"]
    live = set(ledger.tenants)
    replayed_active = {
        tenant
        for tenant, state in tenants.items()
        if state["epoch"] == ledger.epoch and state["spends"] > 0
    }
    if live != replayed_active:
        raise AuditError(
            "audit replay disagrees with ledger on active tenants in "
            f"epoch {ledger.epoch}: ledger has {sorted(live)}, replay "
            f"reconstructs {sorted(replayed_active)}"
        )
    budget = ledger.epoch_budget
    for tenant in sorted(live):
        state = tenants[tenant]
        if state["budget_eps"] != budget.eps or (
            state["budget_delta"] != budget.delta
        ):
            raise AuditError(
                f"audit replay disagrees with ledger on tenant "
                f"{tenant!r} epoch budget: log says "
                f"({state['budget_eps']!r}, {state['budget_delta']!r})"
                f", ledger says ({budget.eps!r}, {budget.delta!r})"
            )
        spent = ledger.spent(tenant)
        replay_pairs = (
            ("spent eps", state["spent_eps"], spent.eps),
            ("spent delta", state["spent_delta"], spent.delta),
            (
                "remaining eps",
                budget.eps - state["spent_eps"],
                ledger.remaining_eps(tenant),
            ),
            (
                "remaining delta",
                budget.delta - state["spent_delta"],
                ledger.remaining_delta(tenant),
            ),
        )
        for what, replayed, live_value in replay_pairs:
            if replayed != live_value:
                raise AuditError(
                    f"audit replay disagrees with ledger for tenant "
                    f"{tenant!r} (epoch {ledger.epoch}): replayed "
                    f"{what} {replayed!r} != live {live_value!r}"
                )
        if registry is not None:
            gauge_pairs = (
                (
                    "budget.eps.remaining",
                    budget.eps - state["spent_eps"],
                ),
                (
                    "budget.eps.spent",
                    budget.eps - (budget.eps - state["spent_eps"]),
                ),
                (
                    "budget.delta.remaining",
                    budget.delta - state["spent_delta"],
                ),
            )
            for name, expected in gauge_pairs:
                value = _registry_value(registry, name, tenant)
                if value is None:
                    continue  # gauges off (disabled metrics registry)
                if value != expected:
                    raise AuditError(
                        f"audit replay disagrees with gauge {name!r} "
                        f"for tenant {tenant!r}: replayed {expected!r}"
                        f" != published {value!r}"
                    )
    summary["ledger_epoch"] = ledger.epoch
    summary["verified_tenants"] = sorted(live)
    return summary
