"""Snapshot and Prometheus text exposition for telemetry documents.

The JSON snapshot (``{"format": "repro-telemetry", "version": 1,
"metrics": [...], "spans": [...]}``) is the interchange document: the
``serve``/``simulate`` CLIs write it, the ``metrics`` CLI reads it
back, and either side can render it as Prometheus text exposition.

Rendering is deterministic — metrics sorted by (name, labels), label
pairs sorted by key — so the exposition of a fixed registry is
golden-file stable.  Histograms render as Prometheus *summaries*
(quantile-labeled series plus ``_sum``/``_count``), the conventional
encoding for client-side quantiles.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping

from ..exceptions import TelemetryError

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "snapshot_to_prometheus",
    "validate_snapshot",
]

SNAPSHOT_FORMAT = "repro-telemetry"
SNAPSHOT_VERSION = 1

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

# Label names are stricter than metric names: the exposition format
# allows colons only in metric names, and a label name must not start
# with a digit.
_LABEL_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")

#: Prometheus metric kind per snapshot kind (histograms become
#: summaries: we export client-side quantiles, not server buckets).
_PROM_TYPE = {"counter": "counter", "gauge": "gauge", "histogram": "summary"}


def prometheus_name(name: str) -> str:
    """A snapshot metric name as a legal Prometheus metric name."""
    sanitized = _NAME_SANITIZE.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def prometheus_label_name(name: str) -> str:
    """A snapshot label key as a legal Prometheus label name."""
    sanitized = _LABEL_NAME_SANITIZE.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label(value: str) -> str:
    # Exposition-format escaping for quoted label values: backslash
    # first (so later escapes aren't double-escaped), then quote and
    # newline.
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _label_block(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{prometheus_label_name(k)}="{_escape_label(str(v))}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_value(value: object) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def validate_snapshot(doc: object) -> Dict[str, object]:
    """Check a parsed snapshot document; returns it typed as a dict."""
    if not isinstance(doc, dict):
        raise TelemetryError(
            "telemetry snapshot must be a JSON object, got "
            f"{type(doc).__name__}"
        )
    fmt = doc.get("format")
    if fmt != SNAPSHOT_FORMAT:
        raise TelemetryError(
            f"not a telemetry snapshot (format={fmt!r}, expected "
            f"{SNAPSHOT_FORMAT!r})"
        )
    version = doc.get("version")
    if version != SNAPSHOT_VERSION:
        raise TelemetryError(
            f"unsupported telemetry snapshot version {version!r} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        raise TelemetryError("telemetry snapshot has no 'metrics' list")
    return doc


def snapshot_to_prometheus(doc: Mapping[str, object]) -> str:
    """Render a snapshot document as Prometheus text exposition."""
    validate_snapshot(dict(doc))
    lines: List[str] = []
    seen_types: Dict[str, str] = {}
    for entry in doc["metrics"]:  # type: ignore[index]
        name = prometheus_name(str(entry["name"]))
        kind = str(entry["kind"])
        prom_type = _PROM_TYPE.get(kind)
        if prom_type is None:
            raise TelemetryError(
                f"unknown metric kind {kind!r} in snapshot"
            )
        labels = entry.get("labels", {})
        if name not in seen_types:
            seen_types[name] = prom_type
            lines.append(f"# TYPE {name} {prom_type}")
        elif seen_types[name] != prom_type:
            raise TelemetryError(
                f"metric {name!r} appears as both "
                f"{seen_types[name]} and {prom_type}"
            )
        if kind == "histogram":
            quantiles = entry.get("quantiles", {})
            for q_label, q_value in sorted(quantiles.items()):
                q = int(q_label.lstrip("p")) / 100.0
                block = _label_block(labels, f'quantile="{q}"')
                lines.append(f"{name}{block} {_format_value(q_value)}")
            block = _label_block(labels)
            lines.append(
                f"{name}_sum{block} {_format_value(entry.get('sum', 0.0))}"
            )
            lines.append(
                f"{name}_count{block} "
                f"{_format_value(entry.get('count', 0))}"
            )
        else:
            block = _label_block(labels)
            lines.append(
                f"{name}{block} {_format_value(entry.get('value', 0))}"
            )
    return "\n".join(lines) + "\n" if lines else ""
