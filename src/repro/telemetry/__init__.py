"""``repro.telemetry`` — metrics, traces, and their exposition.

The observability layer under the serving stack: a
:class:`~repro.telemetry.registry.MetricsRegistry` of counters,
gauges, and streaming-quantile histograms
(:class:`~repro.telemetry.sketch.QuantileSketch`), a nesting span
:class:`~repro.telemetry.tracer.Tracer`, and exporters for a JSON
snapshot document and Prometheus text exposition.  Everything is
zero-dependency and deterministic to snapshot, and — critically for a
privacy library — telemetry never touches an :class:`~repro.rng.Rng`:
seeded query answers are bit-identical with instrumentation on, off,
or redirected into a custom registry.

A :class:`Telemetry` object bundles one registry with one tracer.  The
process has a default bundle (:func:`get_telemetry`), services accept
an explicit ``telemetry=`` override, and :func:`use_telemetry` scopes
a bundle over a ``with`` block so deep layers (mechanism selection,
budget ledger, hub builds) that look the bundle up dynamically land in
the caller's registry.  Disabled telemetry
(:data:`NULL_TELEMETRY`, or ``Telemetry(enabled=False)``) swaps in
null instruments — same call sites, no state, no measurable work.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List

from .audit import (
    AUDIT_FORMAT,
    AUDIT_VERSION,
    AuditLog,
    NULL_AUDIT,
    NullAuditLog,
    read_audit_log,
    replay_odometer,
    verify_against_ledger,
    verify_against_snapshot,
    verify_audit_log,
)
from .export import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    snapshot_to_prometheus,
    validate_snapshot,
)
from .monitor import (
    Alert,
    AlertRule,
    CalibrationWatchdog,
    evaluate_rules,
    load_alert_rules,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .sketch import QuantileSketch
from .tracer import NullTracer, Span, Tracer

__all__ = [
    "AUDIT_FORMAT",
    "AUDIT_VERSION",
    "Alert",
    "AlertRule",
    "AuditLog",
    "CalibrationWatchdog",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullAuditLog",
    "NullRegistry",
    "NullTracer",
    "NULL_AUDIT",
    "NULL_TELEMETRY",
    "QuantileSketch",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "Span",
    "Telemetry",
    "Tracer",
    "evaluate_rules",
    "get_telemetry",
    "load_alert_rules",
    "read_audit_log",
    "replay_odometer",
    "set_default_telemetry",
    "snapshot_to_prometheus",
    "use_telemetry",
    "validate_snapshot",
    "verify_against_ledger",
    "verify_against_snapshot",
    "verify_audit_log",
]


class Telemetry:
    """One registry + one tracer, the unit services are handed.

    ``Telemetry()`` is a live bundle; ``Telemetry(enabled=False)``
    carries the shared null registry and tracer — instrumented code
    is oblivious either way.  Every bundle also carries an audit log
    (:data:`NULL_AUDIT` unless one is attached), so layers that emit
    audit records need no separate plumbing; :meth:`with_audit`
    derives a bundle sharing this one's registry and tracer but
    writing a given :class:`~repro.telemetry.audit.AuditLog` —
    auditing is opt-in and orthogonal to whether metrics are enabled.
    """

    __slots__ = ("registry", "tracer", "audit")

    def __init__(
        self,
        enabled: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        audit: AuditLog | None = None,
    ) -> None:
        if not enabled:
            self.registry = _NULL_REGISTRY
            self.tracer = _NULL_TRACER
        else:
            self.registry = (
                registry if registry is not None else MetricsRegistry()
            )
            if tracer is not None:
                self.tracer = tracer
            else:
                # Surface bounded-history evictions as a counter.  The
                # callback is only invoked on an actual drop, so the
                # counter is not interned (and snapshots are unchanged)
                # until spans are really being lost.
                bundle_registry = self.registry
                self.tracer = Tracer(
                    on_drop=lambda: bundle_registry.counter(
                        "trace.dropped"
                    ).inc()
                )
        self.audit = audit if audit is not None else NULL_AUDIT
        if self.audit.enabled:
            self.audit.bind_tracer(self.tracer)

    @property
    def enabled(self) -> bool:
        """Whether this bundle records anything."""
        return self.registry.enabled

    def span(self, name: str, **attributes: object):
        """Shorthand for ``self.tracer.span(...)``."""
        return self.tracer.span(name, **attributes)

    def snapshot(self) -> Dict[str, object]:
        """The JSON-safe interchange document for this bundle."""
        return {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "metrics": self.registry.snapshot(),
            "spans": self.tracer.snapshot(),
        }

    def prometheus_text(self) -> str:
        """This bundle's metrics as Prometheus text exposition."""
        return snapshot_to_prometheus(self.snapshot())

    def with_audit(self, audit: AuditLog) -> "Telemetry":
        """A bundle sharing this registry/tracer, writing ``audit``.

        Works on a disabled bundle too: the clone keeps the null
        registry and tracer but still records audit events, so a
        deployment can run with metrics off and the audit trail on.
        """
        clone = Telemetry.__new__(Telemetry)
        clone.registry = self.registry
        clone.tracer = self.tracer
        clone.audit = audit
        if audit.enabled:
            audit.bind_tracer(clone.tracer)
        return clone

    def clear(self) -> None:
        """Reset metrics and span history (no-op when disabled)."""
        self.registry.clear()
        self.tracer.clear()


_NULL_REGISTRY = NullRegistry()
_NULL_TRACER = NullTracer()

#: The shared disabled bundle: every instrument is a no-op singleton.
NULL_TELEMETRY = Telemetry(enabled=False)

_default = Telemetry()
_active: List[Telemetry] = []


def get_telemetry() -> Telemetry:
    """The bundle instrumentation should use right now.

    The innermost :func:`use_telemetry` scope wins; otherwise the
    process default.
    """
    if _active:
        return _active[-1]
    return _default


def set_default_telemetry(telemetry: Telemetry) -> Telemetry:
    """Replace the process-default bundle; returns the previous one."""
    global _default
    previous = _default
    _default = telemetry
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Scope a bundle over a block: :func:`get_telemetry` returns it.

    This is how a service's injected bundle reaches layers it does not
    call directly — the ledger spend inside a synopsis build, the
    mechanism-selection contest, a hub-structure build.
    """
    _active.append(telemetry)
    try:
        yield telemetry
    finally:
        _active.pop()
