"""``repro.telemetry`` — metrics, traces, and their exposition.

The observability layer under the serving stack: a
:class:`~repro.telemetry.registry.MetricsRegistry` of counters,
gauges, and streaming-quantile histograms
(:class:`~repro.telemetry.sketch.QuantileSketch`), a nesting span
:class:`~repro.telemetry.tracer.Tracer`, and exporters for a JSON
snapshot document and Prometheus text exposition.  Everything is
zero-dependency and deterministic to snapshot, and — critically for a
privacy library — telemetry never touches an :class:`~repro.rng.Rng`:
seeded query answers are bit-identical with instrumentation on, off,
or redirected into a custom registry.

A :class:`Telemetry` object bundles one registry with one tracer,
plus opt-in extras attached via ``with_*`` derivations: a
tamper-evident audit trail (:mod:`~repro.telemetry.audit`), a
JSON-line structured event log (:mod:`~repro.telemetry.logging`), a
deterministic phase profiler and slow-query flight recorder
(:mod:`~repro.telemetry.profile`).  The process has a default bundle
(:func:`get_telemetry`), services accept an explicit ``telemetry=``
override, and :func:`use_telemetry` scopes a bundle over a ``with``
block so deep layers (mechanism selection, budget ledger, hub builds,
engine kernels) that look the bundle up dynamically land in the
caller's registry.  Disabled telemetry (:data:`NULL_TELEMETRY`, or
``Telemetry(enabled=False)``) swaps in null instruments — same call
sites, no state, no measurable work.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List

from .audit import (
    AUDIT_FORMAT,
    AUDIT_VERSION,
    AuditLog,
    NULL_AUDIT,
    NullAuditLog,
    read_audit_log,
    replay_odometer,
    verify_against_ledger,
    verify_against_snapshot,
    verify_audit_log,
)
from .export import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    snapshot_to_prometheus,
    validate_snapshot,
)
from .logging import (
    EVENT_LOG_FORMAT,
    EVENT_LOG_VERSION,
    EventLog,
    NULL_LOG,
    NullEventLog,
    read_event_log,
)
from .monitor import (
    Alert,
    AlertRule,
    CalibrationWatchdog,
    evaluate_rules,
    load_alert_rules,
)
from .profile import (
    FLIGHT_FORMAT,
    FLIGHT_VERSION,
    FlightRecorder,
    NULL_FLIGHT,
    NULL_PROFILER,
    NullFlightRecorder,
    NullPhaseProfiler,
    PROFILE_FORMAT,
    PROFILE_VERSION,
    PhaseProfiler,
    SamplingProfiler,
    profile_document,
    samples_to_collapsed,
    span_phase_breakdown,
    validate_flight,
    validate_profile,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .sketch import QuantileSketch
from .tracer import NullTracer, Span, Tracer

__all__ = [
    "AUDIT_FORMAT",
    "AUDIT_VERSION",
    "Alert",
    "AlertRule",
    "AuditLog",
    "CalibrationWatchdog",
    "Counter",
    "EVENT_LOG_FORMAT",
    "EVENT_LOG_VERSION",
    "EventLog",
    "FLIGHT_FORMAT",
    "FLIGHT_VERSION",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullAuditLog",
    "NullEventLog",
    "NullFlightRecorder",
    "NullPhaseProfiler",
    "NullRegistry",
    "NullTracer",
    "NULL_AUDIT",
    "NULL_FLIGHT",
    "NULL_LOG",
    "NULL_PROFILER",
    "NULL_TELEMETRY",
    "PROFILE_FORMAT",
    "PROFILE_VERSION",
    "PhaseProfiler",
    "QuantileSketch",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SamplingProfiler",
    "Span",
    "Telemetry",
    "Tracer",
    "evaluate_rules",
    "get_telemetry",
    "load_alert_rules",
    "profile_document",
    "read_audit_log",
    "read_event_log",
    "replay_odometer",
    "samples_to_collapsed",
    "set_default_telemetry",
    "snapshot_to_prometheus",
    "span_phase_breakdown",
    "use_telemetry",
    "validate_flight",
    "validate_profile",
    "validate_snapshot",
    "verify_against_ledger",
    "verify_against_snapshot",
    "verify_audit_log",
]


class Telemetry:
    """One registry + one tracer, the unit services are handed.

    ``Telemetry()`` is a live bundle; ``Telemetry(enabled=False)``
    carries the shared null registry and tracer — instrumented code
    is oblivious either way.  Every bundle also carries an audit log
    (:data:`NULL_AUDIT` unless one is attached), a structured event
    log (:data:`NULL_LOG`), a phase profiler (:data:`NULL_PROFILER`),
    and a slow-query flight recorder (:data:`NULL_FLIGHT`), so layers
    that emit to any of them need no separate plumbing.  The
    ``with_*`` derivations (:meth:`with_audit`, :meth:`with_log`,
    :meth:`with_profiler`, :meth:`with_flight`) each return a bundle
    sharing this one's other instruments but carrying the given one —
    every extra surface is opt-in and orthogonal to whether metrics
    are enabled.
    """

    __slots__ = (
        "registry", "tracer", "audit", "log", "profiler", "flight"
    )

    def __init__(
        self,
        enabled: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        audit: AuditLog | None = None,
    ) -> None:
        if not enabled:
            self.registry = _NULL_REGISTRY
            self.tracer = _NULL_TRACER
        else:
            self.registry = (
                registry if registry is not None else MetricsRegistry()
            )
            if tracer is not None:
                self.tracer = tracer
            else:
                # Surface bounded-history evictions as a counter.  The
                # callback is only invoked on an actual drop, so the
                # counter is not interned (and snapshots are unchanged)
                # until spans are really being lost.
                bundle_registry = self.registry
                self.tracer = Tracer(
                    on_drop=lambda: bundle_registry.counter(
                        "trace.dropped"
                    ).inc()
                )
        self.audit = audit if audit is not None else NULL_AUDIT
        self.log = NULL_LOG
        self.profiler = NULL_PROFILER
        self.flight = NULL_FLIGHT
        if self.audit.enabled:
            self.audit.bind_tracer(self.tracer)

    @property
    def enabled(self) -> bool:
        """Whether this bundle records anything."""
        return self.registry.enabled

    def span(self, name: str, **attributes: object):
        """Shorthand for ``self.tracer.span(...)``."""
        return self.tracer.span(name, **attributes)

    def snapshot(self) -> Dict[str, object]:
        """The JSON-safe interchange document for this bundle."""
        return {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "metrics": self.registry.snapshot(),
            "spans": self.tracer.snapshot(),
        }

    def prometheus_text(self) -> str:
        """This bundle's metrics as Prometheus text exposition."""
        return snapshot_to_prometheus(self.snapshot())

    def _clone(self) -> "Telemetry":
        clone = Telemetry.__new__(Telemetry)
        clone.registry = self.registry
        clone.tracer = self.tracer
        clone.audit = self.audit
        clone.log = self.log
        clone.profiler = self.profiler
        clone.flight = self.flight
        return clone

    def with_audit(self, audit: AuditLog) -> "Telemetry":
        """A bundle sharing this one's instruments, writing ``audit``.

        Works on a disabled bundle too: the clone keeps the null
        registry and tracer but still records audit events, so a
        deployment can run with metrics off and the audit trail on.
        """
        clone = self._clone()
        clone.audit = audit
        if audit.enabled:
            audit.bind_tracer(clone.tracer)
        return clone

    def with_log(self, log: EventLog) -> "Telemetry":
        """A bundle sharing this one's instruments, emitting to
        ``log``.  The log is bound to this bundle's tracer so events
        carry the enclosing span's ids (skipped on a disabled bundle,
        whose tracer opens no spans)."""
        clone = self._clone()
        clone.log = log
        if log.enabled and self.tracer.enabled:
            log.bind_tracer(clone.tracer)
        return clone

    def with_profiler(self, profiler: PhaseProfiler) -> "Telemetry":
        """A bundle sharing this one's instruments, attributing span
        costs to ``profiler``.  The profiler is attached as a tracer
        listener — but only when this bundle's tracer is live: a
        disabled bundle opens no spans, and attaching a listener to
        the shared null tracer would leak across bundles."""
        clone = self._clone()
        clone.profiler = profiler
        if profiler.enabled and self.tracer.enabled:
            profiler.attach(clone.tracer)
        return clone

    def with_flight(self, flight: FlightRecorder) -> "Telemetry":
        """A bundle sharing this one's instruments, offering served
        query latencies to ``flight``.  Unlike the profiler, the
        flight recorder needs no tracer: services call
        ``flight.consider(...)`` directly, so it works on a disabled
        bundle too."""
        clone = self._clone()
        clone.flight = flight
        return clone

    def clear(self) -> None:
        """Reset metrics and span history (no-op when disabled)."""
        self.registry.clear()
        self.tracer.clear()


_NULL_REGISTRY = NullRegistry()
_NULL_TRACER = NullTracer()

#: The shared disabled bundle: every instrument is a no-op singleton.
NULL_TELEMETRY = Telemetry(enabled=False)

_default = Telemetry()
_active: List[Telemetry] = []


def get_telemetry() -> Telemetry:
    """The bundle instrumentation should use right now.

    The innermost :func:`use_telemetry` scope wins; otherwise the
    process default.
    """
    if _active:
        return _active[-1]
    return _default


def set_default_telemetry(telemetry: Telemetry) -> Telemetry:
    """Replace the process-default bundle; returns the previous one."""
    global _default
    previous = _default
    _default = telemetry
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Scope a bundle over a block: :func:`get_telemetry` returns it.

    This is how a service's injected bundle reaches layers it does not
    call directly — the ledger spend inside a synopsis build, the
    mechanism-selection contest, a hub-structure build.
    """
    _active.append(telemetry)
    try:
        yield telemetry
    finally:
        _active.pop()
