"""Graph substrate: data structures and generators.

The paper's model (Section 2) separates a *public* topology
``G = (V, E)`` from *private* edge weights ``w : E -> R+``.  The classes
here hold both, but every private mechanism in :mod:`repro.core` treats
the topology as public knowledge and only ever protects the weights.
"""

from .graph import Edge, WeightedGraph
from .multigraph import MultiEdge, WeightedMultiGraph
from .tree import RootedTree
from . import generators, io

__all__ = [
    "Edge",
    "WeightedGraph",
    "MultiEdge",
    "WeightedMultiGraph",
    "RootedTree",
    "generators",
    "io",
]
