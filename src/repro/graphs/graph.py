"""A weighted graph with public topology and mutable edge weights.

This is the central substrate of the library.  :class:`WeightedGraph`
stores an undirected (or optionally directed) simple graph together with
a weight function ``w : E -> R``.  In the paper's privacy model
(Definition 2.1) the topology is public and only the weights are
private, so the class exposes the weight function as a detachable
object: :meth:`weights` extracts it, :meth:`with_weights` produces a
copy of the same public topology carrying different private weights.

Vertices may be any hashable value (ints, strings, ``(row, col)``
tuples for grids).  Edges of an undirected graph are identified by an
unordered pair; the canonical orientation is the one used at insertion
time, and all lookup methods accept either orientation.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Tuple

import numpy as np

from ..exceptions import (
    EdgeNotFoundError,
    GraphError,
    VertexNotFoundError,
    WeightError,
)

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["Vertex", "Edge", "WeightedGraph"]


class WeightedGraph:
    """A simple weighted graph.

    Parameters
    ----------
    directed:
        If ``True``, edges are ordered pairs.  The distance algorithms of
        Section 4 of the paper are stated for undirected graphs; the
        shortest-path results of Section 5 also apply to directed graphs,
        and this class supports both.
    """

    def __init__(self, directed: bool = False) -> None:
        self._directed = bool(directed)
        # Adjacency: vertex -> neighbor -> weight.  For directed graphs
        # ``_adj`` holds successors and ``_pred`` holds predecessors; for
        # undirected graphs ``_pred`` aliases ``_adj``.
        self._adj: Dict[Vertex, Dict[Vertex, float]] = {}
        self._pred: Dict[Vertex, Dict[Vertex, float]] = (
            {} if directed else self._adj
        )
        # Canonical edge orientations, in insertion order.
        self._edges: Dict[Edge, float] = {}
        # Monotone counters consumed by repro.engine's compiled-CSR
        # cache: a topology bump invalidates the structure arrays, a
        # weights bump only the weight array (cheap re-weighting path).
        self._topology_version = 0
        self._weights_version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Vertex, Vertex] | Tuple[Vertex, Vertex, float]],
        directed: bool = False,
        default_weight: float = 1.0,
    ) -> "WeightedGraph":
        """Build a graph from an iterable of ``(u, v)`` or ``(u, v, w)``."""
        graph = cls(directed=directed)
        for item in edges:
            if len(item) == 2:
                u, v = item  # type: ignore[misc]
                weight = default_weight
            elif len(item) == 3:
                u, v, weight = item  # type: ignore[misc]
            else:
                raise GraphError(f"edge tuple must have 2 or 3 items, got {item!r}")
            graph.add_edge(u, v, float(weight))
        return graph

    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex (no-op if it already exists)."""
        if v not in self._adj:
            self._adj[v] = {}
            if self._directed:
                self._pred[v] = {}
            self._topology_version += 1

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> Edge:
        """Add an edge with the given weight and return its canonical key.

        Adding an edge that already exists overwrites its weight.
        Self-loops are rejected: they never appear on a shortest path,
        spanning tree or matching, and permitting them would complicate
        the sensitivity accounting for no benefit.
        """
        if u == v:
            raise GraphError(f"self-loops are not supported (vertex {u!r})")
        self.add_vertex(u)
        self.add_vertex(v)
        existing = self.edge_key(u, v, missing_ok=True)
        key = existing if existing is not None else (u, v)
        weight = float(weight)
        if existing is None:
            self._topology_version += 1
        self._weights_version += 1
        self._edges[key] = weight
        self._adj[u][v] = weight
        if self._directed:
            self._pred[v][u] = weight
        else:
            self._adj[v][u] = weight
        return key

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge between ``u`` and ``v``."""
        key = self.edge_key(u, v)
        del self._edges[key]
        del self._adj[u][v]
        if self._directed:
            del self._pred[v][u]
        else:
            del self._adj[v][u]
        self._topology_version += 1
        self._weights_version += 1

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def directed(self) -> bool:
        """Whether the graph is directed."""
        return self._directed

    @property
    def topology_version(self) -> int:
        """Monotone counter bumped by vertex/edge insertions and
        removals.  :class:`repro.engine.CSRGraph` caches its compiled
        structure arrays against this value."""
        return self._topology_version

    @property
    def weights_version(self) -> int:
        """Monotone counter bumped by every weight mutation (including
        edge insertion/removal).  A matching topology version with a
        stale weights version lets the engine reuse the compiled
        structure and only refresh the weight array."""
        return self._weights_version

    @property
    def num_vertices(self) -> int:
        """``|V|`` — the paper's ``V``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """``|E|`` — the paper's ``E``."""
        return len(self._edges)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over vertices in insertion order."""
        return iter(self._adj)

    def vertex_list(self) -> list[Vertex]:
        """Vertices as a list, in insertion order."""
        return list(self._adj)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, float]]:
        """Iterate over ``(u, v, weight)`` in canonical orientation."""
        for (u, v), w in self._edges.items():
            yield u, v, w

    def edge_list(self) -> list[Edge]:
        """Canonical edge keys as a list, in insertion order."""
        return list(self._edges)

    def has_vertex(self, v: Vertex) -> bool:
        """Whether ``v`` is a vertex of the graph."""
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether an edge joins ``u`` and ``v`` (either orientation if
        undirected)."""
        return u in self._adj and v in self._adj[u]

    def edge_key(
        self, u: Vertex, v: Vertex, missing_ok: bool = False
    ) -> Edge | None:
        """Return the canonical key of the edge between ``u`` and ``v``.

        For undirected graphs the canonical key is whichever orientation
        was used at insertion.  Raises
        :class:`~repro.exceptions.EdgeNotFoundError` unless
        ``missing_ok`` is set.
        """
        if (u, v) in self._edges:
            return (u, v)
        if not self._directed and (v, u) in self._edges:
            return (v, u)
        if missing_ok:
            return None
        raise EdgeNotFoundError((u, v))

    def neighbors(self, v: Vertex) -> Iterator[Tuple[Vertex, float]]:
        """Iterate ``(neighbor, weight)`` pairs.

        For directed graphs this iterates successors.
        """
        if v not in self._adj:
            raise VertexNotFoundError(v)
        return iter(self._adj[v].items())

    def predecessors(self, v: Vertex) -> Iterator[Tuple[Vertex, float]]:
        """Iterate ``(predecessor, weight)`` pairs (directed graphs)."""
        if v not in self._pred:
            raise VertexNotFoundError(v)
        return iter(self._pred[v].items())

    def degree(self, v: Vertex) -> int:
        """Number of incident edges (out-degree for directed graphs)."""
        if v not in self._adj:
            raise VertexNotFoundError(v)
        return len(self._adj[v])

    # ------------------------------------------------------------------
    # The weight function w : E -> R (the private data)
    # ------------------------------------------------------------------

    def weight(self, u: Vertex, v: Vertex) -> float:
        """The weight of the edge between ``u`` and ``v``."""
        key = self.edge_key(u, v)
        assert key is not None
        return self._edges[key]

    def set_weight(self, u: Vertex, v: Vertex, weight: float) -> None:
        """Overwrite the weight of an existing edge."""
        key = self.edge_key(u, v)
        assert key is not None
        weight = float(weight)
        self._weights_version += 1
        self._edges[key] = weight
        a, b = key
        self._adj[a][b] = weight
        if self._directed:
            self._pred[b][a] = weight
        else:
            self._adj[b][a] = weight

    def weights(self) -> Dict[Edge, float]:
        """The weight function as a dict keyed by canonical edge."""
        return dict(self._edges)

    def weight_vector(self, order: Iterable[Edge] | None = None) -> np.ndarray:
        """The weight function as a vector.

        The paper's histogram formulation (Section 1.3) views ``w`` as a
        point in ``R^{|E|}``; this method realizes that view.  The
        default order is canonical insertion order
        (:meth:`edge_list`).
        """
        keys = list(order) if order is not None else self.edge_list()
        values = []
        for key in keys:
            canonical = self.edge_key(*key)
            assert canonical is not None
            values.append(self._edges[canonical])
        return np.asarray(values, dtype=float)

    def with_weights(
        self, new_weights: Mapping[Edge, float] | np.ndarray | Iterable[float]
    ) -> "WeightedGraph":
        """Return a copy of this topology carrying different weights.

        ``new_weights`` may be a mapping from edges (either orientation)
        to weights, or a sequence aligned with :meth:`edge_list`.  This
        is how mechanisms release synthetic graphs: same public
        topology, freshly noised private weights.
        """
        clone = self.copy()
        if isinstance(new_weights, Mapping):
            for (u, v), weight in new_weights.items():
                clone.set_weight(u, v, weight)
        else:
            values = list(new_weights)
            keys = clone.edge_list()
            if len(values) != len(keys):
                raise WeightError(
                    f"expected {len(keys)} weights, got {len(values)}"
                )
            for key, weight in zip(keys, values):
                clone.set_weight(*key, float(weight))
        # The clone carries the identical public topology (copy()
        # preserves vertex and edge insertion order), so a compiled
        # engine structure remains valid for it.  Hand it over with a
        # deliberately stale weights version (-1) so the engine takes
        # its cheap regather path instead of a full rebuild — this is
        # what makes per-epoch re-weighting O(|E|) array work.
        cached = getattr(self, "_engine_csr_cache", None)
        if cached is not None and cached[0] == self._topology_version:
            clone._engine_csr_cache = (  # type: ignore[attr-defined]
                clone._topology_version,
                -1,
                cached[2],
            )
        return clone

    def total_weight(self) -> float:
        """``||w||_1`` — the sum of all edge weights."""
        return float(sum(self._edges.values()))

    def check_nonnegative(self) -> None:
        """Raise :class:`~repro.exceptions.WeightError` if any weight is
        negative (Definition 2.1 requires ``w : E -> R+``)."""
        for (u, v), weight in self._edges.items():
            if weight < 0:
                raise WeightError(
                    f"edge ({u!r}, {v!r}) has negative weight {weight}"
                )

    def check_bounded(self, bound: float) -> None:
        """Raise :class:`~repro.exceptions.WeightError` unless all
        weights lie in ``[0, bound]`` (Section 4.2's precondition)."""
        self.check_nonnegative()
        for (u, v), weight in self._edges.items():
            if weight > bound:
                raise WeightError(
                    f"edge ({u!r}, {v!r}) has weight {weight} > bound {bound}"
                )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def copy(self) -> "WeightedGraph":
        """An independent deep copy."""
        clone = WeightedGraph(directed=self._directed)
        for v in self._adj:
            clone.add_vertex(v)
        for (u, v), weight in self._edges.items():
            clone.add_edge(u, v, weight)
        return clone

    def subgraph(self, keep: Iterable[Vertex]) -> "WeightedGraph":
        """The induced subgraph on the given vertex set."""
        keep_set = set(keep)
        missing = keep_set - set(self._adj)
        if missing:
            raise VertexNotFoundError(next(iter(missing)))
        sub = WeightedGraph(directed=self._directed)
        for v in self._adj:
            if v in keep_set:
                sub.add_vertex(v)
        for (u, v), weight in self._edges.items():
            if u in keep_set and v in keep_set:
                sub.add_edge(u, v, weight)
        return sub

    def path_weight(self, path: Iterable[Vertex]) -> float:
        """The weight ``w(P)`` of a path given as a vertex sequence.

        Raises if consecutive vertices are not adjacent, so a released
        path can be validated against the public topology.
        """
        vertices = list(path)
        total = 0.0
        for u, v in zip(vertices, vertices[1:]):
            total += self.weight(u, v)
        return total

    def is_path(self, path: Iterable[Vertex]) -> bool:
        """Whether the vertex sequence is a walk in the graph."""
        vertices = list(path)
        if not vertices:
            return False
        if any(v not in self._adj for v in vertices):
            return False
        return all(
            self.has_edge(u, v) for u, v in zip(vertices, vertices[1:])
        )

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return (
            f"WeightedGraph({kind}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )
