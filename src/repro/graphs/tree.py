"""Rooted trees: the substrate for Algorithm 1 (Section 4.1).

:class:`RootedTree` wraps a :class:`~repro.graphs.graph.WeightedGraph`
that is a tree, fixes a root, and precomputes the structures the paper's
tree-distance algorithm needs:

* subtree sizes, for locating the splitter vertex ``v*`` of Algorithm 1
  (the unique vertex whose subtree exceeds ``V/2`` vertices while every
  child subtree has at most ``V/2`` — Figure 1's partition),
* depth and parents for binary-lifting lowest common ancestors, used by
  the all-pairs reduction of Theorem 4.2
  (``d(x, y) = d(v0, x) + d(v0, y) - 2 d(v0, lca(x, y))``),
* exact root-to-vertex distances, used as the ground truth in tests and
  benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..exceptions import NotATreeError, VertexNotFoundError
from .graph import Vertex, WeightedGraph

__all__ = ["RootedTree"]


class RootedTree:
    """A rooted view of a tree-shaped :class:`WeightedGraph`.

    Parameters
    ----------
    graph:
        An undirected, connected graph with ``|E| = |V| - 1`` (a tree).
    root:
        The root vertex ``v0``.

    Raises
    ------
    NotATreeError
        If the graph is directed, disconnected, or contains a cycle.
    VertexNotFoundError
        If the root is not a vertex of the graph.
    """

    def __init__(self, graph: WeightedGraph, root: Vertex) -> None:
        if graph.directed:
            raise NotATreeError("rooted trees require an undirected graph")
        if not graph.has_vertex(root):
            raise VertexNotFoundError(root)
        if graph.num_edges != graph.num_vertices - 1:
            raise NotATreeError(
                f"a tree on {graph.num_vertices} vertices must have "
                f"{graph.num_vertices - 1} edges, got {graph.num_edges}"
            )
        self._graph = graph
        self._root = root
        self._parent: Dict[Vertex, Vertex | None] = {root: None}
        self._children: Dict[Vertex, List[Vertex]] = {}
        self._depth: Dict[Vertex, int] = {root: 0}
        self._distance: Dict[Vertex, float] = {root: 0.0}
        self._order: List[Vertex] = []  # preorder (parents before children)
        self._build()
        if len(self._order) != graph.num_vertices:
            raise NotATreeError(
                "graph is disconnected: "
                f"reached {len(self._order)} of {graph.num_vertices} vertices"
            )
        self._subtree_size: Dict[Vertex, int] = {}
        self._compute_subtree_sizes()
        self._lift: List[Dict[Vertex, Vertex]] = []
        self._build_lifting()

    def _build(self) -> None:
        stack = [self._root]
        visited = {self._root}
        while stack:
            v = stack.pop()
            self._order.append(v)
            self._children[v] = []
            for u, weight in self._graph.neighbors(v):
                if u in visited:
                    continue
                visited.add(u)
                self._parent[u] = v
                self._children[v].append(u)
                self._depth[u] = self._depth[v] + 1
                self._distance[u] = self._distance[v] + weight
                stack.append(u)

    def _compute_subtree_sizes(self) -> None:
        for v in reversed(self._order):
            self._subtree_size[v] = 1 + sum(
                self._subtree_size[c] for c in self._children[v]
            )

    def _build_lifting(self) -> None:
        # lift[j][v] = the 2^j-th ancestor of v (absent once past root).
        level: Dict[Vertex, Vertex] = {
            v: p for v, p in self._parent.items() if p is not None
        }
        while level:
            self._lift.append(level)
            nxt: Dict[Vertex, Vertex] = {}
            for v, anc in level.items():
                if anc in level:
                    nxt[v] = level[anc]
            level = nxt

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def graph(self) -> WeightedGraph:
        """The underlying tree graph."""
        return self._graph

    @property
    def root(self) -> Vertex:
        """The root vertex ``v0``."""
        return self._root

    @property
    def num_vertices(self) -> int:
        """``|V|``."""
        return self._graph.num_vertices

    def parent(self, v: Vertex) -> Vertex | None:
        """The parent of ``v`` (``None`` for the root)."""
        if v not in self._parent:
            raise VertexNotFoundError(v)
        return self._parent[v]

    def children(self, v: Vertex) -> List[Vertex]:
        """The children of ``v`` in root-away order."""
        if v not in self._children:
            raise VertexNotFoundError(v)
        return list(self._children[v])

    def depth(self, v: Vertex) -> int:
        """Hop distance from the root to ``v``."""
        if v not in self._depth:
            raise VertexNotFoundError(v)
        return self._depth[v]

    def subtree_size(self, v: Vertex) -> int:
        """Number of vertices in the subtree rooted at ``v``."""
        if v not in self._subtree_size:
            raise VertexNotFoundError(v)
        return self._subtree_size[v]

    def subtree_vertices(self, v: Vertex) -> List[Vertex]:
        """All vertices of the subtree rooted at ``v`` (preorder)."""
        if v not in self._children:
            raise VertexNotFoundError(v)
        result = []
        stack = [v]
        while stack:
            u = stack.pop()
            result.append(u)
            stack.extend(self._children[u])
        return result

    def preorder(self) -> List[Vertex]:
        """All vertices, parents before children."""
        return list(self._order)

    def is_leaf(self, v: Vertex) -> bool:
        """Whether ``v`` has no children."""
        return not self._children.get(v, [])

    # ------------------------------------------------------------------
    # Exact distances (non-private ground truth)
    # ------------------------------------------------------------------

    def distance_from_root(self, v: Vertex) -> float:
        """Exact weighted distance ``d_w(v0, v)``."""
        if v not in self._distance:
            raise VertexNotFoundError(v)
        return self._distance[v]

    def distance(self, x: Vertex, y: Vertex) -> float:
        """Exact weighted distance ``d_w(x, y)`` via the LCA identity of
        Theorem 4.2."""
        z = self.lca(x, y)
        return (
            self.distance_from_root(x)
            + self.distance_from_root(y)
            - 2.0 * self.distance_from_root(z)
        )

    def path(self, x: Vertex, y: Vertex) -> List[Vertex]:
        """The unique path from ``x`` to ``y`` as a vertex list."""
        z = self.lca(x, y)
        up: List[Vertex] = []
        v = x
        while v != z:
            up.append(v)
            parent = self._parent[v]
            assert parent is not None
            v = parent
        down: List[Vertex] = []
        v = y
        while v != z:
            down.append(v)
            parent = self._parent[v]
            assert parent is not None
            v = parent
        return up + [z] + list(reversed(down))

    def path_to_root(self, v: Vertex) -> List[Vertex]:
        """The path from ``v`` up to the root."""
        if v not in self._parent:
            raise VertexNotFoundError(v)
        result = [v]
        while True:
            parent = self._parent[result[-1]]
            if parent is None:
                return result
            result.append(parent)

    # ------------------------------------------------------------------
    # Lowest common ancestor (binary lifting)
    # ------------------------------------------------------------------

    def ancestor(self, v: Vertex, hops: int) -> Vertex:
        """The ancestor of ``v`` that is ``hops`` levels above it."""
        if v not in self._depth:
            raise VertexNotFoundError(v)
        if hops > self._depth[v]:
            raise ValueError(
                f"vertex {v!r} has depth {self._depth[v]} < {hops}"
            )
        j = 0
        while hops:
            if hops & 1:
                v = self._lift[j][v]
            hops >>= 1
            j += 1
        return v

    def lca(self, x: Vertex, y: Vertex) -> Vertex:
        """The lowest common ancestor of ``x`` and ``y``."""
        if x not in self._depth:
            raise VertexNotFoundError(x)
        if y not in self._depth:
            raise VertexNotFoundError(y)
        dx, dy = self._depth[x], self._depth[y]
        if dx > dy:
            x = self.ancestor(x, dx - dy)
        elif dy > dx:
            y = self.ancestor(y, dy - dx)
        if x == y:
            return x
        for level in reversed(self._lift):
            ax, ay = level.get(x), level.get(y)
            if ax is not None and ay is not None and ax != ay:
                x, y = ax, ay
        parent = self._parent[x]
        assert parent is not None
        return parent

    # ------------------------------------------------------------------
    # The Algorithm 1 splitter (Figure 1)
    # ------------------------------------------------------------------

    def splitter(self) -> Vertex:
        """The splitter vertex ``v*`` of Algorithm 1.

        ``v*`` is the unique vertex whose subtree contains more than
        ``V/2`` vertices while the subtree rooted at each of its children
        contains at most ``V/2``.  It is found by walking down from the
        root, always descending into a child whose subtree is still too
        large.  (Uniqueness: heavy subtrees form a root-down chain.)
        """
        half = self.num_vertices / 2.0
        v = self._root
        while True:
            heavy = [
                c for c in self._children[v] if self._subtree_size[c] > half
            ]
            if not heavy:
                return v
            # At most one child subtree can exceed half the vertices.
            assert len(heavy) == 1
            v = heavy[0]

    def split_at(
        self, v_star: Vertex
    ) -> Tuple[List[Vertex], List[List[Vertex]]]:
        """Partition the vertex set as in Figure 1.

        Returns ``(T0, [T1, ..., Tt])`` where ``Ti`` is the vertex set of
        the subtree rooted at the ``i``-th child of ``v_star`` and ``T0``
        is everything else (the component containing the root, including
        ``v_star`` itself).
        """
        subtrees = [self.subtree_vertices(c) for c in self.children(v_star)]
        removed = set().union(*subtrees) if subtrees else set()
        t0 = [v for v in self._order if v not in removed]
        return t0, subtrees

    def __repr__(self) -> str:
        return f"RootedTree(root={self._root!r}, |V|={self.num_vertices})"
