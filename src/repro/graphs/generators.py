"""Graph generators for the workloads in the benchmark harness.

Each generator produces a :class:`~repro.graphs.graph.WeightedGraph`
with unit weights; random weights are layered on separately with
:func:`assign_random_weights` (or the congestion models in
:mod:`repro.workloads.traffic`) so topology and private weights stay
independent, matching the paper's public-topology model.

Families covered:

* paths, cycles, stars, complete graphs — the paper's worked examples
  (the path graph of Appendix A, the cycle of Section 1.3),
* ``sqrt(V) x sqrt(V)`` grids — Theorem 4.7's family,
* balanced / random / caterpillar trees — Section 4.1's family,
* Erdős–Rényi and random geometric graphs — generic bounded-weight
  workloads for Section 4.2 and road-like networks for Section 5.
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

from ..exceptions import GraphError
from ..rng import Rng
from .graph import Vertex, WeightedGraph

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "balanced_tree",
    "random_tree",
    "caterpillar_tree",
    "spider_tree",
    "erdos_renyi_graph",
    "random_geometric_graph",
    "assign_random_weights",
]


def _require_positive(n: int, what: str = "number of vertices") -> None:
    if n <= 0:
        raise GraphError(f"{what} must be positive, got {n}")


def path_graph(n: int) -> WeightedGraph:
    """The path graph ``P`` on vertices ``0..n-1`` (Appendix A)."""
    _require_positive(n)
    graph = WeightedGraph()
    graph.add_vertex(0)
    for i in range(1, n):
        graph.add_edge(i - 1, i, 1.0)
    return graph


def cycle_graph(n: int) -> WeightedGraph:
    """The cycle graph ``C`` on ``n >= 3`` vertices (Section 1.3's
    example of why edge-DP cannot release distances)."""
    if n < 3:
        raise GraphError(f"a cycle needs at least 3 vertices, got {n}")
    graph = path_graph(n)
    graph.add_edge(n - 1, 0, 1.0)
    return graph


def star_graph(n: int) -> WeightedGraph:
    """A star: hub ``0`` joined to leaves ``1..n-1``."""
    _require_positive(n)
    graph = WeightedGraph()
    graph.add_vertex(0)
    for i in range(1, n):
        graph.add_edge(0, i, 1.0)
    return graph


def complete_graph(n: int) -> WeightedGraph:
    """The complete graph ``K_n``."""
    _require_positive(n)
    graph = WeightedGraph()
    for i in range(n):
        graph.add_vertex(i)
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_edge(i, j, 1.0)
    return graph


def grid_graph(rows: int, cols: int | None = None) -> WeightedGraph:
    """The ``rows x cols`` grid with vertices ``(r, c)`` (Theorem 4.7).

    With ``cols`` omitted the grid is square, i.e. the paper's
    ``sqrt(V) x sqrt(V)`` family.
    """
    if cols is None:
        cols = rows
    _require_positive(rows, "rows")
    _require_positive(cols, "cols")
    graph = WeightedGraph()
    for r in range(rows):
        for c in range(cols):
            graph.add_vertex((r, c))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c), 1.0)
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1), 1.0)
    return graph


def balanced_tree(branching: int, height: int) -> WeightedGraph:
    """A complete ``branching``-ary tree of the given height, rooted
    at vertex ``0``."""
    if branching < 1:
        raise GraphError(f"branching factor must be >= 1, got {branching}")
    if height < 0:
        raise GraphError(f"height must be >= 0, got {height}")
    graph = WeightedGraph()
    graph.add_vertex(0)
    frontier = [0]
    next_id = 1
    for _ in range(height):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                graph.add_edge(parent, next_id, 1.0)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return graph


def random_tree(n: int, rng: Rng) -> WeightedGraph:
    """A uniformly random labelled tree on ``n`` vertices via a random
    Prüfer sequence."""
    _require_positive(n)
    graph = WeightedGraph()
    for i in range(n):
        graph.add_vertex(i)
    if n == 1:
        return graph
    if n == 2:
        graph.add_edge(0, 1, 1.0)
        return graph
    sequence = [rng.integer(0, n) for _ in range(n - 2)]
    degree = [1] * n
    for v in sequence:
        degree[v] += 1
    # Standard Prüfer decoding with a pointer-and-leaf scan.
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in sequence:
        leaf = heapq.heappop(leaves)
        graph.add_edge(leaf, v, 1.0)
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    graph.add_edge(u, v, 1.0)
    return graph


def caterpillar_tree(spine: int, legs_per_vertex: int) -> WeightedGraph:
    """A caterpillar: a path of ``spine`` vertices, each with
    ``legs_per_vertex`` pendant leaves.

    Caterpillars stress Algorithm 1's recursion differently from
    balanced trees (long diameter plus high degree).
    """
    _require_positive(spine, "spine length")
    if legs_per_vertex < 0:
        raise GraphError(f"legs must be >= 0, got {legs_per_vertex}")
    graph = path_graph(spine)
    next_id = spine
    for s in range(spine):
        for _ in range(legs_per_vertex):
            graph.add_edge(s, next_id, 1.0)
            next_id += 1
    return graph


def spider_tree(legs: int, leg_length: int) -> WeightedGraph:
    """A spider: ``legs`` paths of ``leg_length`` edges sharing hub 0."""
    _require_positive(legs, "legs")
    _require_positive(leg_length, "leg length")
    graph = WeightedGraph()
    graph.add_vertex(0)
    next_id = 1
    for _ in range(legs):
        previous = 0
        for _ in range(leg_length):
            graph.add_edge(previous, next_id, 1.0)
            previous = next_id
            next_id += 1
    return graph


def erdos_renyi_graph(
    n: int, p: float, rng: Rng, ensure_connected: bool = True
) -> WeightedGraph:
    """An Erdős–Rényi graph ``G(n, p)``.

    With ``ensure_connected`` (the default) a random spanning tree is
    added first so distance queries are always finite; the extra edges
    only shorten distances, preserving the G(n, p) character for the
    bounded-weight experiments.
    """
    _require_positive(n)
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    graph = WeightedGraph()
    for i in range(n):
        graph.add_vertex(i)
    if ensure_connected and n > 1:
        order = rng.permutation(n)
        for i in range(1, n):
            attach = order[rng.integer(0, i)]
            graph.add_edge(order[i], attach, 1.0)
    for i in range(n):
        for j in range(i + 1, n):
            if not graph.has_edge(i, j) and rng.uniform() < p:
                graph.add_edge(i, j, 1.0)
    return graph


def random_geometric_graph(
    n: int, radius: float, rng: Rng, ensure_connected: bool = True
) -> Tuple[WeightedGraph, dict]:
    """A random geometric graph on the unit square.

    Vertices are random points; edges join pairs within ``radius``, with
    weight equal to Euclidean distance.  This is the library's stand-in
    for real road networks (see DESIGN.md substitution #1): sparse,
    low-diameter-per-hop, and spatially local, which is what makes the
    hop-dependent bound of Theorem 5.5 bite.

    Returns the graph and the vertex -> (x, y) position map.
    """
    _require_positive(n)
    if radius <= 0:
        raise GraphError(f"radius must be positive, got {radius}")
    points = {
        i: (rng.uniform(), rng.uniform()) for i in range(n)
    }
    graph = WeightedGraph()
    for i in range(n):
        graph.add_vertex(i)
    for i in range(n):
        for j in range(i + 1, n):
            xi, yi = points[i]
            xj, yj = points[j]
            dist = math.hypot(xi - xj, yi - yj)
            if dist <= radius:
                graph.add_edge(i, j, dist)
    if ensure_connected:
        _connect_nearest(graph, points)
    return graph, points


def _connect_nearest(graph: WeightedGraph, points: dict) -> None:
    """Join connected components by their geometrically nearest pair."""
    from ..algorithms.traversal import connected_components

    while True:
        components = connected_components(graph)
        if len(components) <= 1:
            return
        base = components[0]
        best = None
        for other in components[1:]:
            for u in base:
                for v in other:
                    xu, yu = points[u]
                    xv, yv = points[v]
                    dist = math.hypot(xu - xv, yu - yv)
                    if best is None or dist < best[0]:
                        best = (dist, u, v)
        assert best is not None
        graph.add_edge(best[1], best[2], best[0])


def assign_random_weights(
    graph: WeightedGraph,
    rng: Rng,
    low: float = 0.0,
    high: float = 1.0,
) -> WeightedGraph:
    """Return a copy of ``graph`` with i.i.d. uniform weights in
    ``[low, high]`` — the generic bounded-weight workload of
    Section 4.2 with ``M = high``."""
    if low < 0:
        raise GraphError(f"weights must be nonnegative, got low={low}")
    if high < low:
        raise GraphError(f"need high >= low, got [{low}, {high}]")
    values = rng.uniform_vector(low, high, graph.num_edges)
    return graph.with_weights(values)
