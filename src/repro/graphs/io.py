"""Serialization for graphs and weight functions.

Two formats are supported:

* a JSON document capturing topology + weights + directedness, for
  round-tripping whole graphs, and
* a plain edge-list text format (``u v weight`` per line) for interop
  with external tools.

Vertex labels survive JSON round-trips when they are strings, numbers
or (nested) lists/tuples; tuples are restored as tuples so grid
vertices ``(r, c)`` round-trip exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any

from ..exceptions import GraphError
from .graph import WeightedGraph

__all__ = [
    "graph_to_json",
    "graph_from_json",
    "save_graph",
    "load_graph",
    "write_edge_list",
    "read_edge_list",
]

_FORMAT_VERSION = 1


def _encode_vertex(v: Any) -> Any:
    if isinstance(v, tuple):
        return {"__tuple__": [_encode_vertex(item) for item in v]}
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    raise GraphError(
        f"vertex {v!r} of type {type(v).__name__} is not JSON-serializable"
    )


def _decode_vertex(v: Any) -> Any:
    if isinstance(v, dict) and "__tuple__" in v:
        return tuple(_decode_vertex(item) for item in v["__tuple__"])
    return v


def graph_to_json(graph: WeightedGraph) -> str:
    """Serialize a graph (topology + weights) to a JSON string."""
    document = {
        "format": "repro-graph",
        "version": _FORMAT_VERSION,
        "directed": graph.directed,
        "vertices": [_encode_vertex(v) for v in graph.vertices()],
        "edges": [
            [_encode_vertex(u), _encode_vertex(v), w]
            for u, v, w in graph.edges()
        ],
    }
    return json.dumps(document)


def graph_from_json(text: str) -> WeightedGraph:
    """Deserialize a graph from :func:`graph_to_json` output."""
    document = json.loads(text)
    if document.get("format") != "repro-graph":
        raise GraphError("not a repro-graph JSON document")
    if document.get("version") != _FORMAT_VERSION:
        raise GraphError(
            f"unsupported format version {document.get('version')!r}"
        )
    graph = WeightedGraph(directed=bool(document["directed"]))
    for v in document["vertices"]:
        graph.add_vertex(_decode_vertex(v))
    for u, v, w in document["edges"]:
        graph.add_edge(_decode_vertex(u), _decode_vertex(v), float(w))
    return graph


def save_graph(graph: WeightedGraph, path: str | Path) -> None:
    """Write a graph to a JSON file."""
    Path(path).write_text(graph_to_json(graph))


def load_graph(path: str | Path) -> WeightedGraph:
    """Read a graph from a JSON file."""
    return graph_from_json(Path(path).read_text())


def write_edge_list(graph: WeightedGraph, stream: IO[str]) -> None:
    """Write ``u v weight`` lines (vertex labels via ``repr``-safe str).

    Only graphs with string/int vertex labels containing no whitespace
    can round-trip through this format; use JSON otherwise.
    """
    for u, v, w in graph.edges():
        for label in (u, v):
            if not isinstance(label, (str, int)):
                raise GraphError(
                    f"edge-list format requires str/int vertices, got {label!r}"
                )
            if isinstance(label, str) and any(c.isspace() for c in label):
                raise GraphError(
                    f"vertex label {label!r} contains whitespace"
                )
        stream.write(f"{u} {v} {w}\n")


def read_edge_list(
    stream: IO[str], directed: bool = False, int_vertices: bool = True
) -> WeightedGraph:
    """Read ``u v weight`` lines into a graph.

    With ``int_vertices`` (default) labels are parsed as ints; otherwise
    they remain strings.
    """
    graph = WeightedGraph(directed=directed)
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise GraphError(
                f"line {line_number}: expected 'u v weight', got {line!r}"
            )
        u_raw, v_raw, w_raw = parts
        u: Any = int(u_raw) if int_vertices else u_raw
        v: Any = int(v_raw) if int_vertices else v_raw
        graph.add_edge(u, v, float(w_raw))
    return graph
