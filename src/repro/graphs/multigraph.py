"""Weighted multigraphs (parallel edges allowed).

The lower-bound constructions of the paper are multigraphs:

* Figure 2 (Section 5.1): the ``(n+1)``-vertex graph with two parallel
  edges ``e_i^(0)`` and ``e_i^(1)`` between consecutive vertices,
* Figure 3 left (Appendix B.1): a star with two parallel edges from the
  hub to each leaf,

and the paper notes each can be converted to a simple graph by adding
``n`` extra vertices at a factor-2 cost in the bound.  This module
implements multigraphs directly and also provides that conversion
(:meth:`WeightedMultiGraph.to_simple`), so both forms are testable.

Edges are identified by an explicit *key* (any hashable; auto-assigned
integers by default), since an endpoint pair no longer identifies an
edge uniquely.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Tuple

from ..exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError
from .graph import Vertex, WeightedGraph

MultiEdge = Hashable

__all__ = ["MultiEdge", "WeightedMultiGraph"]


class WeightedMultiGraph:
    """An undirected weighted multigraph with keyed parallel edges."""

    def __init__(self) -> None:
        # vertex -> neighbor -> set of edge keys
        self._adj: Dict[Vertex, Dict[Vertex, set]] = {}
        # key -> (u, v, weight)
        self._edges: Dict[MultiEdge, Tuple[Vertex, Vertex, float]] = {}
        self._next_key = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex (no-op if present)."""
        if v not in self._adj:
            self._adj[v] = {}

    def add_edge(
        self,
        u: Vertex,
        v: Vertex,
        weight: float = 1.0,
        key: MultiEdge | None = None,
    ) -> MultiEdge:
        """Add an edge and return its key.

        Distinct keys may join the same endpoints (parallel edges).
        Passing an existing key is an error — weights are updated through
        :meth:`set_weight` to keep intent explicit.
        """
        if u == v:
            raise GraphError(f"self-loops are not supported (vertex {u!r})")
        if key is None:
            key = self._next_key
            self._next_key += 1
        elif key in self._edges:
            raise GraphError(f"edge key {key!r} already exists")
        self.add_vertex(u)
        self.add_vertex(v)
        self._edges[key] = (u, v, float(weight))
        self._adj[u].setdefault(v, set()).add(key)
        self._adj[v].setdefault(u, set()).add(key)
        return key

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """``|V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """``|E|`` counting parallel edges separately."""
        return len(self._edges)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate vertices in insertion order."""
        return iter(self._adj)

    def edge_keys(self) -> list[MultiEdge]:
        """All edge keys in insertion order."""
        return list(self._edges)

    def edges(self) -> Iterator[Tuple[MultiEdge, Vertex, Vertex, float]]:
        """Iterate ``(key, u, v, weight)``."""
        for key, (u, v, w) in self._edges.items():
            yield key, u, v, w

    def endpoints(self, key: MultiEdge) -> Tuple[Vertex, Vertex]:
        """The endpoints of the edge with the given key."""
        if key not in self._edges:
            raise EdgeNotFoundError(key)
        u, v, _ = self._edges[key]
        return u, v

    def weight(self, key: MultiEdge) -> float:
        """The weight of the edge with the given key."""
        if key not in self._edges:
            raise EdgeNotFoundError(key)
        return self._edges[key][2]

    def set_weight(self, key: MultiEdge, weight: float) -> None:
        """Overwrite the weight of an existing edge."""
        if key not in self._edges:
            raise EdgeNotFoundError(key)
        u, v, _ = self._edges[key]
        self._edges[key] = (u, v, float(weight))

    def weights(self) -> Dict[MultiEdge, float]:
        """The weight function keyed by edge key."""
        return {key: w for key, (_, _, w) in self._edges.items()}

    def with_weights(
        self, new_weights: Mapping[MultiEdge, float]
    ) -> "WeightedMultiGraph":
        """A copy of the topology carrying different weights."""
        clone = self.copy()
        for key, weight in new_weights.items():
            clone.set_weight(key, weight)
        return clone

    def parallel_keys(self, u: Vertex, v: Vertex) -> list[MultiEdge]:
        """All keys of edges joining ``u`` and ``v``."""
        if u not in self._adj:
            raise VertexNotFoundError(u)
        if v not in self._adj:
            raise VertexNotFoundError(v)
        return sorted(self._adj[u].get(v, set()), key=repr)

    def neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate distinct neighboring vertices."""
        if v not in self._adj:
            raise VertexNotFoundError(v)
        return iter(self._adj[v])

    def copy(self) -> "WeightedMultiGraph":
        """An independent deep copy preserving keys."""
        clone = WeightedMultiGraph()
        for v in self._adj:
            clone.add_vertex(v)
        for key, (u, v, w) in self._edges.items():
            clone.add_edge(u, v, w, key=key)
        clone._next_key = self._next_key
        return clone

    def path_weight(self, edge_path: Iterable[MultiEdge]) -> float:
        """Total weight of a path given as a sequence of edge keys."""
        return float(sum(self.weight(key) for key in edge_path))

    def min_weight_projection(
        self,
    ) -> tuple[WeightedGraph, Dict[Tuple[Vertex, Vertex], MultiEdge]]:
        """Project to a simple graph keeping the lightest parallel edge.

        A shortest path in a multigraph always takes the cheapest of any
        parallel bundle, so shortest-path queries reduce to this simple
        graph.  Returns the graph and a map from each kept simple edge
        (canonical orientation) to the multigraph key it represents —
        the reconstruction adversaries of Section 5.1 need those keys to
        read off which of ``e_i^(0)``, ``e_i^(1)`` the path used.
        """
        simple = WeightedGraph(directed=False)
        chosen: Dict[Tuple[Vertex, Vertex], MultiEdge] = {}
        for v in self._adj:
            simple.add_vertex(v)
        for u in self._adj:
            for v, keys in self._adj[u].items():
                pair_done = simple.has_edge(u, v)
                if pair_done:
                    continue
                best_key = min(keys, key=lambda k: (self._edges[k][2], repr(k)))
                canonical = simple.add_edge(u, v, self._edges[best_key][2])
                chosen[canonical] = best_key
        return simple, chosen

    # ------------------------------------------------------------------
    # Conversion to a simple graph (the paper's factor-2 remark)
    # ------------------------------------------------------------------

    def to_simple(self) -> tuple[WeightedGraph, Dict[MultiEdge, list]]:
        """Convert to a simple graph by subdividing parallel edges.

        Every edge beyond the first between a pair of endpoints is
        subdivided: edge ``key`` from ``u`` to ``v`` becomes
        ``u -- ("sub", key) -- v`` with the original weight on the first
        half and zero on the second.  Returns the simple graph and a map
        from each original key to the list of simple edges representing
        it.  Path weights are preserved exactly; hop counts at most
        double, which is the paper's factor-2 remark after Theorem 5.1.
        """
        simple = WeightedGraph(directed=False)
        mapping: Dict[MultiEdge, list] = {}
        seen_pairs: set = set()
        for v in self._adj:
            simple.add_vertex(v)
        for key, (u, v, w) in self._edges.items():
            pair = frozenset((u, v))
            if pair not in seen_pairs:
                seen_pairs.add(pair)
                simple.add_edge(u, v, w)
                mapping[key] = [(u, v)]
            else:
                mid = ("sub", key)
                simple.add_edge(u, mid, w)
                simple.add_edge(mid, v, 0.0)
                mapping[key] = [(u, mid), (mid, v)]
        return simple, mapping

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __repr__(self) -> str:
        return (
            f"WeightedMultiGraph(|V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )
