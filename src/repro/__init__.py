"""repro — a reproduction of *Shortest Paths and Distances with
Differential Privacy* (Adam Sealfon, PODS 2016).

The library implements the paper's private-edge-weight model: the graph
topology ``G = (V, E)`` is public and only the weight function
``w : E -> R+`` is private, with weight functions neighboring when
their L1 distance is at most 1 (Definition 2.1).

Quick start::

    from repro import Rng, generators, release_private_paths

    rng = Rng(seed=0)
    graph = generators.grid_graph(8, 8)
    release = release_private_paths(graph, eps=1.0, gamma=0.05, rng=rng)
    path = release.path((0, 0), (7, 7))

Package map:

* :mod:`repro.graphs` — graph/tree/multigraph substrates + generators.
* :mod:`repro.algorithms` — exact shortest paths, MST, matching,
  k-coverings.
* :mod:`repro.engine` — the vectorized CSR graph-kernel backend every
  exact-recomputation hot path dispatches through.
* :mod:`repro.dp` — Laplace mechanism, composition, budget accounting,
  and every closed-form bound from the paper.
* :mod:`repro.core` — the paper's mechanisms (Algorithms 1–3, the
  bounded-weight and Appendix-B releases, the lower-bound gadgets).
* :mod:`repro.apsp` — the improved all-pairs mechanisms from follow-up
  work (hub-set relays + local balls, plain and over coverings).
* :mod:`repro.mechanisms` — the release-mechanism registry: every
  mechanism as a named, swappable entry with data-independent
  applicability and noise-scale predictions; auto-selection is a
  registry-wide contest.
* :mod:`repro.telemetry` — zero-dependency observability: the metrics
  registry (counters, gauges, streaming quantile histograms), the span
  tracer, and JSON / Prometheus exporters the serving stack records
  into.
* :mod:`repro.workloads` — synthetic road networks and query workloads.
* :mod:`repro.serving` — the query-serving engine: synopses, budget
  ledger, batch planner, declarative serving configs + the ``serve()``
  factory, rich estimates, and the traffic-replay simulator.
* :mod:`repro.analysis` — error metrics and the experiment harness.
* :mod:`repro.privlint` — AST-based static analyzer enforcing the
  privacy/determinism invariants (weight taint, RNG discipline,
  observational purity, concurrency hygiene) behind the ``lint`` CLI
  gate.
"""

from .exceptions import (
    BudgetExceededError,
    DisconnectedGraphError,
    EdgeNotFoundError,
    EngineError,
    GraphError,
    MatchingError,
    MechanismError,
    NotATreeError,
    PrivacyError,
    ReproError,
    SynopsisError,
    TelemetryError,
    VertexNotFoundError,
    WeightError,
)
from .rng import Rng
from .engine import (
    CSRGraph,
    available_backends,
    compile_csr,
    get_backend,
    register_backend,
)
from .graphs import (
    RootedTree,
    WeightedGraph,
    WeightedMultiGraph,
    generators,
)
from .dp import (
    Accountant,
    LaplaceMechanism,
    PrivacyParams,
    advanced_composition,
    basic_composition,
    bounds,
)
from .core import (
    AllPairsAdvancedRelease,
    AllPairsBasicRelease,
    BoundedWeightRelease,
    CycleRelease,
    HistogramRelease,
    MatchingRelease,
    MstRelease,
    PathHierarchyRelease,
    PrivatePathsRelease,
    SyntheticGraphRelease,
    TreeAllPairsRelease,
    TreeSingleSourceRelease,
    lower_bounds,
    private_distance,
    release_bounded_weight,
    release_cycle_distances,
    release_grid_bounded_weight,
    release_histogram_distances,
    release_path_hierarchy,
    release_private_matching,
    release_private_mst,
    release_private_paths,
    release_synthetic_graph,
    release_tree_all_pairs,
    release_tree_single_source,
)
from .apsp import (
    HubSetBoundedRelease,
    HubSetRelease,
)
from .mechanisms import (
    Mechanism,
    MechanismParams,
    auto_select_mechanism,
    available_mechanisms,
    get_mechanism,
    register_mechanism,
)
from .telemetry import (
    NULL_TELEMETRY,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    QuantileSketch,
    Telemetry,
    Tracer,
    get_telemetry,
    set_default_telemetry,
    use_telemetry,
)
from .serving import (
    BatchPlanner,
    BatchReport,
    BudgetLedger,
    DistanceServer,
    DistanceService,
    DistanceSynopsis,
    Estimate,
    ServingConfig,
    ShardPlan,
    ShardedDistanceService,
    build_all_pairs_synopsis,
    build_single_pair_synopsis,
    partition_graph,
    replay_rush_hour,
    serve,
    synopsis_from_json,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "GraphError",
    "VertexNotFoundError",
    "EdgeNotFoundError",
    "DisconnectedGraphError",
    "NotATreeError",
    "WeightError",
    "PrivacyError",
    "BudgetExceededError",
    "MatchingError",
    "EngineError",
    "SynopsisError",
    "MechanismError",
    "TelemetryError",
    # substrates
    "Rng",
    "WeightedGraph",
    "WeightedMultiGraph",
    "RootedTree",
    "generators",
    # engine
    "CSRGraph",
    "compile_csr",
    "available_backends",
    "get_backend",
    "register_backend",
    # dp
    "PrivacyParams",
    "LaplaceMechanism",
    "Accountant",
    "basic_composition",
    "advanced_composition",
    "bounds",
    # core releases
    "private_distance",
    "AllPairsBasicRelease",
    "AllPairsAdvancedRelease",
    "SyntheticGraphRelease",
    "release_synthetic_graph",
    "PrivatePathsRelease",
    "release_private_paths",
    "TreeSingleSourceRelease",
    "TreeAllPairsRelease",
    "release_tree_single_source",
    "release_tree_all_pairs",
    "PathHierarchyRelease",
    "release_path_hierarchy",
    "BoundedWeightRelease",
    "release_bounded_weight",
    "release_grid_bounded_weight",
    "CycleRelease",
    "release_cycle_distances",
    "HistogramRelease",
    "release_histogram_distances",
    "MstRelease",
    "release_private_mst",
    "MatchingRelease",
    "release_private_matching",
    "lower_bounds",
    # improved all-pairs mechanisms
    "HubSetRelease",
    "HubSetBoundedRelease",
    # mechanism registry
    "Mechanism",
    "MechanismParams",
    "register_mechanism",
    "get_mechanism",
    "available_mechanisms",
    "auto_select_mechanism",
    # serving
    "DistanceService",
    "ShardedDistanceService",
    "DistanceServer",
    "ServingConfig",
    "serve",
    "Estimate",
    "ShardPlan",
    "partition_graph",
    "BudgetLedger",
    "BatchPlanner",
    "BatchReport",
    "DistanceSynopsis",
    "build_all_pairs_synopsis",
    "build_single_pair_synopsis",
    "synopsis_from_json",
    "replay_rush_hour",
    # telemetry
    "Telemetry",
    "NULL_TELEMETRY",
    "MetricsRegistry",
    "NullRegistry",
    "Tracer",
    "NullTracer",
    "QuantileSketch",
    "get_telemetry",
    "set_default_telemetry",
    "use_telemetry",
]
