"""Synthetic road networks with congestion-style private weights.

The paper's model: road topology is public (a static map), travel times
are private (aggregated from individual GPS traces, each contributing a
bounded amount — exactly the L1-neighboring relation of Definition 2.1).
These generators produce plausible stand-ins:

* :func:`grid_road_network` — a Manhattan-style grid with a few diagonal
  shortcuts removed/perturbed, the classic road-network abstraction;
* :func:`geometric_road_network` — a random geometric graph whose edge
  base-times equal Euclidean length, resembling an inter-city network;
* :func:`congestion_weights` — turns base travel times into congested
  travel times with multiplicative and additive noise;
* :func:`rush_hour_scenario` — overlays a congestion hot-spot on a
  region, the kind of localized pattern a navigation provider must not
  leak.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..exceptions import GraphError
from ..graphs.generators import grid_graph, random_geometric_graph
from ..graphs.graph import Vertex, WeightedGraph
from ..rng import Rng

__all__ = [
    "RoadNetwork",
    "grid_road_network",
    "geometric_road_network",
    "congestion_weights",
    "rush_hour_scenario",
]


@dataclass
class RoadNetwork:
    """A road network: public topology plus vertex coordinates.

    ``graph`` carries the current (private) travel-time weights;
    ``positions`` maps each vertex to planar coordinates (public — part
    of the topology) used to place congestion hot-spots.
    """

    graph: WeightedGraph
    positions: Dict[Vertex, Tuple[float, float]]

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges


def grid_road_network(
    rows: int,
    cols: int,
    rng: Rng,
    block_minutes: float = 2.0,
    irregularity: float = 0.3,
) -> RoadNetwork:
    """A Manhattan-style grid road network.

    Every block takes ``block_minutes`` at free flow, perturbed by up to
    ``irregularity`` (relative) to model differing street qualities.
    """
    if block_minutes <= 0:
        raise GraphError(f"block_minutes must be positive, got {block_minutes}")
    if not 0.0 <= irregularity < 1.0:
        raise GraphError(
            f"irregularity must be in [0, 1), got {irregularity}"
        )
    graph = grid_graph(rows, cols)
    weights = {}
    for u, v, _ in graph.edges():
        factor = 1.0 + rng.uniform(-irregularity, irregularity)
        weights[(u, v)] = block_minutes * factor
    positions = {(r, c): (float(c), float(r)) for r in range(rows) for c in range(cols)}
    return RoadNetwork(graph=graph.with_weights(weights), positions=positions)


def geometric_road_network(
    n: int,
    rng: Rng,
    radius: float | None = None,
    speed: float = 1.0,
) -> RoadNetwork:
    """An inter-city style network from a random geometric graph.

    ``radius`` defaults to the standard connectivity threshold
    ``~sqrt(2 ln n / n)``; weights are travel times = length / speed.
    """
    if n < 2:
        raise GraphError(f"need at least 2 cities, got {n}")
    if speed <= 0:
        raise GraphError(f"speed must be positive, got {speed}")
    if radius is None:
        radius = math.sqrt(2.0 * math.log(n) / n)
    graph, positions = random_geometric_graph(n, radius, rng)
    weights = {}
    for u, v, w in graph.edges():
        weights[(u, v)] = w / speed
    return RoadNetwork(graph=graph.with_weights(weights), positions=positions)


def congestion_weights(
    network: RoadNetwork,
    rng: Rng,
    congestion_level: float = 0.5,
    cap: float | None = None,
) -> WeightedGraph:
    """Congested travel times: each edge's time is multiplied by
    ``1 + congestion_level * U`` with ``U`` uniform in [0, 1].

    With ``cap`` set, times are clipped to it — producing a valid input
    for the bounded-weight algorithms of Section 4.2 with ``M = cap``.
    """
    if congestion_level < 0:
        raise GraphError(
            f"congestion_level must be nonnegative, got {congestion_level}"
        )
    weights = {}
    for u, v, w in network.graph.edges():
        congested = w * (1.0 + congestion_level * rng.uniform())
        if cap is not None:
            congested = min(congested, cap)
        weights[(u, v)] = congested
    return network.graph.with_weights(weights)


def rush_hour_scenario(
    network: RoadNetwork,
    rng: Rng,
    center: Tuple[float, float],
    hot_radius: float,
    slowdown: float = 3.0,
) -> WeightedGraph:
    """Overlay a congestion hot-spot: edges with both endpoints within
    ``hot_radius`` of ``center`` are slowed by factor ``slowdown``
    (jittered ±10%).

    This is the private signal of the motivating example — the release
    mechanisms must provide useful routes without revealing *where* the
    hot-spot is beyond what the noise allows.
    """
    if hot_radius <= 0:
        raise GraphError(f"hot_radius must be positive, got {hot_radius}")
    if slowdown < 1.0:
        raise GraphError(f"slowdown must be >= 1, got {slowdown}")
    cx, cy = center
    weights = {}
    for u, v, w in network.graph.edges():
        ux, uy = network.positions[u]
        vx, vy = network.positions[v]
        inside = (
            math.hypot(ux - cx, uy - cy) <= hot_radius
            and math.hypot(vx - cx, vy - cy) <= hot_radius
        )
        if inside:
            jitter = 1.0 + rng.uniform(-0.1, 0.1)
            weights[(u, v)] = w * slowdown * jitter
        else:
            weights[(u, v)] = w
    return network.graph.with_weights(weights)
