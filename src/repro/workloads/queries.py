"""Query workloads: which vertex pairs to ask about.

The accuracy of Algorithm 3 depends on the *hop count* of the best
path, not on ``V`` (Theorem 5.5), so the benchmarks need pair workloads
stratified by hops — :func:`pairs_by_hop_bucket` provides them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..algorithms.traversal import bfs_hop_distances
from ..exceptions import GraphError
from ..graphs.graph import Vertex, WeightedGraph
from ..rng import Rng

__all__ = ["uniform_pairs", "fixed_source_pairs", "pairs_by_hop_bucket"]


def uniform_pairs(
    graph: WeightedGraph, count: int, rng: Rng
) -> List[Tuple[Vertex, Vertex]]:
    """``count`` uniformly random distinct-vertex pairs (with
    replacement across pairs)."""
    vertices = graph.vertex_list()
    if len(vertices) < 2:
        raise GraphError("need at least 2 vertices to form pairs")
    pairs = []
    for _ in range(count):
        s = rng.choice(vertices)
        t = rng.choice(vertices)
        while t == s:
            t = rng.choice(vertices)
        pairs.append((s, t))
    return pairs


def fixed_source_pairs(
    graph: WeightedGraph, source: Vertex, count: int | None = None, rng: Rng | None = None
) -> List[Tuple[Vertex, Vertex]]:
    """Pairs from one source to (a sample of) all other vertices —
    the single-source workload of Theorem 4.1."""
    others = [v for v in graph.vertices() if v != source]
    if count is not None:
        if rng is None:
            raise GraphError("sampling fixed-source pairs requires an rng")
        others = rng.sample(others, min(count, len(others)))
    return [(source, t) for t in others]


def pairs_by_hop_bucket(
    graph: WeightedGraph,
    rng: Rng,
    per_bucket: int,
    buckets: List[Tuple[int, int]],
) -> Dict[Tuple[int, int], List[Tuple[Vertex, Vertex]]]:
    """Sample ``per_bucket`` pairs whose *hop* distance falls in each
    ``[lo, hi]`` bucket.

    Buckets that the graph cannot populate (no pair at those hop
    distances) come back with fewer pairs, possibly empty — callers
    should check.  Uses BFS from a sample of sources, so it is
    approximate for very large graphs but exact per sampled source.
    """
    for lo, hi in buckets:
        if lo < 1 or hi < lo:
            raise GraphError(f"bad hop bucket [{lo}, {hi}]")
    vertices = graph.vertex_list()
    result: Dict[Tuple[int, int], List[Tuple[Vertex, Vertex]]] = {
        bucket: [] for bucket in buckets
    }
    # Sample sources in random order; fill buckets until satisfied.
    order = list(vertices)
    rng.shuffle(order)
    for source in order:
        if all(len(result[b]) >= per_bucket for b in buckets):
            break
        hops = bfs_hop_distances(graph, source)
        for bucket in buckets:
            lo, hi = bucket
            if len(result[bucket]) >= per_bucket:
                continue
            candidates = [
                t for t, h in hops.items() if lo <= h <= hi and t != source
            ]
            if candidates:
                result[bucket].append((source, rng.choice(candidates)))
    return result
