"""Workload generators: synthetic road networks, traffic weights, and
query distributions for the benchmark harness.

The paper motivates its model with navigation systems (Section 1.1) and
lists "actual road networks and traffic data" as future work; since no
public traffic dataset ships with this reproduction, these modules
provide the synthetic equivalents documented in DESIGN.md substitution
#1.
"""

from .traffic import (
    RoadNetwork,
    grid_road_network,
    geometric_road_network,
    congestion_weights,
    rush_hour_scenario,
)
from .queries import (
    uniform_pairs,
    fixed_source_pairs,
    pairs_by_hop_bucket,
)

__all__ = [
    "RoadNetwork",
    "grid_road_network",
    "geometric_road_network",
    "congestion_weights",
    "rush_hour_scenario",
    "uniform_pairs",
    "fixed_source_pairs",
    "pairs_by_hop_bucket",
]
