"""Declarative serving configuration: one document, one factory.

Before this module, standing up a private distance server meant
choosing between two unrelated classes
(:class:`~repro.serving.service.DistanceService` /
:class:`~repro.serving.sharding.ShardedDistanceService`) and threading
half a dozen keyword arguments through every consumer.  Now a
:class:`ServingConfig` captures the whole deployment — mechanism,
budget split, epoch policy, backend, shard plan knobs, cache bound —
as an immutable, JSON-round-trippable document, and
:func:`serve` turns ``(graph, config, rng)`` into a running server.

Both service classes implement the :class:`DistanceServer` protocol
(``query``, ``query_batch``, ``estimate``, ``estimate_batch``,
``refresh``, plus the ``mechanism`` / ``stats`` / ``ledger`` /
``epoch`` surface), so the CLI, the traffic replay, and the
benchmarks consume exactly one interface; whether the answers come
from one synopsis or from regional tenants stitched by a boundary
relay is a config field, not a code path.

The config is public data — mechanism names, budgets, seeds, size
knobs — so config documents can be shipped, versioned, and diffed
like any deployment manifest without privacy implications.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Protocol, Sequence, Tuple, runtime_checkable

from ..dp.params import PrivacyParams
from ..exceptions import GraphError, PrivacyError
from ..graphs.graph import Vertex, WeightedGraph
from ..mechanisms import get_mechanism
from ..rng import Rng
from ..telemetry import (
    NULL_TELEMETRY,
    AuditLog,
    EventLog,
    FlightRecorder,
    PhaseProfiler,
    Telemetry,
    get_telemetry,
)
from .batching import BatchReport
from .estimates import Estimate
from .ledger import BudgetLedger
from .service import DistanceService, ServiceStats
from .sharding import (
    DEFAULT_RELAY_FRACTION,
    ShardPlan,
    ShardedDistanceService,
)

__all__ = [
    "ServingConfig",
    "DistanceServer",
    "serve",
    "EPOCH_POLICIES",
    "CONFIG_FORMAT",
]

CONFIG_FORMAT = "repro-serving-config"
_CONFIG_VERSION = 1

#: How a server's budget behaves across :meth:`DistanceServer.refresh`:
#: ``"rotate"`` treats every refresh as a new data epoch (the private
#: ledger rotates and budgets reset — fresh weights are a new
#: database); ``"fixed"`` pins the ledger epoch, so refreshes re-spend
#: from the remaining epoch budget and fail closed when it runs out
#: (the contract for rebuilding against the *same* database).
EPOCH_POLICIES = ("rotate", "fixed")


@runtime_checkable
class DistanceServer(Protocol):
    """The common serving surface of every server :func:`serve` returns.

    Implemented by :class:`~repro.serving.service.DistanceService` and
    :class:`~repro.serving.sharding.ShardedDistanceService`; consumers
    written against this protocol never branch on sharding.
    """

    def query(self, source: Vertex, target: Vertex) -> float:
        """One released distance (post-processing; free)."""
        ...

    def query_batch(
        self, pairs: Sequence[Tuple[Vertex, Vertex]]
    ) -> BatchReport:
        """A deduplicated, cached batch of released distances."""
        ...

    def estimate(self, source: Vertex, target: Vertex) -> Estimate:
        """One rich estimate: ``query()``'s value + noise scale."""
        ...

    def estimate_batch(
        self, pairs: Sequence[Tuple[Vertex, Vertex]]
    ) -> Sequence[Estimate]:
        """A batch of rich estimates aligned with the input order."""
        ...

    def refresh(self, graph: WeightedGraph | None = None) -> None:
        """Start a new epoch (rebuild under the epoch policy)."""
        ...

    @property
    def mechanism(self) -> str:
        """The mechanism label backing the current epoch."""
        ...

    @property
    def stats(self) -> ServiceStats:
        """Shared serving counters (``num_queries``, ``cache_hits``,
        ...)."""
        ...

    @property
    def ledger(self) -> BudgetLedger:
        """The audited budget ledger."""
        ...

    @property
    def epoch(self) -> int:
        """The ledger epoch currently being served."""
        ...

    @property
    def epoch_budget(self) -> PrivacyParams:
        """The per-epoch privacy budget."""
        ...


@dataclass(frozen=True)
class ServingConfig:
    """A declarative description of one distance-serving deployment.

    Every field is public (mechanism names, budgets, seeds, size
    knobs), immutable, and JSON-serializable; ``ServingConfig`` is the
    single argument — besides the graph and the rng — that
    :func:`serve` needs.

    Attributes
    ----------
    mechanism:
        A registered mechanism name, or ``"auto"`` for the registry's
        predicted-noise-scale contest.
    eps, delta:
        The per-epoch ``(eps, delta)`` budget.  With ``shards >= 2``
        the budget splits ``(1 - relay_fraction)`` to every shard
        tenant and ``relay_fraction`` to the boundary relay (parallel
        composition over disjoint intra-shard edge sets).
    weight_bound:
        Public bound ``M`` on edge weights, if declared.
    epoch_policy:
        ``"rotate"`` (default) or ``"fixed"`` — see
        :data:`EPOCH_POLICIES`.
    backend:
        :mod:`repro.engine` backend for exact sweeps (``None`` =
        auto).
    shards:
        Regional tenants to partition into (1 = unsharded).
    relay_fraction:
        Boundary-relay share of the epoch budget (multi-shard only).
    partition_seed:
        Seed for the topology-only partitioner.
    cache_size:
        LRU bound on the answer cache (``None`` = unbounded).
    tenant:
        Ledger tenant name (``None`` = each service's default).
    telemetry:
        Whether the server records metrics and spans (default on).
        ``False`` forces the null bundle regardless of what
        :func:`serve` is passed — the config is the deployment's
        single source of truth.  Purely observational either way:
        answers are bit-identical on or off.
    audit_log:
        Path of a JSONL :class:`~repro.telemetry.AuditLog` the server
        appends budget spends, rotations, mechanism selections,
        refreshes, and batch serves to (``None`` = no audit trail).
        Independent of ``telemetry``: a deployment can audit with
        metrics off.  Observational like the rest of the bundle —
        answers are bit-identical with auditing on, off, or resumed.
    event_log:
        Path of a JSONL :class:`~repro.telemetry.EventLog` the server
        emits structured lifecycle events to — service start, synopsis
        builds, epoch/shard refreshes, batch serves — each carrying
        the enclosing span's ids (``None`` = no event log).
    profile:
        Attach a :class:`~repro.telemetry.PhaseProfiler` to the
        server's tracer, attributing wall/CPU time and allocation
        deltas to every span phase.  Requires ``telemetry`` on (a
        disabled bundle opens no spans to attribute).
    flight_recorder:
        Attach a :class:`~repro.telemetry.FlightRecorder` capturing
        exemplar records of slow queries into a bounded ring buffer.
    flight_threshold_seconds:
        Fixed slow-query threshold the recorder uses until its
        adaptive per-route p99 warms up (``None`` = adaptive only;
        implies ``flight_recorder`` when set).  All three knobs are
        observational like the rest of the bundle — answers are
        bit-identical on or off.
    """

    mechanism: str = "auto"
    eps: float = 1.0
    delta: float = 0.0
    weight_bound: float | None = None
    epoch_policy: str = "rotate"
    backend: str | None = None
    shards: int = 1
    relay_fraction: float = DEFAULT_RELAY_FRACTION
    partition_seed: int = 0
    cache_size: int | None = None
    tenant: str | None = None
    telemetry: bool = True
    audit_log: str | None = None
    event_log: str | None = None
    profile: bool = False
    flight_recorder: bool = False
    flight_threshold_seconds: float | None = None

    def __post_init__(self) -> None:
        PrivacyParams(self.eps, self.delta)  # validates the budget
        if self.mechanism != "auto":
            get_mechanism(self.mechanism)  # raises on unknown names
        if self.epoch_policy not in EPOCH_POLICIES:
            raise GraphError(
                f"unknown epoch policy {self.epoch_policy!r}; expected "
                f"one of {', '.join(EPOCH_POLICIES)}"
            )
        if self.shards < 1:
            raise GraphError(
                f"need at least 1 shard, got {self.shards}"
            )
        if not 0.0 < self.relay_fraction < 1.0:
            raise PrivacyError(
                f"relay_fraction must be in (0, 1), got "
                f"{self.relay_fraction}"
            )
        if self.cache_size is not None and self.cache_size < 1:
            raise GraphError(
                f"cache size must be at least 1, got {self.cache_size}"
            )
        if (
            self.flight_threshold_seconds is not None
            and self.flight_threshold_seconds <= 0.0
        ):
            raise GraphError(
                f"flight threshold must be positive, got "
                f"{self.flight_threshold_seconds}"
            )

    @property
    def budget(self) -> PrivacyParams:
        """The per-epoch budget as :class:`~repro.dp.params.PrivacyParams`."""
        return PrivacyParams(self.eps, self.delta)

    def with_overrides(self, **changes: object) -> "ServingConfig":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Serialization (all fields are public deployment data)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON config document."""
        document = {"format": CONFIG_FORMAT, "version": _CONFIG_VERSION}
        document.update(asdict(self))
        return json.dumps(document)

    @classmethod
    def from_json(cls, text: str) -> "ServingConfig":
        """Restore a config serialized by :meth:`to_json`.

        Missing fields take their defaults (forward compatibility for
        configs written before a knob existed); unknown fields are
        rejected (they are typos, not extensions).
        """
        document = json.loads(text)
        if document.get("format") != CONFIG_FORMAT:
            raise GraphError("not a repro-serving-config JSON document")
        if document.get("version") != _CONFIG_VERSION:
            raise GraphError(
                f"unsupported serving-config version "
                f"{document.get('version')!r}"
            )
        fields = {
            k: v
            for k, v in document.items()
            if k not in ("format", "version")
        }
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(fields) - known)
        if unknown:
            raise GraphError(
                f"unknown serving-config fields: {', '.join(unknown)}"
            )
        return cls(**fields)

    def __str__(self) -> str:
        label = self.mechanism
        if self.shards > 1:
            label = f"{label} x{self.shards} shards"
        return f"ServingConfig({label}, {self.budget})"


def serve(
    graph: WeightedGraph,
    config: ServingConfig,
    rng: Rng,
    ledger: BudgetLedger | None = None,
    plan: ShardPlan | None = None,
    telemetry: Telemetry | None = None,
) -> DistanceServer:
    """Stand up a distance server described by a :class:`ServingConfig`.

    The one construction path for every consumer (CLI, traffic
    replay, benchmarks): returns a
    :class:`~repro.serving.service.DistanceService` for
    ``config.shards == 1`` and a
    :class:`~repro.serving.sharding.ShardedDistanceService` otherwise
    — both satisfying :class:`DistanceServer`.  With the same graph,
    budget, and rng the returned server answers bit-for-bit
    identically to constructing the class directly, so configs are a
    pure convenience layer over the seeded reproducibility story.

    Parameters
    ----------
    graph:
        Public topology + the current epoch's private weights.
    config:
        The deployment description.
    rng:
        Noise source for the releases.
    ledger:
        Share a budget ledger with other products (a shared ledger is
        never rotated by the server, regardless of the epoch policy —
        its owner decides when the epoch turns).  Defaults to a
        private ledger under ``config.epoch_policy``.
    plan:
        Use an existing :class:`~repro.serving.sharding.ShardPlan`
        instead of partitioning (multi-shard configs only).
    telemetry:
        Inject a :class:`~repro.telemetry.Telemetry` bundle for the
        server to record into; ``None`` captures the process's
        current bundle.  ``config.telemetry = False`` wins — a
        deployment that declares itself uninstrumented stays that
        way.
    """
    mechanism = None if config.mechanism == "auto" else config.mechanism
    if not config.telemetry:
        telemetry = NULL_TELEMETRY
    elif telemetry is None:
        telemetry = get_telemetry()
    if config.audit_log is not None and not telemetry.audit.enabled:
        # Auditing is orthogonal to metrics: attach the log even to the
        # null bundle.  An already-attached audit (an injected bundle)
        # wins — the caller is aggregating several servers into one
        # trail.
        telemetry = telemetry.with_audit(AuditLog(config.audit_log))
    if config.event_log is not None and not telemetry.log.enabled:
        # Same aggregation rule as audit: an injected event log wins.
        telemetry = telemetry.with_log(EventLog(config.event_log))
    if config.profile and not telemetry.profiler.enabled:
        telemetry = telemetry.with_profiler(PhaseProfiler())
    if (
        config.flight_recorder
        or config.flight_threshold_seconds is not None
    ) and not telemetry.flight.enabled:
        telemetry = telemetry.with_flight(
            FlightRecorder(
                threshold_seconds=config.flight_threshold_seconds
            )
        )
    if ledger is None and config.epoch_policy == "fixed":
        # A "fixed" policy pins the epoch: the server gets a ledger it
        # does not own, so refreshes re-spend from the remaining epoch
        # budget (failing closed) instead of rotating.
        ledger = BudgetLedger(config.budget)
    common = dict(
        weight_bound=config.weight_bound,
        mechanism=mechanism,
        ledger=ledger,
        backend=config.backend,
        cache_size=config.cache_size,
        telemetry=telemetry,
    )
    if config.tenant is not None:
        common["tenant"] = config.tenant
    if config.shards > 1 or plan is not None:
        return ShardedDistanceService(
            graph,
            config.budget,
            rng,
            # With an explicit plan a multi-shard config still passes
            # its count through, so a config/plan disagreement raises
            # instead of silently trusting the plan; the default
            # shards=1 means "whatever the plan says".
            shards=config.shards if config.shards > 1 else None,
            plan=plan,
            partition_seed=config.partition_seed,
            relay_fraction=config.relay_fraction,
            **common,
        )
    return DistanceService(graph, config.budget, rng, **common)
