"""The query-serving façade: pay for privacy once, answer forever.

:class:`DistanceService` is the paper's Section 1.1 navigation
provider as a component: it holds the public topology plus the current
epoch's private weights, picks the strongest release mechanism the
graph admits from the :mod:`repro.mechanisms` registry, builds one
synopsis per epoch under a ledgered budget, and then serves unlimited
point and batch distance queries from that synopsis — pure
post-processing, zero further privacy cost.

Mechanism choice is the registry's predicted-noise-scale contest
(:func:`repro.mechanisms.auto_select_mechanism`), which mirrors the
paper's structure:

* tree topology → Algorithm 1 + Theorem 4.2 (error ``O(log^1.5 V)``),
* declared weight bound ``M`` → Algorithm 2's covering release
  (error ``O~(sqrt(V M))`` approx / ``O((VM)^{2/3})`` pure), upgraded
  to the hub-over-covering release at road-network scale,
* otherwise → a contest between the Section 4 intro all-pairs baseline
  (basic composition for pure budgets, advanced when ``delta > 0``)
  and the improved hub-set release of :mod:`repro.apsp`, which wins
  once ``V`` is large enough for its ``~V^{3/2}``-entry accounting to
  beat the baseline's ``V^2``.

Beyond bare ``query()`` floats, the :meth:`DistanceService.estimate`
path returns :class:`~repro.serving.estimates.Estimate` objects
carrying the answer's effective noise scale and a Laplace-CDF
confidence interval; ``query()`` returns exactly
``estimate().value``, so the rich path costs nothing in
reproducibility.

Epoch rotation (:meth:`DistanceService.refresh`) swaps in a fresh
weight function — a new private database — rotates the ledger, clears
the answer cache, and rebuilds the synopsis.
"""

from __future__ import annotations

import time
from typing import Dict, List, MutableMapping, Sequence, Tuple

from ..dp.params import PrivacyParams
from ..exceptions import PrivacyError
from ..graphs.graph import Vertex, WeightedGraph
from ..mechanisms import (
    HUB_BOUNDED_MIN_VERTICES,
    HUB_MIN_VERTICES,
    HUB_SELECTION_MARGIN,
    MechanismParams,
    auto_select_mechanism,
    get_mechanism,
    standalone_mechanisms,
)
from ..rng import Rng
from ..telemetry import Telemetry, get_telemetry, use_telemetry
from ..telemetry.registry import Counter
from .batching import BatchPlanner, BatchReport, BoundedCache
from .estimates import Estimate
from .ledger import BudgetLedger
from .synopsis import DistanceSynopsis, canonical_pair

__all__ = [
    "DistanceService",
    "ServiceStats",
    "select_mechanism",
    "MECHANISMS",
    "HUB_MIN_VERTICES",
    "HUB_SELECTION_MARGIN",
    "HUB_BOUNDED_MIN_VERTICES",
]

#: Mechanisms a service can be forced to (graph + budget suffice) —
#: the CLI's ``--mechanism`` choices.  Derived from the registry; kept
#: under its historical name for compatibility.
MECHANISMS = standalone_mechanisms()


def select_mechanism(
    graph: WeightedGraph,
    budget: PrivacyParams,
    weight_bound: float | None = None,
) -> str:
    """Pick the strongest release family the graph admits.

    .. deprecated::
        Thin shim over
        :func:`repro.mechanisms.auto_select_mechanism`, kept for
        callers of the pre-registry API; the registry contest makes
        seeded-identical choices.  New code should call the registry
        directly.
    """
    return auto_select_mechanism(graph, budget, weight_bound)


class ServiceStats:
    """Running counters for one service instance.

    Shared verbatim by :class:`DistanceService` and
    :class:`~repro.serving.sharding.ShardedDistanceService` (the
    :class:`~repro.serving.config.DistanceServer` contract), so
    consumers never special-case sharded services.

    The counters are single-sourced in the service's telemetry
    registry (``serving.stats.*`` with ``tenant``/``instance``
    labels); this class is the compatibility *view* over them — the
    attribute names, :attr:`num_queries`, and :meth:`as_dict` are
    byte-for-byte what the pre-telemetry dataclass exposed.  With
    telemetry disabled the counters are private unregistered
    instruments, so counting (and ``as_dict``) works identically
    either way.
    """

    _FIELDS = (
        "point_queries",
        "batch_queries",
        "batches",
        "cache_hits",
        "epochs_built",
        "shard_refreshes",
    )

    __slots__ = ("_counters", "_cache_misses")

    def __init__(
        self,
        telemetry: Telemetry | None = None,
        tenant: str = "service",
    ) -> None:
        registry = telemetry.registry if telemetry is not None else None
        if registry is None or not registry.enabled:
            self._counters = {
                name: Counter(f"serving.stats.{name}")
                for name in self._FIELDS
            }
            self._cache_misses = Counter("serving.stats.cache_misses")
        else:
            labels = registry.instance_labels(tenant=tenant)
            self._counters = {
                name: registry.counter(
                    f"serving.stats.{name}", **labels
                )
                for name in self._FIELDS
            }
            self._cache_misses = registry.counter(
                "serving.stats.cache_misses", **labels
            )

    # -- the compatibility read surface --------------------------------

    @property
    def point_queries(self) -> int:
        """Point queries served."""
        return self._counters["point_queries"].value

    @property
    def batch_queries(self) -> int:
        """Queries served through batches."""
        return self._counters["batch_queries"].value

    @property
    def batches(self) -> int:
        """Batches served."""
        return self._counters["batches"].value

    @property
    def cache_hits(self) -> int:
        """Queries answered from the answer cache."""
        return self._counters["cache_hits"].value

    @property
    def epochs_built(self) -> int:
        """Full synopsis builds (construction + refreshes)."""
        return self._counters["epochs_built"].value

    @property
    def shard_refreshes(self) -> int:
        """Regional rebuilds (sharded serving only; full epoch
        rebuilds count under :attr:`epochs_built`)."""
        return self._counters["shard_refreshes"].value

    @property
    def num_queries(self) -> int:
        """Total queries served (point + batch) — the shared headline
        counter of the ``DistanceServer`` surface."""
        return self.point_queries + self.batch_queries

    def as_dict(self) -> Dict[str, int]:
        """A JSON-safe snapshot with the shared counter names."""
        return {
            "num_queries": self.num_queries,
            "point_queries": self.point_queries,
            "batch_queries": self.batch_queries,
            "batches": self.batches,
            "cache_hits": self.cache_hits,
            "epochs_built": self.epochs_built,
            "shard_refreshes": self.shard_refreshes,
        }

    # -- the recording surface (services only) -------------------------

    def record_point_query(self, cache_hit: bool) -> None:
        """One point query; hit/miss routed to the right counters.

        Misses land in a registry-only ``serving.stats.cache_misses``
        counter — not part of :meth:`as_dict`, which predates it.
        """
        self._counters["point_queries"].inc()
        if cache_hit:
            self._counters["cache_hits"].inc()
        else:
            self._cache_misses.inc()

    def record_batch(self, report: "BatchReport") -> None:
        """One served batch's counter deltas."""
        self._counters["batches"].inc()
        self._counters["batch_queries"].inc(report.num_queries)
        self._counters["cache_hits"].inc(report.cache_hits)
        # Distinct pairs that had to hit the synopsis (in-batch
        # duplicates are neither hits nor misses).
        self._cache_misses.inc(report.num_unique - report.cache_hits)

    def record_epoch_built(self) -> None:
        """One full synopsis build."""
        self._counters["epochs_built"].inc()

    def record_shard_refresh(self) -> None:
        """One regional rebuild."""
        self._counters["shard_refreshes"].inc()

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{k}={v}" for k, v in self.as_dict().items()
        )
        return f"ServiceStats({inner})"


class DistanceService:
    """A private distance query-serving engine.

    Parameters
    ----------
    graph:
        Public topology + the current epoch's private weights.
    epoch_budget:
        The ``(eps, delta)`` guarantee promised per epoch (a bare
        float is taken as pure eps).  The whole budget is spent on one
        synopsis per epoch.
    rng:
        Noise source for the releases.
    weight_bound:
        Public bound ``M`` on edge weights, if the provider has one
        (e.g. capped travel times); enables the Section 4.2 mechanism
        on non-tree graphs.
    mechanism:
        Force a registered mechanism by name (see
        :func:`repro.mechanisms.available_mechanisms`; only standalone
        mechanisms qualify) instead of auto-selecting.
    ledger:
        Share a :class:`~repro.serving.ledger.BudgetLedger` with other
        products; defaults to a private ledger with ``epoch_budget``
        per epoch.  The synopsis is only built after the ledger accepts
        the spend, so an over-budget service fails closed at
        construction.
    tenant:
        The ledger tenant name this service spends under.
    backend:
        The :mod:`repro.engine` backend for the exact-recomputation
        half of the paper's releases (``"python"``, ``"numpy"``, or
        ``None``/``"auto"`` for the size heuristic).  The hub
        mechanisms of :mod:`repro.apsp` are engine-native — built
        directly on the CSR multi-source kernels — so they do not
        consult this knob.
    cache_size:
        Bound the cross-batch answer cache to this many pairs (LRU
        eviction); ``None`` (the default) keeps every answered pair.
        Purely a memory knob: evicted answers are recomputed
        identically from the immutable synopsis.
    telemetry:
        The :class:`~repro.telemetry.Telemetry` bundle the service
        records into (query/batch latency histograms, the
        ``serving.stats.*`` counters, build spans, budget gauges).
        ``None`` (the default) captures the process's current bundle
        (:func:`~repro.telemetry.get_telemetry`); pass
        :data:`~repro.telemetry.NULL_TELEMETRY` to disable.
        Instrumentation never touches the rng — answers are
        bit-identical whatever bundle is in force.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        epoch_budget: PrivacyParams | float,
        rng: Rng,
        weight_bound: float | None = None,
        mechanism: str | None = None,
        ledger: BudgetLedger | None = None,
        tenant: str = "distance-service",
        backend: str | None = None,
        cache_size: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if isinstance(epoch_budget, (int, float)):
            epoch_budget = PrivacyParams(float(epoch_budget))
        self._budget = epoch_budget
        self._rng = rng
        self._weight_bound = weight_bound
        self._forced_mechanism = mechanism
        if mechanism is not None:
            # Raises MechanismError (a PrivacyError) on unknown names.
            if not get_mechanism(mechanism).standalone:
                raise PrivacyError(
                    f"mechanism {mechanism!r} needs extra inputs (an "
                    "explicit workload or site subset) and cannot back "
                    "a standalone service"
                )
        self._owns_ledger = ledger is None
        self._ledger = ledger if ledger is not None else BudgetLedger(
            epoch_budget
        )
        self._tenant = tenant
        self._backend = backend
        self._telemetry = (
            telemetry if telemetry is not None else get_telemetry()
        )
        # Per-query spans and flight-recorder checks only run when
        # someone is actually watching; the default point-query path
        # stays the two-clock-read fast path.
        self._observed = (
            self._telemetry.flight.enabled
            or self._telemetry.profiler.enabled
        )
        self._stats = ServiceStats(
            telemetry=self._telemetry, tenant=tenant
        )
        self._cache: MutableMapping[Tuple[Vertex, Vertex], float] = (
            {} if cache_size is None else BoundedCache(cache_size)
        )
        self._graph = graph
        self._mechanism = ""
        self._synopsis: DistanceSynopsis | None = None
        self._build_synopsis()
        self._telemetry.log.emit(
            "service.start",
            tenant=self._tenant,
            epoch=self._ledger.epoch,
            mechanism=self._mechanism,
            backend=self._backend,
            shards=1,
        )

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------

    def _build_synopsis(self) -> None:
        # Scope the service's bundle over the build so the layers it
        # does not call directly — the ledger spend, the mechanism
        # contest, a hub build inside mech.build — record here too.
        start = time.perf_counter()
        with use_telemetry(self._telemetry), self._telemetry.span(
            "synopsis.build", tenant=self._tenant
        ) as span:
            name = self._forced_mechanism or auto_select_mechanism(
                self._graph, self._budget, self._weight_bound
            )
            span.set_attribute("mechanism", name)
            mech = get_mechanism(name)
            params = MechanismParams(
                budget=self._budget, weight_bound=self._weight_bound
            )
            # Validate mechanism preconditions before touching the ledger,
            # so a config or precondition error never burns epoch budget.
            # The checks are public (topology, connectivity, the declared
            # bound's pre-noise precondition).
            mech.validate(self._graph, params)
            # Spend first, release second: if the ledger refuses, no noise
            # is ever drawn and nothing about the weights leaks.
            self._ledger.spend(
                self._budget,
                tenant=self._tenant,
                label=f"epoch {self._ledger.epoch} {name} synopsis",
            )
            self._synopsis = mech.build(
                self._graph, params, self._rng, backend=self._backend
            )
            self._telemetry.audit.record(
                "synopsis.build",
                epoch=self._ledger.epoch,
                tenant=self._tenant,
                mechanism=name,
                forced=self._forced_mechanism is not None,
            )
            self._telemetry.log.emit(
                "synopsis.build",
                tenant=self._tenant,
                epoch=self._ledger.epoch,
                mechanism=name,
            )
        self._mechanism = name
        self._telemetry.registry.histogram(
            "build.latency", phase="synopsis", mechanism=name
        ).observe(time.perf_counter() - start)
        self._stats.record_epoch_built()
        self._bind_metrics()

    def _bind_metrics(self) -> None:
        """Re-resolve the hot-path latency histograms.

        Called after every build so the ``mechanism`` label tracks the
        current epoch's selection without a registry lookup per query.
        """
        registry = self._telemetry.registry
        self._query_latency = registry.histogram(
            "serving.query.latency",
            service="distance",
            mechanism=self._mechanism,
        )
        self._batch_latency = registry.histogram(
            "serving.batch.latency",
            service="distance",
            mechanism=self._mechanism,
        )

    def refresh(self, graph: WeightedGraph | None = None) -> None:
        """Start a new epoch: swap in fresh weights (same public
        topology unless a new graph is given), clear the answer cache,
        and rebuild the synopsis.

        A privately owned ledger is rotated — the new weights are a
        new database, so the budget resets.  A *shared* ledger is NOT
        rotated: other tenants may still be serving releases of the
        current epoch's data, and rotating under them would let their
        budgets reset against an unchanged database.  With a shared
        ledger the rebuild spends from the remaining epoch budget
        (failing closed if exhausted); the ledger's owner decides when
        the epoch actually turns via
        :meth:`~repro.serving.ledger.BudgetLedger.rotate`.
        """
        with use_telemetry(self._telemetry), self._telemetry.span(
            "epoch.refresh", tenant=self._tenant
        ):
            if self._owns_ledger:
                self._ledger.rotate()
            if graph is not None:
                self._graph = graph
            self._cache.clear()
            # Drop the old synopsis first: if the rebuild fails partway,
            # the service must refuse to serve rather than silently answer
            # the new epoch from the previous epoch's release.
            self._synopsis = None
            self._build_synopsis()
            self._telemetry.audit.record(
                "epoch.refresh",
                epoch=self._ledger.epoch,
                tenant=self._tenant,
                mechanism=self._mechanism,
                rotated=self._owns_ledger,
            )
            self._telemetry.log.emit(
                "epoch.refresh",
                tenant=self._tenant,
                epoch=self._ledger.epoch,
                mechanism=self._mechanism,
                rotated=self._owns_ledger,
            )

    # ------------------------------------------------------------------
    # Query serving (post-processing only)
    # ------------------------------------------------------------------

    def _require_synopsis(self) -> DistanceSynopsis:
        if self._synopsis is None:
            raise PrivacyError(
                "no synopsis for the current epoch (the last refresh "
                "failed); call refresh() again before querying"
            )
        return self._synopsis

    def query(self, source: Vertex, target: Vertex) -> float:
        """Answer one distance query from the epoch synopsis."""
        synopsis = self._require_synopsis()
        if self._observed:
            return self._query_observed(synopsis, source, target)
        start = time.perf_counter()
        key = canonical_pair(source, target)
        hit = key in self._cache
        if hit:
            value = self._cache[key]
        else:
            value = synopsis.distance(source, target)
            self._cache[key] = value
        self._query_latency.observe(time.perf_counter() - start)
        self._stats.record_point_query(hit)
        return value

    def _query_observed(
        self, synopsis: DistanceSynopsis, source: Vertex, target: Vertex
    ) -> float:
        """The point-query path when a profiler or flight recorder is
        live: same lookups in the same order (answers bit-identical),
        wrapped in a ``query.point`` span and offered to the flight
        recorder afterwards."""
        start = time.perf_counter()
        with self._telemetry.span(
            "query.point",
            tenant=self._tenant,
            mechanism=self._mechanism,
        ) as span:
            key = canonical_pair(source, target)
            hit = key in self._cache
            if hit:
                value = self._cache[key]
            else:
                value = synopsis.distance(source, target)
                self._cache[key] = value
            span.set_attribute("cache_hit", hit)
        elapsed = time.perf_counter() - start
        self._query_latency.observe(elapsed)
        self._stats.record_point_query(hit)
        self._telemetry.flight.consider(
            elapsed,
            pair=(source, target),
            route="point",
            mechanism=self._mechanism,
            epoch=self._ledger.epoch,
            tenant=self._tenant,
            span=span,
            cache_hit=hit,
        )
        return value

    def query_batch(
        self, pairs: Sequence[Tuple[Vertex, Vertex]]
    ) -> BatchReport:
        """Answer a batch of queries; see
        :class:`~repro.serving.batching.BatchPlanner`."""
        planner = BatchPlanner(
            self._require_synopsis(),
            cache=self._cache,
            telemetry=self._telemetry,
            labels={"service": "distance", "mechanism": self._mechanism},
        )
        report = planner.run(pairs)
        self._batch_latency.observe(report.elapsed_seconds)
        self._stats.record_batch(report)
        return report

    def estimate(self, source: Vertex, target: Vertex) -> Estimate:
        """One distance query as a rich
        :class:`~repro.serving.estimates.Estimate` — the ``query()``
        value (bit-identical, shared cache and counters) plus the
        answer's effective noise scale, mechanism, and epoch."""
        value = self.query(source, target)
        return Estimate(
            value=value,
            noise_scale=self._require_synopsis().noise_scale_for(
                source, target
            ),
            mechanism=self._mechanism,
            epoch=self._ledger.epoch,
        )

    def estimate_batch(  # privlint: ignore[PL1] serves values post-processed from the budget-accounted noised synopsis
        self, pairs: Sequence[Tuple[Vertex, Vertex]]
    ) -> List[Estimate]:
        """A batch of rich estimates, aligned with the input order.

        Values come from :meth:`query_batch` (same dedupe, cache, and
        counters); scales are free post-processing of the synopsis's
        released-table structure.
        """
        report = self.query_batch(pairs)
        synopsis = self._require_synopsis()
        mechanism, epoch = self._mechanism, self._ledger.epoch
        return [
            Estimate(
                value=value,
                noise_scale=synopsis.noise_scale_for(s, t),
                mechanism=mechanism,
                epoch=epoch,
            )
            for (s, t), value in zip(pairs, report.answers)
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def mechanism(self) -> str:
        """The mechanism backing the current synopsis."""
        return self._mechanism

    @property
    def backend(self) -> str | None:
        """The engine backend spec the service builds releases with
        (``None`` means auto-selection)."""
        return self._backend

    @property
    def synopsis(self) -> DistanceSynopsis:
        """The current epoch's synopsis (immutable; shippable)."""
        return self._require_synopsis()

    @property
    def ledger(self) -> BudgetLedger:
        """The budget ledger this service spends against."""
        return self._ledger

    @property
    def epoch(self) -> int:
        """The ledger epoch currently being served."""
        return self._ledger.epoch

    @property
    def epoch_budget(self) -> PrivacyParams:
        """The per-epoch privacy budget."""
        return self._budget

    @property
    def stats(self) -> ServiceStats:
        """Running serving counters."""
        return self._stats

    @property
    def telemetry(self) -> Telemetry:
        """The telemetry bundle this service records into."""
        return self._telemetry

    def __repr__(self) -> str:
        return (
            f"DistanceService(mechanism={self._mechanism!r}, "
            f"budget={self._budget}, epoch={self._ledger.epoch}, "
            f"queries={self._stats.num_queries})"
        )
