"""The query-serving façade: pay for privacy once, answer forever.

:class:`DistanceService` is the paper's Section 1.1 navigation
provider as a component: it holds the public topology plus the current
epoch's private weights, picks the strongest release mechanism the
graph admits from the :mod:`repro.mechanisms` registry, builds one
synopsis per epoch under a ledgered budget, and then serves unlimited
point and batch distance queries from that synopsis — pure
post-processing, zero further privacy cost.

Mechanism choice is the registry's predicted-noise-scale contest
(:func:`repro.mechanisms.auto_select_mechanism`), which mirrors the
paper's structure:

* tree topology → Algorithm 1 + Theorem 4.2 (error ``O(log^1.5 V)``),
* declared weight bound ``M`` → Algorithm 2's covering release
  (error ``O~(sqrt(V M))`` approx / ``O((VM)^{2/3})`` pure), upgraded
  to the hub-over-covering release at road-network scale,
* otherwise → a contest between the Section 4 intro all-pairs baseline
  (basic composition for pure budgets, advanced when ``delta > 0``)
  and the improved hub-set release of :mod:`repro.apsp`, which wins
  once ``V`` is large enough for its ``~V^{3/2}``-entry accounting to
  beat the baseline's ``V^2``.

Beyond bare ``query()`` floats, the :meth:`DistanceService.estimate`
path returns :class:`~repro.serving.estimates.Estimate` objects
carrying the answer's effective noise scale and a Laplace-CDF
confidence interval; ``query()`` returns exactly
``estimate().value``, so the rich path costs nothing in
reproducibility.

Epoch rotation (:meth:`DistanceService.refresh`) swaps in a fresh
weight function — a new private database — rotates the ledger, clears
the answer cache, and rebuilds the synopsis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, MutableMapping, Sequence, Tuple

from ..dp.params import PrivacyParams
from ..exceptions import PrivacyError
from ..graphs.graph import Vertex, WeightedGraph
from ..mechanisms import (
    HUB_BOUNDED_MIN_VERTICES,
    HUB_MIN_VERTICES,
    HUB_SELECTION_MARGIN,
    MechanismParams,
    auto_select_mechanism,
    get_mechanism,
    standalone_mechanisms,
)
from ..rng import Rng
from .batching import BatchPlanner, BatchReport, BoundedCache
from .estimates import Estimate
from .ledger import BudgetLedger
from .synopsis import DistanceSynopsis, canonical_pair

__all__ = [
    "DistanceService",
    "ServiceStats",
    "select_mechanism",
    "MECHANISMS",
    "HUB_MIN_VERTICES",
    "HUB_SELECTION_MARGIN",
    "HUB_BOUNDED_MIN_VERTICES",
]

#: Mechanisms a service can be forced to (graph + budget suffice) —
#: the CLI's ``--mechanism`` choices.  Derived from the registry; kept
#: under its historical name for compatibility.
MECHANISMS = standalone_mechanisms()


def select_mechanism(
    graph: WeightedGraph,
    budget: PrivacyParams,
    weight_bound: float | None = None,
) -> str:
    """Pick the strongest release family the graph admits.

    .. deprecated::
        Thin shim over
        :func:`repro.mechanisms.auto_select_mechanism`, kept for
        callers of the pre-registry API; the registry contest makes
        seeded-identical choices.  New code should call the registry
        directly.
    """
    return auto_select_mechanism(graph, budget, weight_bound)


@dataclass
class ServiceStats:
    """Running counters for one service instance.

    Shared verbatim by :class:`DistanceService` and
    :class:`~repro.serving.sharding.ShardedDistanceService` (the
    :class:`~repro.serving.config.DistanceServer` contract), so
    consumers never special-case sharded services.
    """

    epochs_built: int = 0
    point_queries: int = 0
    batch_queries: int = 0
    batches: int = 0
    cache_hits: int = 0
    #: Regional rebuilds (sharded serving only; full epoch rebuilds
    #: count under ``epochs_built``).
    shard_refreshes: int = 0

    @property
    def num_queries(self) -> int:
        """Total queries served (point + batch) — the shared headline
        counter of the ``DistanceServer`` surface."""
        return self.point_queries + self.batch_queries

    def as_dict(self) -> Dict[str, int]:
        """A JSON-safe snapshot with the shared counter names."""
        return {
            "num_queries": self.num_queries,
            "point_queries": self.point_queries,
            "batch_queries": self.batch_queries,
            "batches": self.batches,
            "cache_hits": self.cache_hits,
            "epochs_built": self.epochs_built,
            "shard_refreshes": self.shard_refreshes,
        }


class DistanceService:
    """A private distance query-serving engine.

    Parameters
    ----------
    graph:
        Public topology + the current epoch's private weights.
    epoch_budget:
        The ``(eps, delta)`` guarantee promised per epoch (a bare
        float is taken as pure eps).  The whole budget is spent on one
        synopsis per epoch.
    rng:
        Noise source for the releases.
    weight_bound:
        Public bound ``M`` on edge weights, if the provider has one
        (e.g. capped travel times); enables the Section 4.2 mechanism
        on non-tree graphs.
    mechanism:
        Force a registered mechanism by name (see
        :func:`repro.mechanisms.available_mechanisms`; only standalone
        mechanisms qualify) instead of auto-selecting.
    ledger:
        Share a :class:`~repro.serving.ledger.BudgetLedger` with other
        products; defaults to a private ledger with ``epoch_budget``
        per epoch.  The synopsis is only built after the ledger accepts
        the spend, so an over-budget service fails closed at
        construction.
    tenant:
        The ledger tenant name this service spends under.
    backend:
        The :mod:`repro.engine` backend for the exact-recomputation
        half of the paper's releases (``"python"``, ``"numpy"``, or
        ``None``/``"auto"`` for the size heuristic).  The hub
        mechanisms of :mod:`repro.apsp` are engine-native — built
        directly on the CSR multi-source kernels — so they do not
        consult this knob.
    cache_size:
        Bound the cross-batch answer cache to this many pairs (LRU
        eviction); ``None`` (the default) keeps every answered pair.
        Purely a memory knob: evicted answers are recomputed
        identically from the immutable synopsis.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        epoch_budget: PrivacyParams | float,
        rng: Rng,
        weight_bound: float | None = None,
        mechanism: str | None = None,
        ledger: BudgetLedger | None = None,
        tenant: str = "distance-service",
        backend: str | None = None,
        cache_size: int | None = None,
    ) -> None:
        if isinstance(epoch_budget, (int, float)):
            epoch_budget = PrivacyParams(float(epoch_budget))
        self._budget = epoch_budget
        self._rng = rng
        self._weight_bound = weight_bound
        self._forced_mechanism = mechanism
        if mechanism is not None:
            # Raises MechanismError (a PrivacyError) on unknown names.
            if not get_mechanism(mechanism).standalone:
                raise PrivacyError(
                    f"mechanism {mechanism!r} needs extra inputs (an "
                    "explicit workload or site subset) and cannot back "
                    "a standalone service"
                )
        self._owns_ledger = ledger is None
        self._ledger = ledger if ledger is not None else BudgetLedger(
            epoch_budget
        )
        self._tenant = tenant
        self._backend = backend
        self._stats = ServiceStats()
        self._cache: MutableMapping[Tuple[Vertex, Vertex], float] = (
            {} if cache_size is None else BoundedCache(cache_size)
        )
        self._graph = graph
        self._mechanism = ""
        self._synopsis: DistanceSynopsis | None = None
        self._build_synopsis()

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------

    def _build_synopsis(self) -> None:
        name = self._forced_mechanism or auto_select_mechanism(
            self._graph, self._budget, self._weight_bound
        )
        mech = get_mechanism(name)
        params = MechanismParams(
            budget=self._budget, weight_bound=self._weight_bound
        )
        # Validate mechanism preconditions before touching the ledger,
        # so a config or precondition error never burns epoch budget.
        # The checks are public (topology, connectivity, the declared
        # bound's pre-noise precondition).
        mech.validate(self._graph, params)
        # Spend first, release second: if the ledger refuses, no noise
        # is ever drawn and nothing about the weights leaks.
        self._ledger.spend(
            self._budget,
            tenant=self._tenant,
            label=f"epoch {self._ledger.epoch} {name} synopsis",
        )
        self._synopsis = mech.build(
            self._graph, params, self._rng, backend=self._backend
        )
        self._mechanism = name
        self._stats.epochs_built += 1

    def refresh(self, graph: WeightedGraph | None = None) -> None:
        """Start a new epoch: swap in fresh weights (same public
        topology unless a new graph is given), clear the answer cache,
        and rebuild the synopsis.

        A privately owned ledger is rotated — the new weights are a
        new database, so the budget resets.  A *shared* ledger is NOT
        rotated: other tenants may still be serving releases of the
        current epoch's data, and rotating under them would let their
        budgets reset against an unchanged database.  With a shared
        ledger the rebuild spends from the remaining epoch budget
        (failing closed if exhausted); the ledger's owner decides when
        the epoch actually turns via
        :meth:`~repro.serving.ledger.BudgetLedger.rotate`.
        """
        if self._owns_ledger:
            self._ledger.rotate()
        if graph is not None:
            self._graph = graph
        self._cache.clear()
        # Drop the old synopsis first: if the rebuild fails partway,
        # the service must refuse to serve rather than silently answer
        # the new epoch from the previous epoch's release.
        self._synopsis = None
        self._build_synopsis()

    # ------------------------------------------------------------------
    # Query serving (post-processing only)
    # ------------------------------------------------------------------

    def _require_synopsis(self) -> DistanceSynopsis:
        if self._synopsis is None:
            raise PrivacyError(
                "no synopsis for the current epoch (the last refresh "
                "failed); call refresh() again before querying"
            )
        return self._synopsis

    def query(self, source: Vertex, target: Vertex) -> float:
        """Answer one distance query from the epoch synopsis."""
        synopsis = self._require_synopsis()
        self._stats.point_queries += 1
        key = canonical_pair(source, target)
        if key in self._cache:
            self._stats.cache_hits += 1
            return self._cache[key]
        value = synopsis.distance(source, target)
        self._cache[key] = value
        return value

    def query_batch(
        self, pairs: Sequence[Tuple[Vertex, Vertex]]
    ) -> BatchReport:
        """Answer a batch of queries; see
        :class:`~repro.serving.batching.BatchPlanner`."""
        planner = BatchPlanner(self._require_synopsis(), cache=self._cache)
        report = planner.run(pairs)
        self._stats.batches += 1
        self._stats.batch_queries += report.num_queries
        self._stats.cache_hits += report.cache_hits
        return report

    def estimate(self, source: Vertex, target: Vertex) -> Estimate:
        """One distance query as a rich
        :class:`~repro.serving.estimates.Estimate` — the ``query()``
        value (bit-identical, shared cache and counters) plus the
        answer's effective noise scale, mechanism, and epoch."""
        value = self.query(source, target)
        return Estimate(
            value=value,
            noise_scale=self._require_synopsis().noise_scale_for(
                source, target
            ),
            mechanism=self._mechanism,
            epoch=self._ledger.epoch,
        )

    def estimate_batch(
        self, pairs: Sequence[Tuple[Vertex, Vertex]]
    ) -> List[Estimate]:
        """A batch of rich estimates, aligned with the input order.

        Values come from :meth:`query_batch` (same dedupe, cache, and
        counters); scales are free post-processing of the synopsis's
        released-table structure.
        """
        report = self.query_batch(pairs)
        synopsis = self._require_synopsis()
        mechanism, epoch = self._mechanism, self._ledger.epoch
        return [
            Estimate(
                value=value,
                noise_scale=synopsis.noise_scale_for(s, t),
                mechanism=mechanism,
                epoch=epoch,
            )
            for (s, t), value in zip(pairs, report.answers)
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def mechanism(self) -> str:
        """The mechanism backing the current synopsis."""
        return self._mechanism

    @property
    def backend(self) -> str | None:
        """The engine backend spec the service builds releases with
        (``None`` means auto-selection)."""
        return self._backend

    @property
    def synopsis(self) -> DistanceSynopsis:
        """The current epoch's synopsis (immutable; shippable)."""
        return self._require_synopsis()

    @property
    def ledger(self) -> BudgetLedger:
        """The budget ledger this service spends against."""
        return self._ledger

    @property
    def epoch(self) -> int:
        """The ledger epoch currently being served."""
        return self._ledger.epoch

    @property
    def epoch_budget(self) -> PrivacyParams:
        """The per-epoch privacy budget."""
        return self._budget

    @property
    def stats(self) -> ServiceStats:
        """Running serving counters."""
        return self._stats

    def __repr__(self) -> str:
        return (
            f"DistanceService(mechanism={self._mechanism!r}, "
            f"budget={self._budget}, epoch={self._ledger.epoch}, "
            f"queries={self._stats.num_queries})"
        )
