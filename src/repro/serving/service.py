"""The query-serving façade: pay for privacy once, answer forever.

:class:`DistanceService` is the paper's Section 1.1 navigation
provider as a component: it holds the public topology plus the current
epoch's private weights, picks the strongest release mechanism the
graph admits, builds one synopsis per epoch under a ledgered budget,
and then serves unlimited point and batch distance queries from that
synopsis — pure post-processing, zero further privacy cost.

Mechanism auto-selection mirrors the paper's structure:

* tree topology → Algorithm 1 + Theorem 4.2 (error ``O(log^1.5 V)``),
* declared weight bound ``M`` → Algorithm 2's covering release
  (error ``O~(sqrt(V M))`` approx / ``O((VM)^{2/3})`` pure), upgraded
  to the hub-over-covering release at road-network scale,
* otherwise → a predicted-noise-scale contest between the Section 4
  intro all-pairs baseline (basic composition for pure budgets,
  advanced when ``delta > 0``) and the improved hub-set release of
  :mod:`repro.apsp`, which wins once ``V`` is large enough for its
  ``~V^{3/2}``-entry accounting to beat the baseline's ``V^2``.

Epoch rotation (:meth:`DistanceService.refresh`) swaps in a fresh
weight function — a new private database — rotates the ledger, clears
the answer cache, and rebuilds the synopsis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..algorithms.traversal import is_connected
from ..apsp.bounded import HubSetBoundedRelease
from ..apsp.hubs import HubSetRelease, predicted_hub_scale
from ..core.bounded_weight import BoundedWeightRelease
from ..core.distance_oracle import all_pairs_noise_scale
from ..core.tree_distances import TreeAllPairsRelease
from ..graphs.graph import Vertex, WeightedGraph
from ..graphs.tree import RootedTree
from ..dp.params import PrivacyParams
from ..exceptions import DisconnectedGraphError, GraphError, PrivacyError
from ..rng import Rng
from .batching import BatchPlanner, BatchReport
from .ledger import BudgetLedger
from .synopsis import (
    BoundedWeightSynopsis,
    DistanceSynopsis,
    HubBoundedSynopsis,
    HubSetSynopsis,
    TreeSynopsis,
    build_all_pairs_synopsis,
    canonical_pair,
)

__all__ = ["DistanceService", "ServiceStats", "select_mechanism"]

#: Mechanism names used by :func:`select_mechanism` and the CLI.
MECHANISMS = (
    "tree",
    "bounded-weight",
    "all-pairs-basic",
    "all-pairs-advanced",
    "hub-set",
    "hub-bounded",
)

#: Below this vertex count the hub relay detour dominates whatever the
#: noise accounting saves, so auto-selection never picks hub-set.
HUB_MIN_VERTICES = 128

#: Safety factor on the hub mechanism's predicted noise scale before it
#: may displace an all-pairs baseline: a hub answer is a *min over
#: relay sums* (twice the per-entry noise, plus min-selection bias), so
#: its scale must beat the baseline's by this margin to actually win.
HUB_SELECTION_MARGIN = 4.0

#: Crossover for layering hubs over Algorithm 2's covering: optimal
#: coverings are small at moderate V, so the |Z|^2 table only loses to
#: the hub structure's ~|Z|^{3/2} accounting at road-network scale.
HUB_BOUNDED_MIN_VERTICES = 4096


def select_mechanism(
    graph: WeightedGraph,
    budget: PrivacyParams,
    weight_bound: float | None = None,
) -> str:
    """Pick the strongest release family the graph admits.

    The choice depends only on public facts (topology, declared bound,
    budget shape, vertex count), so it is itself data-independent.
    The all-pairs family is decided by comparing predicted per-entry
    noise scales: the hub-set mechanism of :mod:`repro.apsp` releases
    ``~V^{3/2}`` values instead of ``V^2``, so once ``V`` is large
    enough for its (margin-adjusted) scale to undercut the baseline's,
    the asymptotics win and it is preferred.
    """
    if (
        not graph.directed
        and graph.num_edges == graph.num_vertices - 1
        and is_connected(graph)
    ):
        return "tree"
    if weight_bound is not None:
        if graph.num_vertices >= HUB_BOUNDED_MIN_VERTICES:
            return "hub-bounded"
        return "bounded-weight"
    n = graph.num_vertices
    baseline = (
        "all-pairs-advanced" if budget.delta > 0 else "all-pairs-basic"
    )
    baseline_scale = all_pairs_noise_scale(n, budget.eps, budget.delta)
    if (
        n >= HUB_MIN_VERTICES
        and predicted_hub_scale(n, budget.eps, budget.delta)
        * HUB_SELECTION_MARGIN
        < baseline_scale
    ):
        return "hub-set"
    return baseline


@dataclass
class ServiceStats:
    """Running counters for one service instance."""

    epochs_built: int = 0
    point_queries: int = 0
    batch_queries: int = 0
    batches: int = 0
    cache_hits: int = 0
    #: Regional rebuilds (sharded serving only; full epoch rebuilds
    #: count under ``epochs_built``).
    shard_refreshes: int = 0


class DistanceService:
    """A private distance query-serving engine.

    Parameters
    ----------
    graph:
        Public topology + the current epoch's private weights.
    epoch_budget:
        The ``(eps, delta)`` guarantee promised per epoch (a bare
        float is taken as pure eps).  The whole budget is spent on one
        synopsis per epoch.
    rng:
        Noise source for the releases.
    weight_bound:
        Public bound ``M`` on edge weights, if the provider has one
        (e.g. capped travel times); enables the Section 4.2 mechanism
        on non-tree graphs.
    mechanism:
        Force a mechanism from ``{"tree", "bounded-weight",
        "all-pairs-basic", "all-pairs-advanced", "hub-set",
        "hub-bounded"}`` instead of auto-selecting.
    ledger:
        Share a :class:`~repro.serving.ledger.BudgetLedger` with other
        products; defaults to a private ledger with ``epoch_budget``
        per epoch.  The synopsis is only built after the ledger accepts
        the spend, so an over-budget service fails closed at
        construction.
    tenant:
        The ledger tenant name this service spends under.
    backend:
        The :mod:`repro.engine` backend for the exact-recomputation
        half of the paper's releases (``"python"``, ``"numpy"``, or
        ``None``/``"auto"`` for the size heuristic).  The hub
        mechanisms of :mod:`repro.apsp` are engine-native — built
        directly on the CSR multi-source kernels — so they do not
        consult this knob.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        epoch_budget: PrivacyParams | float,
        rng: Rng,
        weight_bound: float | None = None,
        mechanism: str | None = None,
        ledger: BudgetLedger | None = None,
        tenant: str = "distance-service",
        backend: str | None = None,
    ) -> None:
        if isinstance(epoch_budget, (int, float)):
            epoch_budget = PrivacyParams(float(epoch_budget))
        self._budget = epoch_budget
        self._rng = rng
        self._weight_bound = weight_bound
        self._forced_mechanism = mechanism
        if mechanism is not None and mechanism not in MECHANISMS:
            raise PrivacyError(
                f"unknown mechanism {mechanism!r}; expected one of "
                f"{', '.join(MECHANISMS)}"
            )
        self._owns_ledger = ledger is None
        self._ledger = ledger if ledger is not None else BudgetLedger(
            epoch_budget
        )
        self._tenant = tenant
        self._backend = backend
        self._stats = ServiceStats()
        self._cache: Dict[Tuple[Vertex, Vertex], float] = {}
        self._graph = graph
        self._mechanism = ""
        self._synopsis: DistanceSynopsis | None = None
        self._build_synopsis()

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------

    def _build_synopsis(self) -> None:
        mechanism = self._forced_mechanism or select_mechanism(
            self._graph, self._budget, self._weight_bound
        )
        eps, delta = self._budget.eps, self._budget.delta
        # Validate mechanism preconditions before touching the ledger,
        # so a config or precondition error never burns epoch budget.
        # Topology checks are public; the weight-bound check mirrors
        # the release's own pre-noise precondition, just earlier.
        rooted: RootedTree | None = None
        if mechanism == "tree":
            # Topology-only validation (raises NotATreeError early).
            rooted = RootedTree(
                self._graph, next(iter(self._graph.vertices()))
            )
        elif mechanism in ("bounded-weight", "hub-bounded"):
            if self._weight_bound is None:
                raise GraphError(
                    f"{mechanism} mechanism requires a weight_bound"
                )
            self._graph.check_bounded(self._weight_bound)
            if not is_connected(self._graph):
                raise DisconnectedGraphError(
                    f"{mechanism} release requires a connected graph"
                )
        else:
            if mechanism == "all-pairs-advanced" and delta <= 0:
                raise PrivacyError(
                    "all-pairs-advanced requires a delta > 0 budget"
                )
            if not is_connected(self._graph):
                raise DisconnectedGraphError(
                    f"{mechanism} release requires a connected graph"
                )
        # Spend first, release second: if the ledger refuses, no noise
        # is ever drawn and nothing about the weights leaks.
        self._ledger.spend(
            self._budget,
            tenant=self._tenant,
            label=f"epoch {self._ledger.epoch} {mechanism} synopsis",
        )
        if mechanism == "tree":
            assert rooted is not None
            release = TreeAllPairsRelease(rooted, eps, self._rng)
            self._synopsis = TreeSynopsis.from_release(release)
        elif mechanism == "bounded-weight":
            release = BoundedWeightRelease(
                self._graph,
                self._weight_bound,
                eps,
                self._rng,
                delta=delta,
                backend=self._backend,
            )
            self._synopsis = BoundedWeightSynopsis.from_release(release)
        elif mechanism == "hub-bounded":
            release = HubSetBoundedRelease(
                self._graph,
                self._weight_bound,
                eps,
                self._rng,
                delta=delta,
            )
            self._synopsis = HubBoundedSynopsis.from_release(release)
        elif mechanism == "hub-set":
            release = HubSetRelease(
                self._graph, eps, self._rng, delta=delta
            )
            self._synopsis = HubSetSynopsis.from_release(release)
        elif mechanism == "all-pairs-advanced":
            # Engine-native build: matrix + vectorized triangle noise.
            self._synopsis = build_all_pairs_synopsis(
                self._graph,
                eps,
                self._rng,
                delta=delta,
                backend=self._backend,
            )
        else:
            self._synopsis = build_all_pairs_synopsis(
                self._graph, eps, self._rng, backend=self._backend
            )
        self._mechanism = mechanism
        self._stats.epochs_built += 1

    def refresh(self, graph: WeightedGraph | None = None) -> None:
        """Start a new epoch: swap in fresh weights (same public
        topology unless a new graph is given), clear the answer cache,
        and rebuild the synopsis.

        A privately owned ledger is rotated — the new weights are a
        new database, so the budget resets.  A *shared* ledger is NOT
        rotated: other tenants may still be serving releases of the
        current epoch's data, and rotating under them would let their
        budgets reset against an unchanged database.  With a shared
        ledger the rebuild spends from the remaining epoch budget
        (failing closed if exhausted); the ledger's owner decides when
        the epoch actually turns via
        :meth:`~repro.serving.ledger.BudgetLedger.rotate`.
        """
        if self._owns_ledger:
            self._ledger.rotate()
        if graph is not None:
            self._graph = graph
        self._cache.clear()
        # Drop the old synopsis first: if the rebuild fails partway,
        # the service must refuse to serve rather than silently answer
        # the new epoch from the previous epoch's release.
        self._synopsis = None
        self._build_synopsis()

    # ------------------------------------------------------------------
    # Query serving (post-processing only)
    # ------------------------------------------------------------------

    def _require_synopsis(self) -> DistanceSynopsis:
        if self._synopsis is None:
            raise PrivacyError(
                "no synopsis for the current epoch (the last refresh "
                "failed); call refresh() again before querying"
            )
        return self._synopsis

    def query(self, source: Vertex, target: Vertex) -> float:
        """Answer one distance query from the epoch synopsis."""
        synopsis = self._require_synopsis()
        self._stats.point_queries += 1
        key = canonical_pair(source, target)
        if key in self._cache:
            self._stats.cache_hits += 1
            return self._cache[key]
        value = synopsis.distance(source, target)
        self._cache[key] = value
        return value

    def query_batch(
        self, pairs: Sequence[Tuple[Vertex, Vertex]]
    ) -> BatchReport:
        """Answer a batch of queries; see
        :class:`~repro.serving.batching.BatchPlanner`."""
        planner = BatchPlanner(self._require_synopsis(), cache=self._cache)
        report = planner.run(pairs)
        self._stats.batches += 1
        self._stats.batch_queries += report.num_queries
        self._stats.cache_hits += report.cache_hits
        return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def mechanism(self) -> str:
        """The mechanism backing the current synopsis."""
        return self._mechanism

    @property
    def backend(self) -> str | None:
        """The engine backend spec the service builds releases with
        (``None`` means auto-selection)."""
        return self._backend

    @property
    def synopsis(self) -> DistanceSynopsis:
        """The current epoch's synopsis (immutable; shippable)."""
        return self._require_synopsis()

    @property
    def ledger(self) -> BudgetLedger:
        """The budget ledger this service spends against."""
        return self._ledger

    @property
    def epoch_budget(self) -> PrivacyParams:
        """The per-epoch privacy budget."""
        return self._budget

    @property
    def stats(self) -> ServiceStats:
        """Running serving counters."""
        return self._stats

    def __repr__(self) -> str:
        return (
            f"DistanceService(mechanism={self._mechanism!r}, "
            f"budget={self._budget}, epoch={self._ledger.epoch}, "
            f"queries={self._stats.point_queries + self._stats.batch_queries})"
        )
