"""Distance synopses: immutable, serializable release artifacts.

A *synopsis* is the thing a query-serving engine keeps in memory after
paying for a release: everything needed to answer ``distance(s, t)``
queries forever, and nothing else.  Answering from a synopsis is pure
post-processing of a differentially private release, so it costs zero
additional privacy budget no matter how many queries are served
(the post-processing property of DP).

One synopsis class wraps each release family of the paper:

* :class:`SinglePairSynopsis` — a fixed workload of sensitivity-1
  Laplace queries (Section 1.2's opener), noised with one vectorized
  draw;
* :class:`AllPairsSynopsis` — the Section 4 intro baselines
  (:class:`~repro.core.distance_oracle.AllPairsBasicRelease` /
  :class:`~repro.core.distance_oracle.AllPairsAdvancedRelease`);
* :class:`TreeSynopsis` — Algorithm 1 + the Theorem 4.2 LCA identity;
* :class:`BoundedWeightSynopsis` — Algorithm 2's covering table;
* :class:`HubSetSynopsis` / :class:`HubBoundedSynopsis` — the improved
  hub-relay releases of :mod:`repro.apsp` (follow-up work).

Every synopsis exposes the same surface — ``distance(s, t)``,
``params``, ``kind`` — and serializes to a JSON document containing
*only released values and public topology* (never raw private
weights), so a synopsis file can be shipped to untrusted serving
frontends.  :func:`synopsis_from_json` restores any synopsis via the
registry keyed by ``kind``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple, Type

import numpy as np

from ..algorithms.shortest_paths import all_pairs_dijkstra
from ..algorithms.traversal import is_connected
from ..apsp.hubs import HubStructure
from ..core.distance_oracle import all_pairs_noise_scale
from ..dp.composition import composed_noise_scale
from ..dp.params import PrivacyParams
from ..engine.backends import kernel_span
from ..engine.csr import CSRGraph
from ..engine.kernels import multi_source_distances
from ..exceptions import (
    DisconnectedGraphError,
    GraphError,
    SynopsisError,
    VertexNotFoundError,
)
from ..graphs.graph import Vertex, WeightedGraph
from ..graphs.io import _decode_vertex, _encode_vertex
from ..rng import Rng

__all__ = [
    "DistanceSynopsis",
    "SinglePairSynopsis",
    "AllPairsSynopsis",
    "TreeSynopsis",
    "BoundedWeightSynopsis",
    "HubSetSynopsis",
    "HubBoundedSynopsis",
    "build_single_pair_synopsis",
    "build_all_pairs_synopsis",
    "register_synopsis",
    "synopsis_from_json",
    "SYNOPSIS_FORMAT",
]

SYNOPSIS_FORMAT = "repro-synopsis"
_FORMAT_VERSION = 1

#: Registry of synopsis classes keyed by their ``kind`` string; this is
#: what :func:`synopsis_from_json` dispatches on.
_REGISTRY: Dict[str, Type["DistanceSynopsis"]] = {}


def register_synopsis(cls: Type["DistanceSynopsis"]) -> Type["DistanceSynopsis"]:
    """Class decorator: register a synopsis class under its ``kind``."""
    if not cls.kind:
        raise ValueError(f"{cls.__name__} must define a non-empty kind")
    if cls.kind in _REGISTRY:
        raise ValueError(f"synopsis kind {cls.kind!r} already registered")
    _REGISTRY[cls.kind] = cls
    return cls


def canonical_pair(s: Vertex, t: Vertex) -> Tuple[Vertex, Vertex]:
    """A deterministic canonical orientation for an unordered pair.

    Vertices are arbitrary hashables and need not be mutually orderable,
    so the order is taken over ``repr`` — stable, total, and independent
    of insertion order.
    """
    return (s, t) if repr(s) <= repr(t) else (t, s)


def _encode_pair_table(
    table: Mapping[Tuple[Vertex, Vertex], float]
) -> List[List[Any]]:
    return [
        [_encode_vertex(s), _encode_vertex(t), value]
        for (s, t), value in table.items()
    ]


def _decode_pair_table(
    rows: Iterable[Iterable[Any]],
) -> Dict[Tuple[Vertex, Vertex], float]:
    return {
        (_decode_vertex(s), _decode_vertex(t)): float(value)
        for s, t, value in rows
    }


class DistanceSynopsis:
    """Base class for all distance synopses.

    Subclasses set the class attribute ``kind`` (the registry key),
    implement :meth:`distance` and the ``_payload`` /
    ``_from_payload`` serialization hooks, and treat all state as
    immutable after construction — a synopsis is a released artifact,
    so mutating it would break both reproducibility and the privacy
    accounting attached to it.
    """

    kind: str = ""

    def __init__(self, params: PrivacyParams) -> None:
        self._params = params

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee paid for this synopsis."""
        return self._params

    def distance(self, source: Vertex, target: Vertex) -> float:
        """The released (noisy) distance between a pair of vertices."""
        raise NotImplementedError

    @property
    def noise_scale(self) -> float:
        """The representative per-released-entry Laplace scale — what
        one table entry of this synopsis was perturbed with.  The raw
        material for :class:`~repro.serving.estimates.Estimate`."""
        raise NotImplementedError

    def noise_scale_for(self, source: Vertex, target: Vertex) -> float:
        """The effective noise scale behind ``distance(source, target)``.

        Default: the per-entry :attr:`noise_scale` (exact for synopses
        whose answers are single released entries), except for the
        deterministic ``distance(v, v) == 0.0`` answer, which every
        synopsis serves without noise.  Synopses that compose entries
        per answer override this — the hub synopses report the
        composed two-entry relay scale unless the pair hits a direct
        local-ball entry.
        """
        if source == target:
            return 0.0
        return self.noise_scale

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def _payload(self) -> Dict[str, Any]:
        """Subclass hook: the kind-specific JSON-safe fields."""
        raise NotImplementedError

    @classmethod
    def _from_payload(
        cls, payload: Dict[str, Any], params: PrivacyParams
    ) -> "DistanceSynopsis":
        """Subclass hook: rebuild from :meth:`_payload` output."""
        raise NotImplementedError

    def to_json(self) -> str:
        """Serialize to a JSON document (released values + public
        topology only — safe to publish under ``params``)."""
        document = {
            "format": SYNOPSIS_FORMAT,
            "version": _FORMAT_VERSION,
            "kind": self.kind,
            "eps": self._params.eps,
            "delta": self._params.delta,
        }
        document.update(self._payload())
        return json.dumps(document)


def synopsis_from_json(text: str) -> DistanceSynopsis:
    """Restore any registered synopsis from :meth:`DistanceSynopsis.to_json`
    output, dispatching on the document's ``kind``."""
    document = json.loads(text)
    if document.get("format") != SYNOPSIS_FORMAT:
        raise SynopsisError("not a repro-synopsis JSON document")
    if document.get("version") != _FORMAT_VERSION:
        raise SynopsisError(
            f"unsupported synopsis version {document.get('version')!r}"
        )
    kind = document.get("kind")
    if kind not in _REGISTRY:
        raise SynopsisError(
            f"unknown synopsis kind {kind!r}; registered kinds: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    params = PrivacyParams(float(document["eps"]), float(document["delta"]))
    return _REGISTRY[kind]._from_payload(document, params)


class _PairTableSynopsis(DistanceSynopsis):
    """Shared machinery for synopses backed by an unordered pair table."""

    def __init__(
        self,
        params: PrivacyParams,
        table: Mapping[Tuple[Vertex, Vertex], float],
        vertices: Iterable[Vertex],
    ) -> None:
        super().__init__(params)
        self._table = {
            canonical_pair(s, t): float(v) for (s, t), v in table.items()
        }
        self._vertices = frozenset(vertices)

    @property
    def vertices(self) -> frozenset:
        """The vertex set this synopsis can answer about."""
        return self._vertices

    @property
    def num_entries(self) -> int:
        """The number of released pair values held."""
        return len(self._table)

    def _check_vertex(self, v: Vertex) -> None:
        if v not in self._vertices:
            raise VertexNotFoundError(v)

    def _lookup(self, source: Vertex, target: Vertex) -> float:
        key = canonical_pair(source, target)
        if key not in self._table:
            raise GraphError(
                f"pair ({source!r}, {target!r}) is not covered by this "
                f"{self.kind} synopsis"
            )
        return self._table[key]

    def distance(self, source: Vertex, target: Vertex) -> float:
        self._check_vertex(source)
        self._check_vertex(target)
        if source == target:
            return 0.0
        return self._lookup(source, target)


@register_synopsis
class SinglePairSynopsis(_PairTableSynopsis):
    """A synopsis for an explicit pair workload.

    Built by :func:`build_single_pair_synopsis`: the ``Q`` distinct
    pair queries form a sensitivity-``Q`` vector (each query has
    sensitivity 1), so ``Lap(Q/eps)`` noise per answer is eps-DP by the
    vector Laplace mechanism — the serving-batch analogue of the
    paper's single-query opener.  Only the workload pairs can be
    answered; anything else raises.
    """

    kind = "single-pair"

    @property
    def noise_scale(self) -> float:
        """``Lap(Q/eps)`` over the ``Q`` distinct workload pairs —
        recomputed from the table size, so it survives JSON round
        trips exactly."""
        return max(self.num_entries, 1) / self._params.eps

    def _payload(self) -> Dict[str, Any]:
        return {
            "vertices": [_encode_vertex(v) for v in self._vertices],
            "pairs": _encode_pair_table(self._table),
        }

    @classmethod
    def _from_payload(
        cls, payload: Dict[str, Any], params: PrivacyParams
    ) -> "SinglePairSynopsis":
        return cls(
            params,
            _decode_pair_table(payload["pairs"]),
            [_decode_vertex(v) for v in payload["vertices"]],
        )


@register_synopsis
class AllPairsSynopsis(_PairTableSynopsis):
    """A synopsis wrapping the Section 4 intro all-pairs baselines.

    Holds every released unordered-pair distance from an
    :class:`~repro.core.distance_oracle.AllPairsBasicRelease` or
    :class:`~repro.core.distance_oracle.AllPairsAdvancedRelease`.
    """

    kind = "all-pairs"

    @property
    def noise_scale(self) -> float:
        """The shared all-pairs accounting over ``V(V-1)/2`` pairs —
        recomputed from the vertex set and budget, so it survives JSON
        round trips exactly."""
        return all_pairs_noise_scale(
            len(self._vertices), self._params.eps, self._params.delta
        )

    @classmethod
    def from_release(cls, release: Any) -> "AllPairsSynopsis":
        """Wrap an all-pairs release object (basic or advanced)."""
        table = release.all_released()
        vertices = set()
        for s, t in table:
            vertices.add(s)
            vertices.add(t)
        if not vertices:
            # Single-vertex graph: nothing released, but the vertex set
            # must still be answerable (distance to self is 0).
            vertices = set(release.graph.vertices())
        return cls(release.params, table, vertices)

    def _payload(self) -> Dict[str, Any]:
        return {
            "vertices": [_encode_vertex(v) for v in self._vertices],
            "pairs": _encode_pair_table(self._table),
        }

    @classmethod
    def _from_payload(
        cls, payload: Dict[str, Any], params: PrivacyParams
    ) -> "AllPairsSynopsis":
        return cls(
            params,
            _decode_pair_table(payload["pairs"]),
            [_decode_vertex(v) for v in payload["vertices"]],
        )


@register_synopsis
class TreeSynopsis(DistanceSynopsis):
    """A synopsis of Algorithm 1's tree release (Theorems 4.1/4.2).

    Stores the released root-to-vertex estimates plus the *public* tree
    structure (parents and depths — never edge weights), and answers
    any pair via the LCA identity
    ``d(x, y) = d(v0, x) + d(v0, y) - 2 d(v0, lca(x, y))`` — pure
    post-processing, so all ``V^2`` pairs cost the one release.
    """

    kind = "tree"

    def __init__(
        self,
        params: PrivacyParams,
        root: Vertex,
        estimates: Mapping[Vertex, float],
        parent: Mapping[Vertex, Vertex | None],
        depth: Mapping[Vertex, int],
        noise_scale: float | None = None,
    ) -> None:
        super().__init__(params)
        self._root = root
        self._estimates = dict(estimates)
        self._parent = dict(parent)
        self._depth = dict(depth)
        if noise_scale is None:
            # Fallback for documents predating the stored scale: the
            # release noises one value per centroid-recursion level,
            # so ceil(log2 V)/eps upper-bounds the per-entry scale.
            n = max(len(self._estimates), 2)
            noise_scale = max(math.ceil(math.log2(n)), 1) / params.eps
        self._noise_scale = float(noise_scale)

    @classmethod
    def from_release(cls, release: Any) -> "TreeSynopsis":
        """Wrap a :class:`~repro.core.tree_distances.TreeAllPairsRelease`."""
        tree = release.single_source.tree
        parent = {v: tree.parent(v) for v in tree.preorder()}
        depth = {v: tree.depth(v) for v in tree.preorder()}
        return cls(
            release.params,
            tree.root,
            release.single_source.all_distances(),
            parent,
            depth,
            noise_scale=release.single_source.noise_scale,
        )

    @property
    def noise_scale(self) -> float:
        """The Laplace scale per released recursion value.  A pair
        answer combines up to three root estimates (each a short sum
        of released values), so per-answer noise is a small multiple
        of this scale rather than a single Laplace draw."""
        return self._noise_scale

    @property
    def root(self) -> Vertex:
        """The (public, arbitrary) root the release was run from."""
        return self._root

    @property
    def vertices(self) -> frozenset:
        """The vertex set this synopsis can answer about."""
        return frozenset(self._estimates)

    def _lca(self, x: Vertex, y: Vertex) -> Vertex:
        while self._depth[x] > self._depth[y]:
            x = self._parent[x]
        while self._depth[y] > self._depth[x]:
            y = self._parent[y]
        while x != y:
            x = self._parent[x]
            y = self._parent[y]
        return x

    def distance(self, source: Vertex, target: Vertex) -> float:
        if source not in self._estimates:
            raise VertexNotFoundError(source)
        if target not in self._estimates:
            raise VertexNotFoundError(target)
        if source == target:
            return 0.0
        z = self._lca(source, target)
        return (
            self._estimates[source]
            + self._estimates[target]
            - 2.0 * self._estimates[z]
        )

    def _payload(self) -> Dict[str, Any]:
        return {
            "root": _encode_vertex(self._root),
            "noise_scale": self._noise_scale,
            "vertices": [
                # One row per vertex: label, released estimate, depth,
                # parent (None for the root).
                [
                    _encode_vertex(v),
                    self._estimates[v],
                    self._depth[v],
                    None
                    if self._parent[v] is None
                    else _encode_vertex(self._parent[v]),
                ]
                for v in self._estimates
            ],
        }

    @classmethod
    def _from_payload(
        cls, payload: Dict[str, Any], params: PrivacyParams
    ) -> "TreeSynopsis":
        estimates: Dict[Vertex, float] = {}
        parent: Dict[Vertex, Vertex | None] = {}
        depth: Dict[Vertex, int] = {}
        for row in payload["vertices"]:
            v = _decode_vertex(row[0])
            estimates[v] = float(row[1])
            depth[v] = int(row[2])
            parent[v] = None if row[3] is None else _decode_vertex(row[3])
        scale = payload.get("noise_scale")
        return cls(
            params,
            _decode_vertex(payload["root"]),
            estimates,
            parent,
            depth,
            noise_scale=None if scale is None else float(scale),
        )


@register_synopsis
class BoundedWeightSynopsis(DistanceSynopsis):
    """A synopsis of Algorithm 2's covering release (Section 4.2).

    Stores the covering assignment ``z(v)`` (public — it depends only
    on hop distances in the topology) and the released noisy distances
    between covering pairs; any query ``(u, v)`` is answered as
    ``a_{z(u), z(v)}``.
    """

    kind = "bounded-weight"

    def __init__(
        self,
        params: PrivacyParams,
        assignment: Mapping[Vertex, Vertex],
        covering_table: Mapping[Tuple[Vertex, Vertex], float],
        weight_bound: float,
        k: int,
        noise_scale: float | None = None,
    ) -> None:
        super().__init__(params)
        self._assignment = dict(assignment)
        self._table = {
            canonical_pair(s, t): float(v)
            for (s, t), v in covering_table.items()
        }
        self._weight_bound = float(weight_bound)
        self._k = int(k)
        if noise_scale is None:
            # Fallback for documents predating the stored scale: the
            # release prices its |Z|(|Z|-1)/2 covering pairs through
            # the shared composition accounting.
            noise_scale = composed_noise_scale(
                max(len(self._table), 1), params.eps, params.delta
            )
        self._noise_scale = float(noise_scale)

    @classmethod
    def from_release(cls, release: Any) -> "BoundedWeightSynopsis":
        """Wrap a :class:`~repro.core.bounded_weight.BoundedWeightRelease`."""
        assignment = {
            v: release.assigned_covering_vertex(v)
            for v in release.graph.vertices()
        }
        return cls(
            release.params,
            assignment,
            release.all_released(),
            release.weight_bound,
            release.k,
            noise_scale=release.noise_scale,
        )

    @property
    def noise_scale(self) -> float:
        """The Laplace scale per released covering-pair distance
        (per-answer exact: each query reads one table entry).  The
        covering detour ``<= 2kM`` is a separate, deterministic error
        term not captured here."""
        return self._noise_scale

    @property
    def vertices(self) -> frozenset:
        """The vertex set this synopsis can answer about."""
        return frozenset(self._assignment)

    @property
    def weight_bound(self) -> float:
        """The public weight bound ``M`` the release assumed."""
        return self._weight_bound

    @property
    def k(self) -> int:
        """The covering radius in hops (error is ``<= 2kM`` + noise)."""
        return self._k

    def distance(self, source: Vertex, target: Vertex) -> float:
        if source not in self._assignment:
            raise VertexNotFoundError(source)
        if target not in self._assignment:
            raise VertexNotFoundError(target)
        if source == target:
            return 0.0
        zu = self._assignment[source]
        zv = self._assignment[target]
        if zu == zv:
            return 0.0
        key = canonical_pair(zu, zv)
        if key not in self._table:
            raise GraphError(
                f"covering pair ({zu!r}, {zv!r}) missing from synopsis"
            )
        return self._table[key]

    def noise_scale_for(self, source: Vertex, target: Vertex) -> float:
        """0 for pairs sharing a covering site (their answer is a
        deterministic 0); the per-entry table scale otherwise."""
        if source not in self._assignment:
            raise VertexNotFoundError(source)
        if target not in self._assignment:
            raise VertexNotFoundError(target)
        if (
            source == target
            or self._assignment[source] == self._assignment[target]
        ):
            return 0.0
        return self._noise_scale

    def _payload(self) -> Dict[str, Any]:
        return {
            "weight_bound": self._weight_bound,
            "k": self._k,
            "noise_scale": self._noise_scale,
            "assignment": [
                [_encode_vertex(v), _encode_vertex(z)]
                for v, z in self._assignment.items()
            ],
            "covering_pairs": _encode_pair_table(self._table),
        }

    @classmethod
    def _from_payload(
        cls, payload: Dict[str, Any], params: PrivacyParams
    ) -> "BoundedWeightSynopsis":
        assignment = {
            _decode_vertex(v): _decode_vertex(z)
            for v, z in payload["assignment"]
        }
        scale = payload.get("noise_scale")
        return cls(
            params,
            assignment,
            _decode_pair_table(payload["covering_pairs"]),
            float(payload["weight_bound"]),
            int(payload["k"]),
            noise_scale=None if scale is None else float(scale),
        )


def _encode_hub_structure(structure: HubStructure) -> Dict[str, Any]:
    """JSON-safe fields of a released hub structure (all entries are
    released values or public topology)."""
    m = structure.num_sites
    return {
        "num_sites": m,
        "hubs": [int(p) for p in structure.hub_positions],
        "matrix": [
            [float(x) for x in row] for row in structure.matrix
        ],
        "ball": [
            [int(key // m), int(key % m), value]
            for key, value in sorted(structure.ball.items())
        ],
        "noise_scale": structure.noise_scale,
        "pair_count": structure.pair_count,
    }


def _decode_hub_structure(payload: Dict[str, Any]) -> HubStructure:
    m = int(payload["num_sites"])
    return HubStructure(
        num_sites=m,
        hub_positions=np.asarray(payload["hubs"], dtype=np.int64),
        matrix=np.asarray(payload["matrix"], dtype=float).reshape(
            len(payload["hubs"]), m
        ),
        ball={
            int(lo) * m + int(hi): float(value)
            for lo, hi, value in payload["ball"]
        },
        noise_scale=float(payload["noise_scale"]),
        pair_count=int(payload["pair_count"]),
    )


@register_synopsis
class HubSetSynopsis(DistanceSynopsis):
    """A synopsis of the improved hub-set release
    (:class:`repro.apsp.hubs.HubSetRelease`).

    Stores the ordered vertex list (site order), the noisy
    vertex<->hub matrix, and the local-ball table; answers any pair by
    the noisy min over hub relays refined by the ball entry — pure
    post-processing, ``~V^{3/2}`` released values instead of ``V^2``.
    """

    kind = "hub-set"

    def __init__(
        self,
        params: PrivacyParams,
        vertices: Sequence[Vertex],
        structure: HubStructure,
    ) -> None:
        super().__init__(params)
        self._order = tuple(vertices)
        if len(self._order) != structure.num_sites:
            raise GraphError(
                f"{len(self._order)} vertices do not match "
                f"{structure.num_sites} hub-structure sites"
            )
        self._index = {v: i for i, v in enumerate(self._order)}
        self._structure = structure

    @classmethod
    def from_release(cls, release: Any) -> "HubSetSynopsis":
        """Wrap a :class:`repro.apsp.hubs.HubSetRelease`."""
        return cls(release.params, release.vertex_order, release.structure)

    @property
    def vertices(self) -> frozenset:
        """The vertex set this synopsis can answer about."""
        return frozenset(self._order)

    @property
    def hubs(self) -> List[Vertex]:
        """The sampled hub vertices."""
        return [
            self._order[int(p)]
            for p in self._structure.hub_positions
        ]

    @property
    def structure(self) -> HubStructure:
        """The released hub structure."""
        return self._structure

    @property
    def noise_scale(self) -> float:
        """The Laplace scale on each released entry."""
        return self._structure.noise_scale

    def _site(self, v: Vertex) -> int:
        try:
            return self._index[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def distance(self, source: Vertex, target: Vertex) -> float:
        return self._structure.estimate(
            self._site(source), self._site(target)
        )

    def noise_scale_for(self, source: Vertex, target: Vertex) -> float:
        """The composed relay scale (two summed entries), or the
        direct per-entry scale when the pair hits a local-ball
        release."""
        return self._structure.scale_for(
            self._site(source), self._site(target)
        )

    def _payload(self) -> Dict[str, Any]:
        payload = {
            "vertices": [_encode_vertex(v) for v in self._order],
        }
        payload.update(_encode_hub_structure(self._structure))
        return payload

    @classmethod
    def _from_payload(
        cls, payload: Dict[str, Any], params: PrivacyParams
    ) -> "HubSetSynopsis":
        return cls(
            params,
            [_decode_vertex(v) for v in payload["vertices"]],
            _decode_hub_structure(payload),
        )


@register_synopsis
class HubBoundedSynopsis(DistanceSynopsis):
    """A synopsis of the hub-over-covering release
    (:class:`repro.apsp.bounded.HubSetBoundedRelease`).

    Stores the (public) covering assignment as site indices per vertex
    plus the inner hub structure over the covering vertices; a query
    ``(u, v)`` is answered as ``hub(z(u), z(v))``.
    """

    kind = "hub-bounded"

    def __init__(
        self,
        params: PrivacyParams,
        vertices: Sequence[Vertex],
        assignment: Sequence[int],
        structure: HubStructure,
        weight_bound: float,
        k: int,
    ) -> None:
        super().__init__(params)
        self._order = tuple(vertices)
        self._assignment = [int(s) for s in assignment]
        if len(self._assignment) != len(self._order):
            raise GraphError(
                f"{len(self._assignment)} assignments do not match "
                f"{len(self._order)} vertices"
            )
        for s in self._assignment:
            if not 0 <= s < structure.num_sites:
                raise GraphError(
                    f"assignment site {s} out of range "
                    f"[0, {structure.num_sites})"
                )
        self._index = {v: i for i, v in enumerate(self._order)}
        self._structure = structure
        self._weight_bound = float(weight_bound)
        self._k = int(k)

    @classmethod
    def from_release(cls, release: Any) -> "HubBoundedSynopsis":
        """Wrap a :class:`repro.apsp.bounded.HubSetBoundedRelease`."""
        site_of = {z: i for i, z in enumerate(release.covering)}
        order = release.vertex_order
        assignment = [
            site_of[release.assigned_covering_vertex(v)] for v in order
        ]
        return cls(
            release.params,
            order,
            assignment,
            release.structure,
            release.weight_bound,
            release.k,
        )

    @property
    def vertices(self) -> frozenset:
        """The vertex set this synopsis can answer about."""
        return frozenset(self._order)

    @property
    def weight_bound(self) -> float:
        """The public weight bound ``M`` the release assumed."""
        return self._weight_bound

    @property
    def k(self) -> int:
        """The covering radius in hops (detour error ``<= 2kM``)."""
        return self._k

    @property
    def structure(self) -> HubStructure:
        """The released inner hub structure over the covering."""
        return self._structure

    @property
    def noise_scale(self) -> float:
        """The Laplace scale on each released inner-hub entry."""
        return self._structure.noise_scale

    def _sites(self, source: Vertex, target: Vertex) -> Tuple[int, int]:
        try:
            i = self._index[source]
        except KeyError:
            raise VertexNotFoundError(source) from None
        try:
            j = self._index[target]
        except KeyError:
            raise VertexNotFoundError(target) from None
        return self._assignment[i], self._assignment[j]

    def distance(self, source: Vertex, target: Vertex) -> float:
        si, sj = self._sites(source, target)
        if source == target or si == sj:
            return 0.0
        return self._structure.estimate(si, sj)

    def noise_scale_for(self, source: Vertex, target: Vertex) -> float:
        """The composed scale of the inner hub answer for the pair's
        covering sites (0 for same-site pairs: their answer is a
        deterministic 0)."""
        si, sj = self._sites(source, target)
        if source == target or si == sj:
            return 0.0
        return self._structure.scale_for(si, sj)

    def _payload(self) -> Dict[str, Any]:
        payload = {
            "vertices": [_encode_vertex(v) for v in self._order],
            "assignment": list(self._assignment),
            "weight_bound": self._weight_bound,
            "k": self._k,
        }
        payload.update(_encode_hub_structure(self._structure))
        return payload

    @classmethod
    def _from_payload(
        cls, payload: Dict[str, Any], params: PrivacyParams
    ) -> "HubBoundedSynopsis":
        return cls(
            params,
            [_decode_vertex(v) for v in payload["vertices"]],
            payload["assignment"],
            _decode_hub_structure(payload),
            float(payload["weight_bound"]),
            int(payload["k"]),
        )


def build_all_pairs_synopsis(
    graph: WeightedGraph,
    eps: float,
    rng: Rng,
    delta: float = 0.0,
    backend: str | None = None,
) -> AllPairsSynopsis:
    """Build an :class:`AllPairsSynopsis` straight from the engine.

    The exact distances come as one CSR multi-source matrix and the
    noise is a single vectorized Laplace draw over the upper triangle
    — no intermediate dict-of-dicts or release object (the ROADMAP's
    "engine-native synopsis builds" path).  ``delta = 0`` applies the
    basic-composition accounting of
    :class:`~repro.core.distance_oracle.AllPairsBasicRelease`
    (``Lap(P/eps)`` over the ``P = V(V-1)/2`` unordered pairs);
    ``delta > 0`` the advanced-composition accounting of
    :class:`~repro.core.distance_oracle.AllPairsAdvancedRelease`.

    Pair order and noise-draw order match the release classes exactly,
    so with the same seed this builder releases bit-identical values
    (every ``distance`` answer equals the release-wrapping path's) —
    only faster.  Note the claim covers the released values, not the
    serialized bytes: the JSON's public ``vertices`` list may be
    ordered differently between the two paths.  A forced
    ``backend`` is validated against the engine registry; any backend
    other than ``"numpy"`` (the reference ``"python"``, a third-party
    accelerator) runs the release-wrapping path so the forced kernel
    really is the one doing the exact sweep.
    """
    params = PrivacyParams(eps, delta)
    if backend is not None and backend != "auto":
        # Raises EngineError on unknown names, exactly like the
        # release path used to.
        from ..engine.backends import get_backend

        forced = get_backend(backend).name
        if forced != "numpy":
            from ..core.distance_oracle import (
                AllPairsAdvancedRelease,
                AllPairsBasicRelease,
            )

            if delta > 0:
                release: Any = AllPairsAdvancedRelease(
                    graph, eps, delta, rng, backend=backend
                )
            else:
                release = AllPairsBasicRelease(
                    graph, eps, rng, backend=backend
                )
            return AllPairsSynopsis.from_release(release)
    if not is_connected(graph):
        raise DisconnectedGraphError(
            "all-pairs release requires a connected graph"
        )
    csr = CSRGraph.from_graph(graph)
    n = csr.n
    # The engine-native fast path skips the backend wrapper, so it
    # carries the same profiler-gated kernel span itself.
    with kernel_span("engine.all_pairs", backend="numpy", sources=n):
        matrix = multi_source_distances(
            csr, np.arange(n, dtype=np.int64)
        )
    scale = all_pairs_noise_scale(n, eps, delta)
    iu, ju = np.triu_indices(n, k=1)
    values = matrix[iu, ju] + rng.laplace_vector(scale, len(iu))
    vertices = csr.vertices
    table = {
        (vertices[i], vertices[j]): v
        for i, j, v in zip(iu.tolist(), ju.tolist(), values.tolist())
    }
    return AllPairsSynopsis(params, table, vertices)


def build_single_pair_synopsis(
    graph: WeightedGraph,
    pairs: Iterable[Tuple[Vertex, Vertex]],
    eps: float,
    rng: Rng,
    backend: str | None = None,
) -> SinglePairSynopsis:
    """Release a fixed pair workload as a :class:`SinglePairSynopsis`.

    The distinct (unordered) pairs form a query vector of L1
    sensitivity ``Q`` (each distance query has sensitivity 1), so one
    vectorized ``Lap(Q/eps)`` draw over the whole vector is eps-DP.
    Exact distances come from one :mod:`repro.engine` multi-source
    sweep over the distinct sources (``backend`` selects the kernel;
    default auto), not one search per pair.
    """
    params = PrivacyParams(eps)  # validates eps before any work
    unique: List[Tuple[Vertex, Vertex]] = []
    seen = set()
    for s, t in pairs:
        if s == t:
            continue
        key = canonical_pair(s, t)
        if key not in seen:
            seen.add(key)
            unique.append(key)
    for s, t in unique:
        if not graph.has_vertex(s):
            raise VertexNotFoundError(s)
        if not graph.has_vertex(t):
            raise VertexNotFoundError(t)

    by_source: Dict[Vertex, List[Vertex]] = {}
    for s, t in unique:
        by_source.setdefault(s, []).append(t)
    exact: Dict[Tuple[Vertex, Vertex], float] = {}
    sweep = all_pairs_dijkstra(
        graph, sources=list(by_source), backend=backend
    )
    for s, targets in by_source.items():
        distances = sweep[s]
        for t in targets:
            if t not in distances:
                raise DisconnectedGraphError(
                    f"no path from {s!r} to {t!r}"
                )
            exact[(s, t)] = distances[t]

    scale = max(len(unique), 1) / eps
    noise = rng.laplace_vector(scale, len(unique))
    table = {
        pair: exact[pair] + float(x) for pair, x in zip(unique, noise)
    }
    return SinglePairSynopsis(params, table, graph.vertices())
