"""A multi-tenant, epoch-rotating privacy-budget ledger.

The serving model: a provider promises each data epoch (say, one
rush-hour window of congestion data) at most ``epoch_budget`` of
privacy loss *per product ("tenant")* that releases something from
that epoch's weights; with ``N`` tenants the total loss on the epoch
is at most ``N * epoch_budget`` by basic composition, which the
provider sizes the per-tenant budget for.  When the epoch rotates —
fresh private data replaces the old — the budgets reset, because the
new weight function is a new database.

:class:`BudgetLedger` layers this on :class:`repro.dp.Accountant`:
one accountant per tenant per epoch, all sharing the epoch budget cap
per tenant, with every expenditure recorded as a :class:`LedgerEntry`
for audit.  Like the accountant, the ledger *fails closed*: a spend
that would exceed the remaining epoch budget raises
:class:`~repro.exceptions.BudgetExceededError` before any noise is
drawn, so a refused release leaks nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..dp.accountant import Accountant
from ..dp.params import PrivacyParams
from ..exceptions import PrivacyError
from ..telemetry import get_telemetry

__all__ = ["BudgetLedger", "LedgerEntry"]

DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class LedgerEntry:
    """One audited budget expenditure."""

    epoch: int
    tenant: str
    label: str
    params: PrivacyParams


class BudgetLedger:
    """Tracks per-tenant privacy spending across data epochs.

    Parameters
    ----------
    epoch_budget:
        The guarantee promised per tenant per epoch.  Within one epoch
        a tenant's spends compose basically (Lemma 3.3) and may not
        exceed this; rotation starts every tenant fresh.
    """

    def __init__(self, epoch_budget: PrivacyParams) -> None:
        self._epoch_budget = epoch_budget
        self._epoch = 0
        self._accountants: Dict[str, Accountant] = {}
        self._entries: List[LedgerEntry] = []

    @property
    def epoch_budget(self) -> PrivacyParams:
        """The per-tenant budget of each epoch."""
        return self._epoch_budget

    @property
    def epoch(self) -> int:
        """The current epoch index (0-based)."""
        return self._epoch

    @property
    def tenants(self) -> List[str]:
        """Tenants that have spent in the current epoch."""
        return list(self._accountants)

    def _peek(self, tenant: str) -> Accountant:
        """The tenant's live accountant if it has spent this epoch,
        else a fresh one at full budget that is NOT registered — so
        probes and refused spends never leave a trace."""
        if not tenant:
            raise PrivacyError("tenant name must be non-empty")
        if tenant in self._accountants:
            return self._accountants[tenant]
        return Accountant(self._epoch_budget)

    def can_spend(
        self, params: PrivacyParams, tenant: str = DEFAULT_TENANT
    ) -> bool:
        """Whether ``tenant`` can spend ``params`` this epoch."""
        return self._peek(tenant).can_spend(params)

    def spend(
        self,
        params: PrivacyParams,
        tenant: str = DEFAULT_TENANT,
        label: str = "",
    ) -> LedgerEntry:
        """Record an expenditure against the current epoch.

        Fails closed (raising
        :class:`~repro.exceptions.BudgetExceededError`) if the tenant's
        remaining epoch budget cannot cover it.  A refused spend leaves
        no trace: the tenant is only registered once a spend succeeds.
        """
        accountant = self._peek(tenant)
        accountant.spend(params, label=label)
        self._accountants[tenant] = accountant
        entry = LedgerEntry(
            epoch=self._epoch, tenant=tenant, label=label, params=params
        )
        self._entries.append(entry)
        self._record_spend(tenant, params, label, accountant)
        return entry

    def _record_spend(
        self,
        tenant: str,
        params: PrivacyParams,
        label: str,
        accountant: Accountant,
    ) -> None:
        """Publish the tenant's budget position after a spend.

        The bundle is looked up dynamically
        (:func:`~repro.telemetry.get_telemetry`), so a spend made
        inside a service's build lands in that service's registry —
        and a refused spend (which raises before reaching here)
        publishes nothing, matching the no-trace contract.
        """
        telemetry = get_telemetry()
        registry = telemetry.registry
        remaining_eps = accountant.remaining_eps()
        remaining_delta = accountant.remaining_delta()
        spent = accountant.spent
        telemetry.audit.record(
            "budget.spend",
            epoch=self._epoch,
            tenant=tenant,
            label=label,
            eps=params.eps,
            delta=params.delta,
            spent_eps=spent.eps if spent is not None else 0.0,
            spent_delta=spent.delta if spent is not None else 0.0,
            remaining_eps=remaining_eps,
            remaining_delta=remaining_delta,
            budget_eps=self._epoch_budget.eps,
            budget_delta=self._epoch_budget.delta,
        )
        registry.counter("budget.spends", tenant=tenant).inc()
        registry.gauge("budget.eps.spent", tenant=tenant).set(
            self._epoch_budget.eps - remaining_eps
        )
        registry.gauge("budget.eps.remaining", tenant=tenant).set(
            remaining_eps
        )
        registry.gauge("budget.delta.remaining", tenant=tenant).set(
            remaining_delta
        )
        telemetry.tracer.event(
            "budget.spend",
            tenant=tenant,
            label=label,
            epoch=self._epoch,
            eps=params.eps,
            delta=params.delta,
        )

    def spent(self, tenant: str = DEFAULT_TENANT) -> PrivacyParams:
        """The tenant's cumulative spend this epoch (zero if none).

        The figure audit replays are verified against: the accountant
        accumulates spends left-to-right, so a log replayed in record
        order reconstructs it bit-exactly.
        """
        spent = self._peek(tenant).spent
        if spent is None:
            return PrivacyParams(0.0, 0.0)
        return spent

    def remaining_eps(self, tenant: str = DEFAULT_TENANT) -> float:
        """Epoch eps the tenant has not yet spent."""
        return self._peek(tenant).remaining_eps()

    def remaining_delta(self, tenant: str = DEFAULT_TENANT) -> float:
        """Epoch delta the tenant has not yet spent."""
        return self._peek(tenant).remaining_delta()

    def rotate(self) -> int:
        """Close the current epoch and start the next.

        The private data behind the next epoch is a fresh database, so
        every tenant's accountant resets to the full epoch budget.
        Returns the new epoch index.
        """
        telemetry = get_telemetry()
        registry = telemetry.registry
        for tenant in self._accountants:
            registry.gauge("budget.eps.spent", tenant=tenant).set(0.0)
            registry.gauge("budget.eps.remaining", tenant=tenant).set(
                self._epoch_budget.eps
            )
            registry.gauge("budget.delta.remaining", tenant=tenant).set(
                self._epoch_budget.delta
            )
        closed = self._epoch
        closed_tenants = sorted(self._accountants)
        self._epoch += 1
        self._accountants = {}
        telemetry.audit.record(
            "ledger.rotate",
            epoch=self._epoch,
            closed_epoch=closed,
            tenants=closed_tenants,
            budget_eps=self._epoch_budget.eps,
            budget_delta=self._epoch_budget.delta,
        )
        return self._epoch

    def records(
        self, tenant: str | None = None, epoch: int | None = None
    ) -> List[LedgerEntry]:
        """Audit log of expenditures, optionally filtered."""
        return [
            entry
            for entry in self._entries
            if (tenant is None or entry.tenant == tenant)
            and (epoch is None or entry.epoch == epoch)
        ]

    def __repr__(self) -> str:
        return (
            f"BudgetLedger(epoch_budget={self._epoch_budget}, "
            f"epoch={self._epoch}, spends={len(self._entries)})"
        )
