"""Traffic replay: drive the serving engine with rush-hour workloads.

This module closes the loop on the paper's motivating example.  It
builds a synthetic city (:func:`repro.workloads.traffic.grid_road_network`),
overlays a moving rush-hour hot-spot per epoch
(:func:`repro.workloads.traffic.rush_hour_scenario`), stands up a
server through the declarative
:func:`~repro.serving.config.serve` path (sharded or not — the replay
never branches on it), and replays batches of rider queries against
it — measuring what a provider actually cares about: throughput
(queries/second), empirical error versus the true congested
distances, and the audited budget spend per epoch.

The replay is fully deterministic given the :class:`~repro.rng.Rng`,
so simulation results are regenerable bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..algorithms.shortest_paths import all_pairs_dijkstra
from ..exceptions import GraphError
from ..graphs.graph import Vertex, WeightedGraph
from ..rng import Rng
from ..telemetry import NULL_TELEMETRY, Telemetry, use_telemetry
from ..workloads.queries import uniform_pairs
from ..workloads.traffic import (
    RoadNetwork,
    congestion_weights,
    grid_road_network,
    rush_hour_scenario,
)
from .config import DistanceServer, ServingConfig, serve

__all__ = ["SimulationReport", "EpochResult", "replay_rush_hour"]


@dataclass
class EpochResult:
    """Measurements for one simulated epoch."""

    epoch: int
    num_queries: int
    unique_pairs: int
    cache_hits: int
    elapsed_seconds: float
    mean_abs_error: float
    max_abs_error: float

    @property
    def queries_per_second(self) -> float:
        """Serving throughput within the epoch's batch."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.num_queries / self.elapsed_seconds


@dataclass
class SimulationReport:
    """The outcome of a full traffic replay."""

    mechanism: str
    eps: float
    delta: float
    num_epochs: int
    epochs: List[EpochResult] = field(default_factory=list)
    ledger_spends: int = 0
    #: Final snapshot of the server's shared counters
    #: (:meth:`~repro.serving.service.ServiceStats.as_dict`) — the
    #: same names whether the replay ran sharded or not.
    server_stats: Dict[str, int] = field(default_factory=dict)
    #: Per-query serving latency quantiles in seconds (``p50`` /
    #: ``p95`` / ``p99`` plus the observation ``count``), merged over
    #: every ``serving.query.latency`` label set of the replay's
    #: telemetry bundle.  Empty when the replay ran with telemetry
    #: disabled.
    latency: Dict[str, float] = field(default_factory=dict)

    @property
    def total_queries(self) -> int:
        """Queries served across all epochs."""
        return sum(e.num_queries for e in self.epochs)

    @property
    def elapsed_seconds(self) -> float:
        """Total serving time across all epochs."""
        return sum(e.elapsed_seconds for e in self.epochs)

    @property
    def queries_per_second(self) -> float:
        """Aggregate throughput over the whole replay."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.total_queries / self.elapsed_seconds

    @property
    def mean_abs_error(self) -> float:
        """Query-weighted mean absolute error across epochs."""
        total = self.total_queries
        if total == 0:
            return 0.0
        return (
            sum(e.mean_abs_error * e.num_queries for e in self.epochs)
            / total
        )

    @property
    def max_abs_error(self) -> float:
        """Worst absolute error seen in any epoch."""
        if not self.epochs:
            return 0.0
        return max(e.max_abs_error for e in self.epochs)

    def as_dict(self) -> Dict[str, object]:
        """A JSON-safe summary (what the CLI prints)."""
        return {
            "mechanism": self.mechanism,
            "eps": self.eps,
            "delta": self.delta,
            "epochs": self.num_epochs,
            "total_queries": self.total_queries,
            "queries_per_second": self.queries_per_second,
            "mean_abs_error": self.mean_abs_error,
            "max_abs_error": self.max_abs_error,
            "ledger_spends": self.ledger_spends,
            "server_stats": dict(self.server_stats),
            "latency_seconds": dict(self.latency),
        }


def _exact_distances(
    graph: WeightedGraph,
    pairs: List[Tuple[Vertex, Vertex]],
    backend: str | None = None,
) -> List[float]:
    """True distances for the pairs: one engine multi-source sweep
    over the distinct sources."""
    distinct = list(dict.fromkeys(s for s, _ in pairs))
    sweep = all_pairs_dijkstra(graph, sources=distinct, backend=backend)
    return [sweep[s][t] for s, t in pairs]


def replay_rush_hour(
    rng: Rng,
    rows: int = 20,
    cols: int = 20,
    eps: float = 1.0,
    delta: float = 0.0,
    epochs: int = 1,
    queries_per_epoch: int = 1000,
    weight_bound: float | None = None,
    slowdown: float = 3.0,
    block_minutes: float = 2.0,
    backend: str | None = None,
    mechanism: str | None = None,
    shards: int | None = None,
    config: ServingConfig | None = None,
    telemetry: Telemetry | None = None,
    audit_log: str | None = None,
    event_log: str | None = None,
) -> SimulationReport:
    """Replay rush-hour traffic through the serving engine.

    Each epoch places a fresh hot-spot at a random downtown location,
    refreshes the server (one budget spend per tenant), and serves a
    batch of ``queries_per_epoch`` uniform rider queries, comparing
    the served answers against the true congested distances.

    The server is stood up through the one
    :func:`~repro.serving.config.serve` path: either from an explicit
    declarative ``config`` (in which case ``eps`` / ``delta`` /
    ``weight_bound`` / ``backend`` / ``mechanism`` / ``shards`` must
    be left at their defaults — the config is the single source of
    truth) or from those flag-style parameters assembled into one.
    With ``weight_bound`` set, epoch weights are additionally capped
    (:func:`~repro.workloads.traffic.congestion_weights` semantics) so
    the Section 4.2 covering mechanism can auto-select.  With 2+
    shards each epoch is a full sharded rebuild (regional tenants +
    boundary-hub relay); the replay itself never branches on sharding
    — both server shapes speak
    :class:`~repro.serving.config.DistanceServer`.

    ``telemetry`` is the bundle the replayed server records into; the
    default is a *fresh private* bundle per replay (or the null
    bundle when ``config.telemetry`` is off), so the report's latency
    quantiles measure this replay alone rather than whatever else the
    process-global registry has seen.  Pass a bundle explicitly to
    aggregate across replays or to export the full snapshot
    afterwards.

    ``audit_log`` and ``event_log`` are *operational* overrides,
    deliberately allowed alongside ``config=``: they rewrite
    ``config.audit_log`` / ``config.event_log`` so the replayed
    server appends its privacy audit trail and structured lifecycle
    events to those JSONL paths (see :mod:`repro.telemetry.audit` and
    :mod:`repro.telemetry.logging`).
    """
    if config is not None:
        overridden = {
            "eps": eps != 1.0,
            "delta": delta != 0.0,
            "weight_bound": weight_bound is not None,
            "mechanism": mechanism is not None,
            "shards": shards is not None,
            "backend": backend is not None,
        }
        clashes = sorted(k for k, v in overridden.items() if v)
        if clashes:
            raise GraphError(
                "replay_rush_hour got both config= and flag-style "
                f"parameters ({', '.join(clashes)}); pass one or the "
                "other"
            )
        eps, delta = config.eps, config.delta
        weight_bound = config.weight_bound
        backend = config.backend
    else:
        config = ServingConfig(
            mechanism=mechanism if mechanism is not None else "auto",
            eps=eps,
            delta=delta,
            weight_bound=weight_bound,
            backend=backend,
            shards=shards if shards is not None else 1,
        )
    if audit_log is not None:
        config = config.with_overrides(audit_log=audit_log)
    if event_log is not None:
        config = config.with_overrides(event_log=event_log)
    if telemetry is None:
        telemetry = Telemetry() if config.telemetry else NULL_TELEMETRY
    if epochs < 1:
        raise GraphError(f"need at least 1 epoch, got {epochs}")
    if queries_per_epoch < 1:
        raise GraphError(
            f"need at least 1 query per epoch, got {queries_per_epoch}"
        )
    network = grid_road_network(
        rows, cols, rng, block_minutes=block_minutes
    )

    def epoch_weights() -> WeightedGraph:
        center = (
            rng.uniform(0.0, float(cols - 1)),
            rng.uniform(0.0, float(rows - 1)),
        )
        hot_radius = max(min(rows, cols) / 4.0, 1.0)
        congested = rush_hour_scenario(
            network, rng, center=center, hot_radius=hot_radius,
            slowdown=slowdown,
        )
        if weight_bound is not None:
            # Cap the congested times at the public bound M so the
            # Section 4.2 mechanism's precondition holds.
            return congestion_weights(
                RoadNetwork(graph=congested, positions=network.positions),
                rng,
                congestion_level=0.0,
                cap=weight_bound,
            )
        return congested

    service: DistanceServer | None = None
    results: List[EpochResult] = []
    for epoch in range(epochs):
        graph = epoch_weights()
        if service is None:
            service = serve(graph, config, rng, telemetry=telemetry)
        else:
            service.refresh(graph)
        pairs = uniform_pairs(graph, queries_per_epoch, rng)
        batch = service.query_batch(pairs)
        # The ground-truth sweep dominates the replay's wall clock on
        # larger grids; spanning it keeps the phase profile's
        # attribution informative (it is measurement, not serving).
        with use_telemetry(telemetry), telemetry.span(
            "replay.ground_truth", epoch=epoch, pairs=len(pairs)
        ):
            exact = _exact_distances(graph, pairs, backend=backend)
        errors = [
            abs(answer - truth)
            for answer, truth in zip(batch.answers, exact)
        ]
        results.append(
            EpochResult(
                epoch=epoch,
                num_queries=batch.num_queries,
                unique_pairs=batch.num_unique,
                cache_hits=batch.cache_hits,
                elapsed_seconds=batch.elapsed_seconds,
                mean_abs_error=sum(errors) / len(errors),
                max_abs_error=max(errors),
            )
        )
    assert service is not None
    return SimulationReport(
        mechanism=service.mechanism,
        eps=eps,
        delta=delta,
        num_epochs=epochs,
        epochs=results,
        ledger_spends=len(service.ledger.records()),
        server_stats=service.stats.as_dict(),
        latency=_latency_summary(telemetry),
    )


def _latency_summary(telemetry: Telemetry) -> Dict[str, float]:
    """p50/p95/p99 (seconds) + count of every per-query latency the
    bundle saw, merged across label sets; empty when uninstrumented."""
    sketch = telemetry.registry.merged_histogram("serving.query.latency")
    if sketch is None or sketch.count == 0:
        return {}
    return {
        "p50": sketch.quantile(0.50),
        "p95": sketch.quantile(0.95),
        "p99": sketch.quantile(0.99),
        "count": sketch.count,
    }
