"""Sharded distance serving: regional tenants + boundary-hub relays.

A city-scale road network should not pay one monolithic synopsis
rebuild per epoch when congestion updates are regional.  This module
splits the public topology into ``k`` balanced, connected *shards*
(seeded BFS region growing — :func:`partition_graph`), runs one
CSR + synopsis + ledger tenant per shard, and stitches cross-shard
queries back together through a noisy hub structure built over the
*boundary* vertices (the endpoints of cut edges) with
:func:`repro.apsp.hubs.build_hub_structure`:

* an **intra-shard** query is routed to the owning shard's synopsis —
  the unsharded serving path on a ``V/k``-vertex graph — then capped
  by the relay decomposition below through the shard's *own* boundary,
  so a border pair whose best corridor dips into a neighboring shard
  is not stuck with the induced-subgraph detour (the min is pure
  post-processing, zero extra budget);
* a **cross-shard** query ``(s, t)`` is answered as the min over
  boundary exits ``b_s`` of ``shard(s)`` and entries ``b_t`` of
  ``shard(t)`` of ``d_s(s, b_s) + relay(b_s, b_t) + d_t(b_t, t)``,
  where the first and last terms come from the shard synopses (free
  post-processing) and the middle from the released boundary-hub
  relay table.  A true cross-shard shortest path stays inside
  ``shard(s)`` until it first leaves through some boundary vertex and
  inside ``shard(t)`` after it last enters, so in the noiseless limit
  the decomposition is consistent (up to the hub-relay detour).

Privacy accounting.  Every Laplace release in this library has privacy
loss proportional to the L1 perturbation of the edge weights it reads,
so releases over *disjoint* edge sets compose like parallel
composition: a neighboring weight function (total L1 change ``<= 1``
across all edges, Definition 2.1) splits its perturbation across the
shards, and the joint loss of the per-shard releases — each reading
only its shard's intra-shard edges — is at most ``max_i eps_i``.  The
relay table reads *all* edges (boundary-to-boundary distances traverse
the whole graph), so its budget adds.  One full build therefore costs
``eps_shard + eps_relay`` — the epoch budget — which
:class:`ShardedDistanceService` realizes by giving every shard tenant
``(1 - relay_fraction)`` of the epoch budget and the relay tenant the
remaining ``relay_fraction``, each spending under its own fail-closed
ledger tenant.  Regional refreshes *re-spend* within the epoch (the
other shards are still serving it), and the ledger caps every tenant
at the full per-tenant epoch budget — the standard multi-tenant
contract of :class:`~repro.serving.ledger.BudgetLedger` — so with the
default private ledger the worst-case per-epoch loss on any one
edge's weight once regional refreshes occur is ``(shard tenant cap) +
(relay tenant cap)``, i.e. 2x the epoch budget; size the epoch
budget, the relay fraction, or a stricter shared ledger accordingly.
The relay noise itself is priced by the shared
:func:`~repro.dp.composition.composed_noise_scale` accounting over the
distinct boundary pairs the hub structure releases.

With one shard there is no cut, no relay and no split: the single
tenant receives the full epoch budget and consumes the rng exactly
like the unsharded :class:`~repro.serving.service.DistanceService`, so
``ShardedDistanceService(shards=1)`` answers match it bit for bit
under the same seed.

Per-shard refresh (:meth:`ShardedDistanceService.refresh_shard`)
exploits the engine's cheap re-weighting: a regional congestion update
re-gathers the shard subgraph's weight array over the frozen CSR
structure, rebuilds only that shard's synopsis plus the relay table,
and leaves the other ``k - 1`` tenants serving untouched.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Dict, List, Mapping, MutableMapping, Sequence, Tuple

import numpy as np

from ..algorithms.traversal import is_connected
from ..apsp.hubs import HubStructure
from ..dp.params import PrivacyParams
from ..engine.csr import CSRGraph
from ..exceptions import (
    DisconnectedGraphError,
    GraphError,
    PrivacyError,
    VertexNotFoundError,
)
from ..graphs.graph import Edge, Vertex, WeightedGraph
from ..graphs.io import _decode_vertex, _encode_vertex
from ..mechanisms import MechanismParams, get_mechanism
from ..rng import Rng
from ..telemetry import Telemetry, get_telemetry, use_telemetry
from .batching import BatchPlanner, BatchReport, BoundedCache
from .estimates import Estimate
from .ledger import BudgetLedger
from .service import DistanceService, ServiceStats
from .synopsis import canonical_pair

__all__ = [
    "ShardPlan",
    "ShardedDistanceService",
    "partition_graph",
    "DEFAULT_RELAY_FRACTION",
]

#: Fraction of the epoch budget spent on the boundary-hub relay table
#: when the plan has two or more shards; the rest goes to every shard
#: tenant (parallel composition over disjoint intra-shard edge sets).
DEFAULT_RELAY_FRACTION = 0.5

_PLAN_FORMAT = "repro-shard-plan"
_PLAN_VERSION = 1


class ShardPlan:
    """A topology-only sharding of a graph's vertex set.

    Everything here — the assignment, the boundary, the cut edges — is
    derived from the public topology by a seeded partitioner, so the
    plan itself is data-independent and safe to publish or ship.

    Parameters
    ----------
    num_shards:
        How many shards the assignment uses (ids ``0..num_shards-1``).
    assignment:
        Vertex -> shard id, covering every vertex; each shard must be
        non-empty.
    boundary:
        The boundary vertices — endpoints of cut edges — in a stable
        order (this order is the relay structure's *site* order).
    cut_edges:
        The edges whose endpoints live in different shards.
    seed:
        The partitioner seed that produced the plan (provenance only).
    """

    def __init__(
        self,
        num_shards: int,
        assignment: Mapping[Vertex, int],
        boundary: Sequence[Vertex],
        cut_edges: Sequence[Edge],
        seed: int | None = None,
    ) -> None:
        if num_shards < 1:
            raise GraphError(f"need at least 1 shard, got {num_shards}")
        self._num_shards = int(num_shards)
        self._assignment: Dict[Vertex, int] = dict(assignment)
        members: List[List[Vertex]] = [[] for _ in range(self._num_shards)]
        for vertex, shard in self._assignment.items():
            if not 0 <= shard < self._num_shards:
                raise GraphError(
                    f"vertex {vertex!r} assigned to shard {shard}, "
                    f"expected [0, {self._num_shards})"
                )
            members[shard].append(vertex)
        for shard, shard_members in enumerate(members):
            if not shard_members:
                raise GraphError(f"shard {shard} has no vertices")
        self._members = [tuple(m) for m in members]
        self._boundary = tuple(boundary)
        self._boundary_set = frozenset(self._boundary)
        for vertex in self._boundary:
            if vertex not in self._assignment:
                raise GraphError(
                    f"boundary vertex {vertex!r} is not assigned a shard"
                )
        self._cut_edges = tuple((u, v) for u, v in cut_edges)
        self.seed = seed

    @classmethod
    def from_assignment(
        cls,
        graph: WeightedGraph,
        assignment: Mapping[Vertex, int],
        num_shards: int | None = None,
        seed: int | None = None,
    ) -> "ShardPlan":
        """Build a plan from an explicit assignment, deriving the
        boundary and cut edges from the graph's topology."""
        for vertex in graph.vertices():
            if vertex not in assignment:
                raise GraphError(
                    f"assignment misses vertex {vertex!r}"
                )
        if num_shards is None:
            num_shards = max(assignment.values()) + 1 if assignment else 1
        boundary_set = set()
        boundary: List[Vertex] = []
        cut_edges: List[Edge] = []
        for u, v, _ in graph.edges():
            if assignment[u] != assignment[v]:
                cut_edges.append((u, v))
                for endpoint in (u, v):
                    if endpoint not in boundary_set:
                        boundary_set.add(endpoint)
                        boundary.append(endpoint)
        # A stable, topology-derived site order: vertex insertion order.
        order = {vert: i for i, vert in enumerate(graph.vertices())}
        boundary.sort(key=lambda vert: order[vert])
        return cls(num_shards, assignment, boundary, cut_edges, seed=seed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """How many shards the plan defines."""
        return self._num_shards

    @property
    def boundary(self) -> Tuple[Vertex, ...]:
        """Boundary vertices in relay site order."""
        return self._boundary

    @property
    def cut_edges(self) -> Tuple[Edge, ...]:
        """Edges whose endpoints live in different shards."""
        return self._cut_edges

    @property
    def num_vertices(self) -> int:
        """How many vertices the plan assigns."""
        return len(self._assignment)

    def shard_of(self, vertex: Vertex) -> int:
        """The shard owning a vertex."""
        try:
            return self._assignment[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def members(self, shard: int) -> Tuple[Vertex, ...]:
        """The vertices of one shard, in graph insertion order."""
        if not 0 <= shard < self._num_shards:
            raise GraphError(
                f"shard id {shard} out of range [0, {self._num_shards})"
            )
        return self._members[shard]

    def shard_sizes(self) -> List[int]:
        """Vertex count per shard."""
        return [len(m) for m in self._members]

    def is_boundary(self, vertex: Vertex) -> bool:
        """Whether a vertex is an endpoint of a cut edge."""
        return vertex in self._boundary_set

    def assignment(self) -> Dict[Vertex, int]:
        """The full vertex -> shard mapping (a copy)."""
        return dict(self._assignment)

    # ------------------------------------------------------------------
    # Serialization (the plan is public topology — safe to ship)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the plan (all fields are public topology)."""
        return json.dumps(
            {
                "format": _PLAN_FORMAT,
                "version": _PLAN_VERSION,
                "num_shards": self._num_shards,
                "seed": self.seed,
                "assignment": [
                    [_encode_vertex(v), shard]
                    for v, shard in self._assignment.items()
                ],
                "boundary": [_encode_vertex(v) for v in self._boundary],
                "cut_edges": [
                    [_encode_vertex(u), _encode_vertex(v)]
                    for u, v in self._cut_edges
                ],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "ShardPlan":
        """Restore a plan serialized by :meth:`to_json`."""
        document = json.loads(text)
        if document.get("format") != _PLAN_FORMAT:
            raise GraphError("not a repro-shard-plan JSON document")
        if document.get("version") != _PLAN_VERSION:
            raise GraphError(
                f"unsupported shard-plan version "
                f"{document.get('version')!r}"
            )
        return cls(
            int(document["num_shards"]),
            {
                _decode_vertex(v): int(shard)
                for v, shard in document["assignment"]
            },
            [_decode_vertex(v) for v in document["boundary"]],
            [
                (_decode_vertex(u), _decode_vertex(v))
                for u, v in document["cut_edges"]
            ],
            seed=document.get("seed"),
        )

    def __repr__(self) -> str:
        return (
            f"ShardPlan(shards={self._num_shards}, "
            f"sizes={self.shard_sizes()}, "
            f"boundary={len(self._boundary)}, "
            f"cut_edges={len(self._cut_edges)})"
        )


def partition_graph(
    graph: WeightedGraph, shards: int, seed: int = 0
) -> ShardPlan:
    """Partition a connected graph into balanced, connected shards.

    Seeded BFS region growing: ``shards`` seed vertices are sampled
    uniformly (from ``Rng(seed)`` — never from a service rng, so the
    partition depends only on the public topology and the seed), then
    regions grow one vertex at a time, always the currently smallest
    region that still has an unassigned frontier vertex.  Each region
    grows only through adjacent vertices, so every shard induces a
    connected subgraph; the smallest-first rule keeps the sizes within
    a vertex of balanced wherever the topology allows.
    """
    if shards < 1:
        raise GraphError(f"need at least 1 shard, got {shards}")
    if shards > graph.num_vertices:
        raise GraphError(
            f"cannot split {graph.num_vertices} vertices into "
            f"{shards} shards"
        )
    if not is_connected(graph):
        raise DisconnectedGraphError(
            "sharded serving requires a connected graph"
        )
    csr = CSRGraph.from_graph(graph)
    n = csr.n
    indptr, indices = csr.indptr, csr.indices
    rng = Rng(seed)
    shard_of = np.full(n, -1, dtype=np.int64)
    seeds = rng.sample(range(n), shards)
    sizes = [1] * shards
    frontiers: List[deque] = []
    for shard, seed_vertex in enumerate(seeds):
        shard_of[seed_vertex] = shard
        frontiers.append(
            deque(
                int(x)
                for x in indices[indptr[seed_vertex] : indptr[seed_vertex + 1]]
            )
        )
    open_shards = set(range(shards))
    assigned = shards
    while assigned < n:
        if not open_shards:
            raise DisconnectedGraphError(
                "region growing stranded unassigned vertices"
            )
        shard = min(open_shards, key=lambda i: (sizes[i], i))
        frontier = frontiers[shard]
        grew = False
        while frontier:
            v = frontier.popleft()
            if shard_of[v] != -1:
                continue
            shard_of[v] = shard
            sizes[shard] += 1
            assigned += 1
            frontier.extend(
                int(x) for x in indices[indptr[v] : indptr[v + 1]]
            )
            grew = True
            break
        if not grew:
            open_shards.discard(shard)
    vertices = csr.vertices
    assignment = {
        vertices[i]: int(shard_of[i]) for i in range(n)
    }
    return ShardPlan.from_assignment(
        graph, assignment, num_shards=shards, seed=seed
    )


class ShardedDistanceService:
    """A private distance service partitioned into regional tenants.

    Parameters
    ----------
    graph:
        Public topology + the current epoch's private weights
        (connected).
    epoch_budget:
        The ``(eps, delta)`` guarantee promised per epoch (a bare
        float is taken as pure eps).  With two or more shards the
        budget splits ``(1 - relay_fraction)`` to every shard tenant
        (parallel composition over disjoint intra-shard edge sets)
        and ``relay_fraction`` to the boundary-hub relay; with one
        shard the single tenant receives it all and the service is
        seeded-identical to the unsharded
        :class:`~repro.serving.service.DistanceService`.
    rng:
        Noise source, consumed shard 0..k-1 then relay — a fixed,
        reproducible order.
    shards:
        How many shards to partition into (ignored when ``plan`` is
        given).
    weight_bound, mechanism, backend:
        Forwarded to every shard's
        :class:`~repro.serving.service.DistanceService`.
    ledger:
        Share a ledger with other products; defaults to a private
        ledger with ``epoch_budget`` per tenant per epoch.  Every
        shard spends under ``{tenant}/shard-{i}`` and the relay under
        ``{tenant}/relay``, each failing closed independently.
    plan:
        Use an existing :class:`ShardPlan` instead of partitioning.
    partition_seed:
        Seed for :func:`partition_graph` (topology-only).
    relay_fraction:
        Fraction of the epoch budget spent on the relay table when
        there are two or more shards (default
        :data:`DEFAULT_RELAY_FRACTION`).
    relay_hub_count, relay_ball_size:
        Overrides for the relay hub structure (defaults
        ``~sqrt(|boundary|)``).
    telemetry:
        The :class:`~repro.telemetry.Telemetry` bundle the service —
        and every shard tenant — records into; ``None`` captures the
        process's current bundle.  Instrumentation never touches the
        rng, so routed answers are bit-identical whatever bundle is
        in force.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        epoch_budget: PrivacyParams | float,
        rng: Rng,
        shards: int | None = None,
        weight_bound: float | None = None,
        mechanism: str | None = None,
        ledger: BudgetLedger | None = None,
        tenant: str = "sharded-distance-service",
        backend: str | None = None,
        plan: ShardPlan | None = None,
        partition_seed: int = 0,
        relay_fraction: float = DEFAULT_RELAY_FRACTION,
        relay_hub_count: int | None = None,
        relay_ball_size: int | None = None,
        cache_size: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if isinstance(epoch_budget, (int, float)):
            epoch_budget = PrivacyParams(float(epoch_budget))
        if plan is None:
            if shards is None:
                raise GraphError(
                    "ShardedDistanceService needs either shards= or "
                    "plan="
                )
            plan = partition_graph(graph, shards, seed=partition_seed)
        else:
            if shards is not None and shards != plan.num_shards:
                raise GraphError(
                    f"shards={shards} disagrees with the plan's "
                    f"{plan.num_shards}"
                )
            if plan.num_vertices != graph.num_vertices:
                raise GraphError(
                    f"plan assigns {plan.num_vertices} vertices but "
                    f"the graph has {graph.num_vertices}"
                )
        self._plan = plan
        self._budget = epoch_budget
        self._rng = rng
        self._tenant = tenant
        self._backend = backend
        self._owns_ledger = ledger is None
        self._ledger = ledger if ledger is not None else BudgetLedger(
            epoch_budget
        )
        self._telemetry = (
            telemetry if telemetry is not None else get_telemetry()
        )
        # Same gate as the unsharded service: the observed query path
        # (per-query spans + flight-recorder offers) only runs when a
        # profiler or flight recorder is live on the bundle.
        self._observed = (
            self._telemetry.flight.enabled
            or self._telemetry.profiler.enabled
        )
        self._stats = ServiceStats(
            telemetry=self._telemetry, tenant=tenant
        )
        self._cache: MutableMapping[Tuple[Vertex, Vertex], float] = (
            {} if cache_size is None else BoundedCache(cache_size)
        )
        self._graph = graph

        if plan.num_shards == 1:
            # No cut, no relay, no split: bit-for-bit the unsharded
            # service under the same seed.
            self._shard_params = epoch_budget
            self._relay_params: PrivacyParams | None = None
        else:
            if not 0.0 < relay_fraction < 1.0:
                raise PrivacyError(
                    f"relay_fraction must be in (0, 1), got "
                    f"{relay_fraction}"
                )
            self._shard_params = PrivacyParams(
                epoch_budget.eps * (1.0 - relay_fraction),
                epoch_budget.delta * (1.0 - relay_fraction),
            )
            self._relay_params = PrivacyParams(
                epoch_budget.eps * relay_fraction,
                epoch_budget.delta * relay_fraction,
            )
        self._relay_hub_count = relay_hub_count
        self._relay_ball_size = relay_ball_size
        self._relay: HubStructure | None = None

        # Edge classification over the full graph's canonical edge
        # order: owning shard for intra-shard edges, -1 for cut edges.
        # This is what lets refresh_shard verify an update really is
        # regional before committing it.
        plan_of = plan.shard_of
        self._edge_keys = graph.edge_list()
        edge_shard = np.empty(len(self._edge_keys), dtype=np.int64)
        for e, (u, v) in enumerate(self._edge_keys):
            su, sv = plan_of(u), plan_of(v)
            edge_shard[e] = su if su == sv else -1
        self._edge_shard = edge_shard

        # Relay site bookkeeping (static across refreshes: the plan and
        # boundary are topology-only).
        self._shard_boundary: List[Tuple[Vertex, ...]] = []
        self._site_pos: List[np.ndarray] = []
        site_shard = np.asarray(
            [plan_of(v) for v in plan.boundary], dtype=np.int64
        )
        for shard in range(plan.num_shards):
            positions = np.flatnonzero(site_shard == shard)
            self._site_pos.append(positions)
            self._shard_boundary.append(
                tuple(plan.boundary[int(p)] for p in positions)
            )
        self._site_shard = site_shard
        # Local position of each site within its shard's boundary list.
        site_local = np.zeros(len(plan.boundary), dtype=np.int64)
        for positions in self._site_pos:
            site_local[positions] = np.arange(len(positions))
        self._site_local = site_local
        self._relay_ball_cross: Dict[
            Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}

        # Build every shard tenant (spend-then-release inside each
        # DistanceService), then the relay — a fixed rng order.
        self._shard_graphs: List[WeightedGraph] = []
        self._shard_edge_keys: List[List[Edge]] = []
        self._services: List[DistanceService] = []
        for shard in range(plan.num_shards):
            sub = graph.subgraph(plan.members(shard))
            self._shard_graphs.append(sub)
            self._shard_edge_keys.append(sub.edge_list())
            self._services.append(
                DistanceService(
                    sub,
                    self._shard_params,
                    rng,
                    weight_bound=weight_bound,
                    mechanism=mechanism,
                    ledger=self._ledger,
                    tenant=f"{tenant}/shard-{shard}",
                    backend=backend,
                    telemetry=self._telemetry,
                )
            )
        if self._relay_params is not None:
            self._build_relay()
        self._stats.record_epoch_built()
        self._bind_metrics()
        self._telemetry.log.emit(
            "service.start",
            tenant=self._tenant,
            epoch=self._ledger.epoch,
            mechanism=self.mechanism,
            backend=self._backend,
            shards=self._plan.num_shards,
        )

    # ------------------------------------------------------------------
    # Relay construction
    # ------------------------------------------------------------------

    def _build_relay(self) -> None:
        """Release the boundary-hub relay table for the current epoch.

        Spends the relay tenant's budget first (fail closed — a
        refused spend draws no noise), then asks the registry's
        ``boundary-relay`` mechanism for a hub structure over the
        boundary sites on the *full* graph's CSR, so relay distances
        may traverse any shard.
        """
        assert self._relay_params is not None
        boundary = self._plan.boundary
        m = len(boundary)
        if m == 0:
            raise GraphError(
                "multi-shard plan has no boundary vertices"
            )
        start = time.perf_counter()
        with use_telemetry(self._telemetry), self._telemetry.span(
            "relay.build", sites=m, tenant=self._tenant
        ):
            relay_mechanism = get_mechanism("boundary-relay")
            relay_params = MechanismParams(
                budget=self._relay_params,
                sites=boundary,
                hub_count=self._relay_hub_count,
                ball_size=self._relay_ball_size,
            )
            relay_mechanism.validate(self._graph, relay_params)
            self._ledger.spend(
                self._relay_params,
                tenant=f"{self._tenant}/relay",
                label=(
                    f"epoch {self._ledger.epoch} boundary-hub relay "
                    f"({m} sites)"
                ),
            )
            structure = relay_mechanism.build(
                self._graph, relay_params, self._rng
            ).structure
            self._telemetry.audit.record(
                "relay.build",
                epoch=self._ledger.epoch,
                tenant=f"{self._tenant}/relay",
                sites=m,
            )
        self._telemetry.registry.histogram(
            "build.latency", phase="relay", mechanism="boundary-relay"
        ).observe(time.perf_counter() - start)
        # Bucket the ball table by shard pair once per build (the hub
        # sample is redrawn each epoch, so exclusions change too).
        # Same-shard buckets ((i, i)) refine the intra-shard relay cap.
        buckets: Dict[Tuple[int, int], List[List[float]]] = {}
        for key, value in structure.ball.items():
            lo, hi = divmod(key, m)
            pair = (
                int(self._site_shard[lo]),
                int(self._site_shard[hi]),
            )
            if pair[0] > pair[1]:
                pair = (pair[1], pair[0])
                lo, hi = hi, lo
            buckets.setdefault(pair, [[], [], []])
            rows = buckets[pair]
            rows[0].append(int(self._site_local[lo]))
            rows[1].append(int(self._site_local[hi]))
            rows[2].append(value)
        self._relay_ball_cross = {
            pair: (
                np.asarray(rows[0], dtype=np.int64),
                np.asarray(rows[1], dtype=np.int64),
                np.asarray(rows[2], dtype=float),
            )
            for pair, rows in buckets.items()
        }
        self._relay = structure

    def _require_relay(self) -> HubStructure:
        if self._relay is None:
            raise PrivacyError(
                "no boundary-hub relay for the current epoch (the "
                "last rebuild failed); refresh before serving "
                "cross-shard queries"
            )
        return self._relay

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------

    def refresh(self, graph: WeightedGraph | None = None) -> None:
        """Start a new epoch: rebuild every shard and the relay.

        A privately owned ledger is rotated (the new weights are a new
        database); a shared ledger is left to its owner, and the
        rebuilds spend from the remaining epoch budget, failing closed
        per tenant.
        """
        with use_telemetry(self._telemetry), self._telemetry.span(
            "epoch.refresh", tenant=self._tenant,
            shards=self._plan.num_shards,
        ):
            if self._owns_ledger:
                self._ledger.rotate()
            if graph is not None:
                if graph.num_vertices != self._plan.num_vertices:
                    raise GraphError(
                        f"refresh graph has {graph.num_vertices} "
                        f"vertices; the plan assigns "
                        f"{self._plan.num_vertices}"
                    )
                self._graph = graph
            self._cache.clear()
            # Drop the relay first: if any rebuild fails partway the
            # service must refuse cross-shard answers from the old
            # epoch.
            self._relay = None
            for shard in range(self._plan.num_shards):
                sub = self._reweighted_shard(shard, self._graph)
                self._shard_graphs[shard] = sub
                self._services[shard].refresh(sub)
            if self._relay_params is not None:
                self._build_relay()
            self._telemetry.audit.record(
                "epoch.refresh",
                epoch=self._ledger.epoch,
                tenant=self._tenant,
                shards=self._plan.num_shards,
                rotated=self._owns_ledger,
            )
            self._telemetry.log.emit(
                "epoch.refresh",
                tenant=self._tenant,
                epoch=self._ledger.epoch,
                shards=self._plan.num_shards,
                rotated=self._owns_ledger,
            )
        self._stats.record_epoch_built()
        self._bind_metrics()

    def refresh_shard(
        self,
        shard: int,
        weights: Mapping[Edge, float] | Sequence[float] | None = None,
    ) -> None:
        """Regional epoch update: rebuild one shard plus the relay.

        ``weights`` (a mapping or a vector aligned with the full
        graph's :meth:`~repro.graphs.graph.WeightedGraph.edge_list`)
        may only differ from the current weights on the shard's own
        edges and on cut edges — anything else would silently stale
        the untouched tenants, so it raises
        :class:`~repro.exceptions.GraphError` before any budget is
        spent.  ``None`` re-releases the shard on the current weights.

        The shard tenant and the relay tenant each spend again from
        the remaining epoch budget (no rotation — the other shards
        are still serving this epoch), so refreshed regions
        accumulate loss toward each tenant's per-epoch cap (see the
        module docstring's accounting note), failing closed
        independently:
        a refused shard spend leaves the relay and the other shards
        untouched; a refused relay spend leaves every shard serving
        but cross-shard queries refusing until the next successful
        refresh.
        """
        if not 0 <= shard < self._plan.num_shards:
            raise GraphError(
                f"shard id {shard} out of range "
                f"[0, {self._plan.num_shards})"
            )
        with use_telemetry(self._telemetry), self._telemetry.span(
            "shard.refresh", shard=shard, tenant=self._tenant
        ):
            if weights is not None:
                new_graph = self._graph.with_weights(weights)
                self._check_regional(shard, new_graph)
            else:
                new_graph = self._graph
            sub = self._reweighted_shard(shard, new_graph)
            # Fails closed on budget before any noise is drawn; on
            # failure the shard refuses to serve but nothing else
            # moved.
            self._services[shard].refresh(sub)
            self._graph = new_graph
            self._shard_graphs[shard] = sub
            self._cache.clear()
            self._stats.record_shard_refresh()
            if self._relay_params is not None:
                self._relay = None
                self._build_relay()
            self._telemetry.audit.record(
                "shard.refresh",
                epoch=self._ledger.epoch,
                tenant=self._tenant,
                shard=shard,
            )
            self._telemetry.log.emit(
                "shard.refresh",
                tenant=self._tenant,
                epoch=self._ledger.epoch,
                shard=shard,
            )
        self._bind_metrics()

    def _reweighted_shard(  # privlint: ignore[PL1] feeds the shard tenant's budgeted synopsis build
        self, shard: int, graph: WeightedGraph
    ) -> WeightedGraph:
        """The shard subgraph re-weighted from the full graph — an
        O(edges) gather over the frozen topology (the subgraph clone
        keeps the compiled CSR structure)."""
        return self._shard_graphs[shard].with_weights(
            [graph.weight(u, v) for u, v in self._shard_edge_keys[shard]]
        )

    def _check_regional(
        self, shard: int, new_graph: WeightedGraph
    ) -> None:
        old = self._graph.weight_vector()
        new = new_graph.weight_vector()
        changed = old != new
        allowed = (self._edge_shard == shard) | (self._edge_shard == -1)
        bad = changed & ~allowed
        if bad.any():
            edge = self._edge_keys[int(np.argmax(bad))]
            raise GraphError(
                f"refresh_shard({shard}) may only change weights of "
                f"shard-{shard} edges and cut edges; edge {edge!r} "
                f"belongs elsewhere (use refresh() for a full epoch)"
            )

    # ------------------------------------------------------------------
    # Query serving (post-processing only)
    # ------------------------------------------------------------------

    def _distance(self, s: Vertex, i: int, t: Vertex, j: int) -> float:
        if i == j:
            direct = self._services[i].synopsis.distance(s, t)
            if s == t or self._relay is None:
                # Single-shard service, or a failed relay rebuild:
                # intra answers keep serving from the shard synopsis.
                return direct
            # A border pair's best corridor may dip into a neighboring
            # shard, which the induced-subgraph synopsis cannot see;
            # cap the detour with the relay decomposition through the
            # shard's own boundary (free post-processing).
            return min(direct, self._relay_candidate(s, i, t, j))
        return self._cross_distance(s, i, t, j)

    def _boundary_distances(self, shard: int, v: Vertex) -> np.ndarray:
        """Released distances from ``v`` to its shard's boundary
        vertices (free post-processing of the shard synopsis)."""
        synopsis = self._services[shard].synopsis
        return np.asarray(
            [
                synopsis.distance(v, b)
                for b in self._shard_boundary[shard]
            ],
            dtype=float,
        )

    def _cross_distance(
        self, s: Vertex, i: int, t: Vertex, j: int
    ) -> float:
        """The boundary-hub relay estimate for a cross-shard pair
        (fails closed when the relay is missing)."""
        self._require_relay()
        return self._relay_candidate(s, i, t, j)

    def _relay_candidate(
        self, s: Vertex, i: int, t: Vertex, j: int
    ) -> float:
        """The relay decomposition estimate for any pair.

        ``min_{b_s, b_t} d_i(s, b_s) + relay(b_s, b_t) + d_j(b_t, t)``
        over shard ``i``'s and shard ``j``'s boundary vertices,
        computed as a vectorized min over hub relays (the relay term
        subsumes direct boundary-boundary hub lookups because hub
        self-distances are exactly 0), refined by the relay's
        local-ball entries for the shard pair, clamped at 0 — pure
        post-processing of released values.  With ``i == j`` this is
        the intra-shard cap for corridors leaving the shard.
        """
        structure = self._relay
        assert structure is not None
        ds = self._boundary_distances(i, s)
        dt = self._boundary_distances(j, t)
        matrix = structure.matrix
        via_s = np.min(matrix[:, self._site_pos[i]] + ds, axis=1)
        via_t = np.min(matrix[:, self._site_pos[j]] + dt, axis=1)
        best = float(np.min(via_s + via_t))
        pair = (i, j) if i <= j else (j, i)
        bucket = self._relay_ball_cross.get(pair)
        if bucket is not None:
            lo_local, hi_local, values = bucket
            if i == j:
                # Both orientations: ds and dt differ over the same
                # boundary list.
                best = min(
                    best,
                    float((ds[lo_local] + values + dt[hi_local]).min()),
                    float((ds[hi_local] + values + dt[lo_local]).min()),
                )
            elif i < j:
                best = min(
                    best, float((ds[lo_local] + values + dt[hi_local]).min())
                )
            else:
                best = min(
                    best, float((ds[hi_local] + values + dt[lo_local]).min())
                )
        return max(best, 0.0)

    def _bind_metrics(self) -> None:
        """Re-resolve the hot-path latency histograms.

        Called after every build so the ``mechanism`` label tracks the
        shards' current selections without a registry lookup per
        query.  Point queries are split by ``route`` (intra vs.
        cross-shard) — the routes have very different cost profiles.
        """
        registry = self._telemetry.registry
        mechanism = self.mechanism
        self._intra_latency = registry.histogram(
            "serving.query.latency",
            service="sharded",
            mechanism=mechanism,
            route="intra",
        )
        self._cross_latency = registry.histogram(
            "serving.query.latency",
            service="sharded",
            mechanism=mechanism,
            route="cross",
        )
        self._batch_latency = registry.histogram(
            "serving.batch.latency",
            service="sharded",
            mechanism=mechanism,
        )

    def query(self, source: Vertex, target: Vertex) -> float:
        """Answer one distance query, routed by shard ownership."""
        i = self._plan.shard_of(source)
        j = self._plan.shard_of(target)
        if self._observed:
            return self._query_observed(source, i, target, j)
        start = time.perf_counter()
        key = canonical_pair(source, target)
        hit = key in self._cache
        if hit:
            value = self._cache[key]
        else:
            value = self._distance(source, i, target, j)
            self._cache[key] = value
        latency = self._intra_latency if i == j else self._cross_latency
        latency.observe(time.perf_counter() - start)
        self._stats.record_point_query(hit)
        return value

    def _query_observed(
        self, source: Vertex, i: int, target: Vertex, j: int
    ) -> float:
        """The routed query path when a profiler or flight recorder
        is live: same lookups in the same order (answers
        bit-identical), wrapped in a ``query.point`` span and offered
        to the flight recorder afterwards."""
        route = "intra" if i == j else "cross"
        start = time.perf_counter()
        with self._telemetry.span(
            "query.point",
            tenant=self._tenant,
            route=route,
            mechanism=self.mechanism,
        ) as span:
            key = canonical_pair(source, target)
            hit = key in self._cache
            if hit:
                value = self._cache[key]
            else:
                value = self._distance(source, i, target, j)
                self._cache[key] = value
            span.set_attribute("cache_hit", hit)
        elapsed = time.perf_counter() - start
        latency = self._intra_latency if i == j else self._cross_latency
        latency.observe(elapsed)
        self._stats.record_point_query(hit)
        self._telemetry.flight.consider(
            elapsed,
            pair=(source, target),
            route=route,
            mechanism=self.mechanism,
            epoch=self._ledger.epoch,
            tenant=self._tenant,
            span=span,
            cache_hit=hit,
        )
        return value

    def query_batch(
        self, pairs: Sequence[Tuple[Vertex, Vertex]]
    ) -> BatchReport:
        """Serve a batch with in-batch dedup and the cross-batch
        cache; answers align with the input order.  Delegates to
        :class:`~repro.serving.batching.BatchPlanner` over the shard
        router, so batch accounting stays identical to the unsharded
        service's."""
        planner = BatchPlanner(
            _ShardRouter(self),
            cache=self._cache,
            telemetry=self._telemetry,
            labels={"service": "sharded", "mechanism": self.mechanism},
        )
        report = planner.run(pairs)
        self._batch_latency.observe(report.elapsed_seconds)
        self._stats.record_batch(report)
        return report

    def _noise_scale_for(
        self, s: Vertex, i: int, t: Vertex, j: int, value: float
    ) -> float:
        """The effective noise scale behind the routed answer
        ``value``.

        Intra-shard answers report the owning synopsis's per-pair
        scale unless the relay cap won the min, in which case — like
        every cross-shard answer — the scale is the composed relay
        chain ``sigma_i + 2 rho + sigma_j`` (one released boundary leg
        per endpoint shard at its synopsis's per-entry scale, plus the
        two-entry relay term).  Which branch served the pair is read
        off the value itself (``value == min(direct, cap)``, so the
        direct estimate won iff it equals the value — one synopsis
        lookup, no relay recomputation).  Deterministic
        post-processing: no rng, no budget.
        """
        if s == t:
            return 0.0
        if i == j:
            synopsis = self._services[i].synopsis
            if (
                self._relay is None
                or synopsis.distance(s, t) == value
            ):
                return synopsis.noise_scale_for(s, t)
        relay = self._require_relay()
        return (
            self._services[i].synopsis.noise_scale
            + 2.0 * relay.noise_scale
            + self._services[j].synopsis.noise_scale
        )

    def estimate(self, source: Vertex, target: Vertex) -> Estimate:
        """One routed query as a rich
        :class:`~repro.serving.estimates.Estimate` — the ``query()``
        value (bit-identical, shared cache and counters) plus the
        composed noise scale of the branch that served it."""
        value = self.query(source, target)
        i = self._plan.shard_of(source)
        j = self._plan.shard_of(target)
        return Estimate(
            value=value,
            noise_scale=self._noise_scale_for(
                source, i, target, j, value
            ),
            mechanism=self.mechanism,
            epoch=self._ledger.epoch,
        )

    def estimate_batch(  # privlint: ignore[PL1] serves values post-processed from the budget-accounted noised shard synopses
        self, pairs: Sequence[Tuple[Vertex, Vertex]]
    ) -> List[Estimate]:
        """A batch of rich estimates, aligned with the input order
        (values via :meth:`query_batch`; scales are free
        post-processing)."""
        report = self.query_batch(pairs)
        mechanism, epoch = self.mechanism, self._ledger.epoch
        return [
            Estimate(
                value=value,
                noise_scale=self._noise_scale_for(
                    s,
                    self._plan.shard_of(s),
                    t,
                    self._plan.shard_of(t),
                    value,
                ),
                mechanism=mechanism,
                epoch=epoch,
            )
            for (s, t), value in zip(pairs, report.answers)
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def plan(self) -> ShardPlan:
        """The (public) shard plan the service routes by."""
        return self._plan

    @property
    def num_shards(self) -> int:
        """How many shard tenants the service runs."""
        return self._plan.num_shards

    @property
    def shard_services(self) -> Tuple[DistanceService, ...]:
        """The per-shard tenant services, in shard order."""
        return tuple(self._services)

    @property
    def shard_mechanisms(self) -> Tuple[str, ...]:
        """The mechanism each shard tenant selected."""
        return tuple(s.mechanism for s in self._services)

    @property
    def mechanism(self) -> str:
        """A summary label: the inner mechanism for one shard, or
        ``sharded(KxMECH+relay)`` for a multi-shard service."""
        inner = sorted(set(self.shard_mechanisms))
        label = inner[0] if len(inner) == 1 else "mixed"
        if self._plan.num_shards == 1:
            return label
        return f"sharded({self._plan.num_shards}x{label}+relay)"

    @property
    def relay(self) -> HubStructure | None:
        """The released boundary-hub relay structure (``None`` for a
        single-shard service, or after a failed rebuild)."""
        return self._relay

    @property
    def relay_params(self) -> PrivacyParams | None:
        """The relay tenant's per-epoch budget share."""
        return self._relay_params

    @property
    def shard_params(self) -> PrivacyParams:
        """Each shard tenant's per-epoch budget share."""
        return self._shard_params

    @property
    def ledger(self) -> BudgetLedger:
        """The budget ledger every tenant spends against."""
        return self._ledger

    @property
    def epoch(self) -> int:
        """The ledger epoch currently being served."""
        return self._ledger.epoch

    @property
    def epoch_budget(self) -> PrivacyParams:
        """The per-epoch privacy budget (before the split)."""
        return self._budget

    @property
    def backend(self) -> str | None:
        """The engine backend forwarded to shard tenants."""
        return self._backend

    @property
    def stats(self) -> ServiceStats:
        """Running serving counters (top-level routing; each shard
        tenant also keeps its own)."""
        return self._stats

    @property
    def telemetry(self) -> Telemetry:
        """The telemetry bundle this service (and every shard tenant)
        records into."""
        return self._telemetry

    def __repr__(self) -> str:
        return (
            f"ShardedDistanceService(shards={self._plan.num_shards}, "
            f"mechanism={self.mechanism!r}, budget={self._budget}, "
            f"epoch={self._ledger.epoch}, "
            f"boundary={len(self._plan.boundary)})"
        )


class _ShardRouter:
    """Adapter exposing the sharded routing path through the synopsis
    surface (``distance(s, t)``) that
    :class:`~repro.serving.batching.BatchPlanner` plans over."""

    __slots__ = ("_service",)

    def __init__(self, service: ShardedDistanceService) -> None:
        self._service = service

    def distance(self, source: Vertex, target: Vertex) -> float:
        service = self._service
        return service._distance(
            source,
            service._plan.shard_of(source),
            target,
            service._plan.shard_of(target),
        )
