"""The private distance query-serving engine.

The paper's mechanisms release a synopsis once; differential privacy's
post-processing property then makes every query answered from it free.
This package turns that observation into a serving architecture:

* :mod:`repro.serving.synopsis` — immutable, serializable synopsis
  objects wrapping each release family, with a registry keyed by kind
  and per-pair noise-scale introspection;
* :mod:`repro.serving.ledger` — a multi-tenant, epoch-rotating budget
  ledger that fails closed;
* :mod:`repro.serving.service` — :class:`DistanceService`, the façade
  that picks the best mechanism from the :mod:`repro.mechanisms`
  registry and serves point/batch queries with an answer cache;
* :mod:`repro.serving.estimates` — :class:`Estimate`, the rich query
  result (value + noise scale + Laplace-CDF confidence interval);
* :mod:`repro.serving.config` — :class:`ServingConfig`, the
  declarative JSON-round-trippable deployment document, and
  :func:`serve`, the one factory returning a
  :class:`DistanceServer` (sharded or not);
* :mod:`repro.serving.batching` — batch planning: dedupe, vectorized
  noise, latency reporting, the bounded answer cache;
* :mod:`repro.serving.sharding` — sharded serving: a topology-only
  partitioner, one synopsis + ledger tenant per shard, and noisy
  boundary-hub relays stitching cross-shard queries back together;
* :mod:`repro.serving.simulate` — rush-hour traffic replay measuring
  throughput and empirical error through the one serving interface.
"""

from .batching import BatchPlanner, BatchReport, BoundedCache, fresh_batch
from .ledger import BudgetLedger, LedgerEntry
from .estimates import Estimate
from .service import (
    DistanceService,
    MECHANISMS,
    ServiceStats,
    select_mechanism,
)
from .sharding import (
    ShardPlan,
    ShardedDistanceService,
    partition_graph,
)
from .config import (
    DistanceServer,
    EPOCH_POLICIES,
    ServingConfig,
    serve,
)
from .simulate import EpochResult, SimulationReport, replay_rush_hour
from .synopsis import (
    AllPairsSynopsis,
    BoundedWeightSynopsis,
    DistanceSynopsis,
    HubBoundedSynopsis,
    HubSetSynopsis,
    SinglePairSynopsis,
    TreeSynopsis,
    build_all_pairs_synopsis,
    build_single_pair_synopsis,
    register_synopsis,
    synopsis_from_json,
)

__all__ = [
    "DistanceService",
    "DistanceServer",
    "ServingConfig",
    "serve",
    "EPOCH_POLICIES",
    "Estimate",
    "ServiceStats",
    "select_mechanism",
    "MECHANISMS",
    "ShardPlan",
    "ShardedDistanceService",
    "partition_graph",
    "BudgetLedger",
    "LedgerEntry",
    "BatchPlanner",
    "BatchReport",
    "BoundedCache",
    "fresh_batch",
    "DistanceSynopsis",
    "SinglePairSynopsis",
    "AllPairsSynopsis",
    "TreeSynopsis",
    "BoundedWeightSynopsis",
    "HubSetSynopsis",
    "HubBoundedSynopsis",
    "build_all_pairs_synopsis",
    "build_single_pair_synopsis",
    "register_synopsis",
    "synopsis_from_json",
    "EpochResult",
    "SimulationReport",
    "replay_rush_hour",
]
