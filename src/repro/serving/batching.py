"""Batch query planning: dedupe, serve, measure.

Heavy traffic repeats itself — rush-hour riders overwhelmingly ask
about the same popular origin/destination pairs.  The planner exploits
that twice:

* within a batch, duplicate (unordered) pairs are answered once and
  fanned back out to every requester;
* across batches, a shared answer cache short-circuits pairs any
  earlier batch resolved.

Both are pure post-processing of an already-released synopsis, so a
batch of any size costs zero additional privacy budget.  For workloads
served *without* a standing synopsis, :func:`fresh_batch` releases the
batch itself as a :class:`~repro.serving.synopsis.SinglePairSynopsis`
— one vectorized ``Lap(Q/eps)`` draw via
:meth:`~repro.rng.Rng.laplace_vector` rather than ``Q`` scalar draws.

Every batch returns a :class:`BatchReport` with wall-clock latency and
throughput, the raw material for the serving benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, MutableMapping, Sequence, Tuple

from ..dp.params import PrivacyParams
from ..exceptions import GraphError
from ..graphs.graph import Vertex, WeightedGraph
from ..rng import Rng
from ..telemetry import Telemetry, get_telemetry
from .ledger import BudgetLedger
from .synopsis import (
    DistanceSynopsis,
    SinglePairSynopsis,
    build_single_pair_synopsis,
    canonical_pair,
)

__all__ = ["BatchPlanner", "BatchReport", "BoundedCache", "fresh_batch"]

Pair = Tuple[Vertex, Vertex]


class BoundedCache(MutableMapping):
    """An LRU-bounded answer cache for the serving services.

    Drop-in for the unbounded dict cache (the
    ``ServingConfig.cache_size`` knob): holds at most ``maxsize``
    canonical pairs, evicting the least recently *used* entry on
    overflow.  Purely a memory bound — an evicted answer is recomputed
    bit-identically from the immutable synopsis on the next miss, it
    just stops being free.
    """

    __slots__ = ("_maxsize", "_data")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise GraphError(
                f"cache size must be at least 1, got {maxsize}"
            )
        self._maxsize = int(maxsize)
        self._data: Dict[Pair, float] = {}

    @property
    def maxsize(self) -> int:
        """The cache's entry bound."""
        return self._maxsize

    def __getitem__(self, key: Pair) -> float:
        # Move-to-end on hit: dicts iterate in insertion order, so
        # re-inserting makes the first key the least recently used.
        value = self._data.pop(key)
        self._data[key] = value
        return value

    def __setitem__(self, key: Pair, value: float) -> None:
        self._data.pop(key, None)
        self._data[key] = value
        if len(self._data) > self._maxsize:
            self._data.pop(next(iter(self._data)))

    def __delitem__(self, key: Pair) -> None:
        del self._data[key]

    def __iter__(self):
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data


@dataclass
class BatchReport:
    """The outcome of one served batch."""

    #: Answers aligned one-to-one with the input pair sequence.
    answers: List[float] = field(default_factory=list)
    #: How many queries the batch contained.
    num_queries: int = 0
    #: Distinct unordered pairs after deduplication.
    num_unique: int = 0
    #: Queries answered straight from the cross-batch cache.
    cache_hits: int = 0
    #: Wall-clock seconds spent serving the batch.
    elapsed_seconds: float = 0.0
    #: Wall-clock seconds spent building a release for the batch
    #: (:func:`fresh_batch` only; 0 when served from a standing
    #: synopsis).  Kept separate so :attr:`queries_per_second` always
    #: measures pure serving throughput.
    build_seconds: float = 0.0

    @property
    def queries_per_second(self) -> float:
        """Throughput; 0 for an empty or instantaneous batch."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.num_queries / self.elapsed_seconds


class BatchPlanner:
    """Plans and serves batches of distance queries from a synopsis.

    Parameters
    ----------
    synopsis:
        Any :class:`~repro.serving.synopsis.DistanceSynopsis`.
    cache:
        A mutable mapping shared across batches; pass ``None`` for a
        private per-planner cache.  Keys are canonical unordered pairs.
    telemetry:
        The :class:`~repro.telemetry.Telemetry` bundle per-query
        latencies and ``batch.serve`` spans are recorded into;
        ``None`` captures the process's current bundle.  Timing never
        touches the synopsis or any rng, so answers are bit-identical
        regardless.
    labels:
        Extra labels for the ``serving.query.latency`` histogram
        (the services pass ``service``/``mechanism``).
    """

    def __init__(
        self,
        synopsis: DistanceSynopsis,
        cache: MutableMapping[Pair, float] | None = None,
        telemetry: Telemetry | None = None,
        labels: Dict[str, str] | None = None,
    ) -> None:
        self._synopsis = synopsis
        self._cache: MutableMapping[Pair, float] = (
            cache if cache is not None else {}
        )
        self._telemetry = (
            telemetry if telemetry is not None else get_telemetry()
        )
        self._labels = dict(labels) if labels else {}
        self._latency = self._telemetry.registry.histogram(
            "serving.query.latency", **self._labels
        )

    @property
    def synopsis(self) -> DistanceSynopsis:
        """The synopsis answers are drawn from."""
        return self._synopsis

    @property
    def cache(self) -> MutableMapping[Pair, float]:
        """The cross-batch answer cache."""
        return self._cache

    def run(self, pairs: Sequence[Pair]) -> BatchReport:
        """Serve one batch; answers align with the input order."""
        start = time.perf_counter()
        report = BatchReport(num_queries=len(pairs))
        resolved: Dict[Pair, float] = {}
        # Per-query durations are buffered and bulk-ingested after the
        # loop, so the hot path pays two clock reads and an append per
        # query — the sketch math is vectorized once per batch.
        durations: List[float] = []
        with self._telemetry.span(
            "batch.serve", queries=len(pairs), **self._labels
        ) as span:
            for s, t in pairs:
                q_start = time.perf_counter()
                key = canonical_pair(s, t)
                if key in resolved:
                    value = resolved[key]
                elif key in self._cache:
                    value = self._cache[key]
                    resolved[key] = value
                    report.cache_hits += 1
                else:
                    value = self._synopsis.distance(s, t)
                    resolved[key] = value
                    self._cache[key] = value
                report.answers.append(value)
                durations.append(time.perf_counter() - q_start)
            # num_unique is the batch's true distinct-pair count (its
            # documented meaning); cache hits stay a separate counter.
            report.num_unique = len(resolved)
            span.set_attribute("unique", report.num_unique)
            span.set_attribute("cache_hits", report.cache_hits)
            self._telemetry.audit.record(
                "batch.serve",
                queries=report.num_queries,
                unique=report.num_unique,
                cache_hits=report.cache_hits,
                labels=self._labels,
            )
            self._telemetry.log.emit(
                "batch.serve",
                queries=report.num_queries,
                unique=report.num_unique,
                cache_hits=report.cache_hits,
            )
        report.elapsed_seconds = time.perf_counter() - start
        self._latency.observe_many(durations)
        flight = self._telemetry.flight
        if flight.enabled:
            # Each query in the batch is offered individually so the
            # recorder's adaptive threshold sees the same per-query
            # latency distribution the histogram does; the finished
            # batch span is the captured exemplar's context.
            mechanism = self._labels.get("mechanism")
            for (s, t), seconds in zip(pairs, durations):
                flight.consider(
                    seconds,
                    pair=(s, t),
                    route="batch",
                    mechanism=mechanism,
                    span=span,
                )
        return report


def fresh_batch(
    graph: WeightedGraph,
    pairs: Sequence[Pair],
    eps: float,
    rng: Rng,
    ledger: BudgetLedger | None = None,
) -> Tuple[SinglePairSynopsis, BatchReport]:
    """Release and serve a batch with no standing synopsis.

    Deduplicates the batch, releases the distinct pairs as one
    vectorized ``Lap(Q/eps)`` draw (eps-DP total), and serves every
    query from the resulting synopsis.  Returns the synopsis too, so
    follow-up batches over the same pairs are free.

    Spend first, release second: the whole-batch ``eps`` is recorded
    against ``ledger`` *before* any noise is drawn (a fresh
    single-epoch ledger when none is passed), so even a standalone
    batch release is budget-accounted — the fail-closed
    :class:`~repro.serving.ledger.BudgetLedger` refuses the spend, and
    therefore the draw, when a shared ledger cannot cover it.
    """
    telemetry = get_telemetry()
    if ledger is None:
        ledger = BudgetLedger(PrivacyParams(eps))
    start = time.perf_counter()
    with telemetry.span(
        "fresh_batch.release", queries=len(pairs), eps=eps
    ):
        ledger.spend(
            PrivacyParams(eps),
            label=f"fresh batch ({len(pairs)} queries)",
        )
        synopsis = build_single_pair_synopsis(graph, pairs, eps, rng)
    build_seconds = time.perf_counter() - start
    telemetry.registry.histogram(
        "build.latency", phase="fresh-batch", mechanism="single-pair"
    ).observe(build_seconds)
    report = BatchPlanner(synopsis, telemetry=telemetry).run(pairs)
    # The one-time release build is reported separately so
    # ``elapsed_seconds`` (and queries_per_second) stay pure serving
    # time.
    report.build_seconds = build_seconds
    return synopsis, report
