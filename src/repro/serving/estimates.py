"""Rich query results: value + uncertainty, not a bare float.

A differentially private answer without its noise scale forces the
client to *trust* the accuracy story; the paper's theorems are exactly
statements about that scale, so the serving engine should hand it
over.  :class:`Estimate` is the richer return type of the
``estimate()`` / ``estimate_batch()`` serving path: the released
value, the effective Laplace scale behind it, the mechanism and epoch
that produced it, and a Laplace-CDF confidence interval.

``query()`` remains the thin path — it returns ``estimate().value``
bit for bit — so existing consumers and seeded reproductions are
untouched.

Calibration caveat (documented, tested): the interval is *exact* when
the answer is a single Laplace draw (the single-pair and all-pairs
families — empirical coverage matches the nominal level).  Mechanisms
that compose several released entries per answer (tree path sums, hub
relay minima, sharded relay chains) report a composed or per-entry
scale, making the interval a structured error bar rather than an
exact quantile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..exceptions import PrivacyError
from ..rng import laplace_quantile

__all__ = ["Estimate"]


@dataclass(frozen=True)
class Estimate:
    """One served distance estimate with its uncertainty.

    Attributes
    ----------
    value:
        The released distance — identical to what ``query()`` returns
        for the same pair under the same seed.
    noise_scale:
        The effective Laplace scale behind the answer (the synopsis's
        :meth:`~repro.serving.synopsis.DistanceSynopsis.noise_scale_for`
        for the pair); 0 for deterministic answers such as
        ``distance(v, v)``.
    mechanism:
        The registry name of the mechanism that released the synopsis.
    epoch:
        The ledger epoch the backing synopsis was built in.
    """

    value: float
    noise_scale: float
    mechanism: str
    epoch: int

    def confidence_interval(
        self, level: float = 0.95
    ) -> Tuple[float, float]:
        """The two-sided ``level`` confidence interval via the Laplace
        CDF: ``P(|Lap(b)| <= t) = 1 - exp(-t/b)``, so the half-width
        is ``b ln(1/(1 - level))``.  Exact coverage for single-draw
        answers; see the module docstring for composed mechanisms.
        """
        if not 0.0 < level < 1.0:
            raise PrivacyError(
                f"confidence level must be in (0, 1), got {level}"
            )
        if self.noise_scale <= 0.0:
            return (self.value, self.value)
        half = laplace_quantile(self.noise_scale, 1.0 - level)
        return (self.value - half, self.value + half)

    def margin(self, level: float = 0.95) -> float:
        """The confidence interval's half-width at ``level``."""
        lo, hi = self.confidence_interval(level)
        return (hi - lo) / 2.0

    def __str__(self) -> str:
        return (
            f"{self.value:.6f} ± Lap({self.noise_scale:g}) "
            f"[{self.mechanism}, epoch {self.epoch}]"
        )
