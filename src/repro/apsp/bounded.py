"""Hub-set release layered over Algorithm 2's covering (bounded weights).

With weights in ``[0, M]``, Algorithm 2 (Section 4.2) fixes a
k-covering ``Z`` and answers every query through the assigned covering
vertices, paying ``2kM`` covering detour plus noise on the ``|Z|^2``
covering pairs.  The follow-up hub construction slots in as the
*inner* mechanism: instead of releasing all ``|Z|^2`` covering-pair
distances, run the hub structure of :mod:`repro.apsp.hubs` over the
covering vertices — ``~|Z|^{3/2}`` released entries instead of
``|Z|^2``.

That changes the optimal balance.  Algorithm 2's pure regime picks
``k ~ (V^2/(M eps))^{1/3}`` for ``O((VM)^{2/3})`` error; with the hub
inner mechanism the noise term drops to ``~(V/k)^{3/2}/eps`` (pure) or
``~(V/k)^{3/4}/eps`` (advanced composition), so the detour/noise
balance lands at a smaller ``k`` and a lower total error — the
sharper low-weight bounds of the follow-up work
(:func:`hub_bounded_optimal_k`).
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..algorithms.covering import (
    is_k_covering,
    meir_moon_k_covering,
    nearest_in_set,
)
from ..algorithms.traversal import is_connected
from ..dp.params import PrivacyParams
from ..engine.csr import CSRGraph
from ..exceptions import (
    DisconnectedGraphError,
    GraphError,
    PrivacyError,
    VertexNotFoundError,
)
from ..graphs.graph import Vertex, WeightedGraph
from ..rng import Rng
from .hubs import (
    HubStructure,
    build_hub_structure,
    default_ball_size,
    default_hub_count,
)

__all__ = ["HubSetBoundedRelease", "hub_bounded_optimal_k"]


def hub_bounded_optimal_k(
    num_vertices: int, weight_bound: float, eps: float, delta: float = 0.0
) -> int:
    """The covering radius balancing detour against hub noise.

    The covering detour costs ``2kM``; the hub structure over the
    ``|Z| <= V/(k+1)`` covering vertices costs noise
    ``~2 (V/k)^{3/2}/eps`` (pure) or
    ``~2 (V/k)^{3/4} sqrt(ln 1/delta)/eps`` (advanced composition).
    Equating the two gives ``k ~ (V^{3/2}/(M eps))^{2/5}`` and
    ``k ~ (V^{3/4} sqrt(ln 1/delta)/(M eps))^{4/7}`` respectively —
    smaller radii (hence lower total error) than Algorithm 2's
    ``(V^2/(M eps))^{1/3}`` and ``sqrt(V/(M eps))`` optima.
    """
    if num_vertices <= 0:
        raise GraphError(
            f"need a positive vertex count, got {num_vertices}"
        )
    if weight_bound <= 0:
        raise PrivacyError(
            f"weight bound M must be positive, got {weight_bound}"
        )
    if eps <= 0:
        raise PrivacyError(f"eps must be positive, got {eps}")
    v = float(num_vertices)
    if delta > 0:
        k = (
            v ** 0.75
            * math.sqrt(math.log(1.0 / delta))
            / (weight_bound * eps)
        ) ** (4.0 / 7.0)
    else:
        k = (v ** 1.5 / (weight_bound * eps)) ** 0.4
    return max(1, min(round(k), max(num_vertices - 1, 1)))


class HubSetBoundedRelease:
    """Algorithm 2's covering with the hub structure as inner release.

    Parameters
    ----------
    graph:
        Connected graph with weights in ``[0, weight_bound]``.
    weight_bound:
        The public bound ``M`` on edge weights.
    eps, delta:
        The privacy budget (spent entirely on the inner hub release —
        the covering and assignment depend only on public topology).
    k:
        Covering radius; defaults to :func:`hub_bounded_optimal_k`.
    covering:
        Explicit covering set (validated); defaults to the Lemma 4.4
        construction.
    hub_count, ball_size:
        Inner hub-structure overrides (defaults ``~sqrt(|Z|)``).
    """

    def __init__(
        self,
        graph: WeightedGraph,
        weight_bound: float,
        eps: float,
        rng: Rng,
        delta: float = 0.0,
        k: int | None = None,
        covering: List[Vertex] | None = None,
        hub_count: int | None = None,
        ball_size: int | None = None,
    ) -> None:
        if weight_bound <= 0:
            raise PrivacyError(
                f"weight bound M must be positive, got {weight_bound}"
            )
        graph.check_bounded(weight_bound)
        if not is_connected(graph):
            raise DisconnectedGraphError(
                "hub-bounded release requires a connected graph"
            )
        self._graph = graph
        self._weight_bound = float(weight_bound)
        self._params = PrivacyParams(eps, delta)

        if k is None:
            # Already clamped to [1, V-1] (Lemma 4.4's hypothesis).
            k = hub_bounded_optimal_k(
                graph.num_vertices, weight_bound, eps, delta
            )
        if k < 0:
            raise GraphError(f"k must be nonnegative, got {k}")
        self._k = k

        if covering is None:
            covering = meir_moon_k_covering(graph, k)
        else:
            covering = list(covering)
            if not is_k_covering(graph, covering, k):
                raise GraphError(
                    f"provided vertex set is not a {k}-covering"
                )
        self._covering = covering

        # Assignment z(v): nearest covering vertex by hops (public).
        self._assignment: Dict[Vertex, Vertex] = {
            vert: origin
            for vert, (origin, _) in nearest_in_set(graph, covering).items()
        }

        self._csr = CSRGraph.from_graph(graph)
        site_idx = self._csr.indices_of(covering)
        m = len(covering)
        h = default_hub_count(m) if hub_count is None else hub_count
        b = default_ball_size(m) if ball_size is None else ball_size
        self._structure, self._exact = build_hub_structure(
            self._csr, site_idx, h, b, eps, delta, rng
        )
        self._site_of = {v: i for i, v in enumerate(covering)}

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee of the release."""
        return self._params

    @property
    def graph(self) -> WeightedGraph:
        """The (public-topology) graph the release was computed on."""
        return self._graph

    @property
    def weight_bound(self) -> float:
        """The public bound ``M`` on edge weights."""
        return self._weight_bound

    @property
    def k(self) -> int:
        """The covering radius in hops (detour error ``<= 2kM``)."""
        return self._k

    @property
    def vertex_order(self) -> tuple:
        """Vertices in CSR compilation order (what the synopsis keys
        its assignment table by)."""
        return self._csr.vertices

    @property
    def covering(self) -> List[Vertex]:
        """The covering set ``Z`` in site order."""
        return list(self._covering)

    @property
    def covering_size(self) -> int:
        """``|Z|`` — at most ``V/(k+1)`` for the default construction."""
        return len(self._covering)

    @property
    def structure(self) -> HubStructure:
        """The released inner hub structure over the covering."""
        return self._structure

    @property
    def hubs(self) -> List[Vertex]:
        """The hub vertices sampled from the covering set."""
        return [
            self._covering[int(p)]
            for p in self._structure.hub_positions
        ]

    @property
    def noise_scale(self) -> float:
        """The Laplace scale applied to each released entry."""
        return self._structure.noise_scale

    @property
    def released_pair_count(self) -> int:
        """Distinct covering-pair queries the release paid for."""
        return self._structure.pair_count

    def assigned_covering_vertex(self, v: Vertex) -> Vertex:
        """``z(v)``: the covering vertex assigned to ``v``."""
        if v not in self._assignment:
            raise VertexNotFoundError(v)
        return self._assignment[v]

    def assignment(self) -> Dict[Vertex, Vertex]:
        """The full (public) covering assignment ``v -> z(v)``."""
        return dict(self._assignment)

    def distance(self, source: Vertex, target: Vertex) -> float:
        """The released estimate ``hub(z(u), z(v))``.

        Error: at most ``2kM`` covering detour plus the inner hub
        structure's noise and relay error.
        """
        zu = self.assigned_covering_vertex(source)
        zv = self.assigned_covering_vertex(target)
        if zu == zv:
            return 0.0
        return self._structure.estimate(
            self._site_of[zu], self._site_of[zv]
        )

    def exact_covering_distance(self, y: Vertex, z: Vertex) -> float:
        """The true distance between two covering vertices (for error
        measurement; not private)."""
        for vertex in (y, z):
            if vertex not in self._site_of:
                raise GraphError(
                    f"{vertex!r} is not a covering vertex of this "
                    "release"
                )
        return float(
            self._exact[self._site_of[y], self._site_of[z]]
        )
