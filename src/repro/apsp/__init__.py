"""Improved all-pairs release mechanisms (follow-up work).

The Section 4 intro baselines split the budget over all ``V(V-1)/2``
pair queries.  This package implements the hub-set family from the
follow-up work of Chen–Narayanan–Xu (arXiv:2204.02335) and Ghazi et
al. (arXiv:2203.16476), which covers every pair with ``~V^{3/2}``
released values — sampled hub relay tables plus hop-local balls — for
``sqrt(V)``-type error improvements:

* :class:`~repro.apsp.hubs.HubSetRelease` — the unbounded-weight
  mechanism (hub relays + local balls over all vertices);
* :class:`~repro.apsp.bounded.HubSetBoundedRelease` — the same hub
  structure layered over Algorithm 2's k-covering for the sharper
  bounded-weight trade-off.

Both are engine-native: exact tables come from one
:mod:`repro.engine` multi-source CSR sweep and the noise is drawn in
vectorized Laplace blocks; no dict-of-dicts is materialized.  The
serving layer wraps them as registered synopses
(:class:`repro.serving.synopsis.HubSetSynopsis` /
:class:`repro.serving.synopsis.HubBoundedSynopsis`).
"""

from .bounded import HubSetBoundedRelease, hub_bounded_optimal_k
from .hubs import (
    HubSetRelease,
    HubStructure,
    default_ball_size,
    default_hub_count,
    hub_noise_scale,
    hub_pair_count_bound,
    predicted_hub_scale,
)

__all__ = [
    "HubSetRelease",
    "HubSetBoundedRelease",
    "HubStructure",
    "default_hub_count",
    "default_ball_size",
    "hub_pair_count_bound",
    "hub_noise_scale",
    "predicted_hub_scale",
    "hub_bounded_optimal_k",
]
