"""Hub-set all-pairs release (follow-up work to Section 4's baselines).

The paper's intro baselines answer the ``Q = V(V-1)/2`` pair queries by
splitting the budget over *every* pair, so the per-answer noise scale is
``~V^2/eps`` (pure) or ``~V/eps`` (advanced composition).  Follow-up
work — Chen–Narayanan–Xu (arXiv:2204.02335) and Ghazi et al.
(arXiv:2203.16476) — observes that far fewer released values suffice to
*cover* all pairs:

* **Hub relays.**  Sample a hub set ``S`` of ``~sqrt(V)`` vertices
  (data-independent: the topology is public and the sample ignores the
  weights).  Releasing the ``V x |S|`` vertex<->hub distance table lets
  any pair be answered by the noisy min over relays
  ``min_h a(u, h) + a(h, v)``; a long shortest path passes near a
  random hub with high probability, so the relay detour is small
  exactly where hop counts are large.
* **Local balls.**  Short-hop pairs — the ones a random hub misses —
  are covered directly: each vertex also releases distances to its
  ``~sqrt(V)`` nearest neighbours *by hop count* (ball membership
  depends only on the public topology).

Together the released vector has ``Q ~ V^{3/2}`` entries instead of
``V^2``, so the same composition arguments give per-entry noise
``~V^{3/2}/eps`` (pure, Laplace vector mechanism) or
``~V^{3/4} sqrt(log(1/delta))/eps`` (advanced composition) — the
``sqrt(V)``-type improvement the ISSUE targets.  Answering a query is
pure post-processing of the released tables: a vectorized min over
``|S|`` relay sums plus one ball lookup.

Construction is engine-native: the exact weighted distance tables come
from one :func:`repro.engine.kernels.multi_source_distances` sweep
over the CSR arrays (plus a second, unit-weight sweep for the
hop-based ball membership when ``ball_size > 0``) and the noise is a
single vectorized Laplace draw — no dict-of-dicts is ever
materialized.  The dense exact matrix is transient except on the
release object, which keeps it for non-private error measurement
(``exact_distance``); the shipped synopsis carries only the
``~V^{3/2}`` released values.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Tuple

import numpy as np

from ..algorithms.traversal import is_connected
from ..dp.composition import composed_noise_scale
from ..dp.params import PrivacyParams
from ..engine.csr import CSRGraph
from ..engine.kernels import multi_source_distances
from ..exceptions import DisconnectedGraphError, GraphError
from ..graphs.graph import Vertex, WeightedGraph
from ..rng import Rng
from ..telemetry import get_telemetry

__all__ = [
    "HubStructure",
    "HubSetRelease",
    "default_hub_count",
    "default_ball_size",
    "hub_pair_count_bound",
    "hub_noise_scale",
    "predicted_hub_scale",
]


def default_hub_count(num_sites: int) -> int:
    """The default hub-set size: ``ceil(sqrt(m))``, the CNX choice."""
    if num_sites <= 0:
        raise GraphError(f"need at least one site, got {num_sites}")
    return min(max(1, math.ceil(math.sqrt(num_sites))), num_sites)


def default_ball_size(num_sites: int) -> int:
    """The default local-ball size: ``ceil(sqrt(m))`` nearest sites by
    hop count (0 on a single site)."""
    if num_sites <= 0:
        raise GraphError(f"need at least one site, got {num_sites}")
    return min(max(0, math.ceil(math.sqrt(num_sites))), num_sites - 1)


def hub_pair_count_bound(
    num_sites: int,
    hub_count: int | None = None,
    ball_size: int | None = None,
) -> int:
    """An upper bound on the distinct pair queries the hub mechanism
    releases, from public size parameters only.

    The hub table contributes ``h(m-h) + h(h-1)/2`` distinct unordered
    pairs (self-distances are data-independent zeros and hub-hub
    mirrors are copies, not fresh releases); the ball contributes at
    most ``m * b`` more.  The exact ball count deduplicates shared
    pairs, so the true released count is at most this bound.
    """
    m = num_sites
    h = default_hub_count(m) if hub_count is None else hub_count
    b = default_ball_size(m) if ball_size is None else ball_size
    return h * (m - h) + h * (h - 1) // 2 + m * b


def hub_noise_scale(
    pair_count: int, eps: float, delta: float = 0.0
) -> float:
    """The per-entry Laplace scale for a release of ``pair_count``
    sensitivity-1 distance queries — the shared
    :func:`~repro.dp.composition.composed_noise_scale` accounting
    (vector-Laplace pure, Lemma 3.4 inverse approx), named for the hub
    tables it prices here.
    """
    return composed_noise_scale(pair_count, eps, delta)


def predicted_hub_scale(
    num_sites: int,
    eps: float,
    delta: float = 0.0,
    hub_count: int | None = None,
    ball_size: int | None = None,
) -> float:
    """The noise scale the hub mechanism would pay on ``num_sites``
    sites — a public quantity used by mechanism auto-selection."""
    return hub_noise_scale(
        hub_pair_count_bound(num_sites, hub_count, ball_size), eps, delta
    )


class HubStructure:
    """The released hub artifact over ``m`` *sites* (integer indexed).

    For the plain release the sites are all vertices; the
    bounded-weight variant runs the same structure over Algorithm 2's
    covering vertices.  Holds:

    * ``hub_positions`` — site positions of the sampled hubs;
    * ``matrix`` — the ``(h, m)`` noisy site->hub distance table
      (hub self-distances exactly 0, hub-hub mirrors symmetrized to a
      single released value);
    * ``ball`` — the noisy local-ball table keyed by
      ``lo * m + hi`` over canonical site pairs (pairs with a hub
      endpoint are excluded — the hub table already covers them).

    Everything here is a released value or public topology, so the
    structure is safe to serialize and ship.
    """

    def __init__(
        self,
        num_sites: int,
        hub_positions: np.ndarray,
        matrix: np.ndarray,
        ball: Dict[int, float],
        noise_scale: float,
        pair_count: int,
    ) -> None:
        self.num_sites = int(num_sites)
        self.hub_positions = np.asarray(hub_positions, dtype=np.int64)
        self.matrix = np.asarray(matrix, dtype=float)
        if self.matrix.shape != (len(self.hub_positions), self.num_sites):
            raise GraphError(
                f"hub matrix shape {self.matrix.shape} does not match "
                f"{len(self.hub_positions)} hubs x {self.num_sites} sites"
            )
        self.ball = ball
        self.noise_scale = float(noise_scale)
        self.pair_count = int(pair_count)

    @property
    def hub_count(self) -> int:
        """Number of sampled hubs."""
        return len(self.hub_positions)

    def estimate(self, i: int, j: int) -> float:
        """The released distance estimate between site indices.

        The noisy min over hub relays ``min_h a(h,i) + a(h,j)`` —
        which subsumes direct hub lookups because hub self-distances
        are exactly 0 — refined by the local-ball entry when the pair
        is covered, clamped at 0 (post-processing)."""
        if i == j:
            return 0.0
        best = float(np.min(self.matrix[:, i] + self.matrix[:, j]))
        lo, hi = (i, j) if i < j else (j, i)
        direct = self.ball.get(lo * self.num_sites + hi)
        if direct is not None and direct < best:
            best = direct
        return max(best, 0.0)

    def scale_for(self, i: int, j: int) -> float:
        """The effective noise scale behind :meth:`estimate`.

        A local-ball answer is one released entry (the direct scale);
        a relay answer sums two released entries, so its effective
        scale is twice the per-entry scale (the conservative L1
        composition of the two Laplace terms).  Mirrors
        :meth:`estimate`'s min exactly: a ball-covered pair still
        reports the composed scale when the relay min actually won.
        Identical sites answer a deterministic 0 with no noise at all.
        """
        if i == j:
            return 0.0
        lo, hi = (i, j) if i < j else (j, i)
        direct = self.ball.get(lo * self.num_sites + hi)
        if direct is not None and direct < float(
            np.min(self.matrix[:, i] + self.matrix[:, j])
        ):
            return self.noise_scale
        return 2.0 * self.noise_scale


def build_hub_structure(
    csr: CSRGraph,
    site_idx: np.ndarray,
    hub_count: int,
    ball_size: int,
    eps: float,
    delta: float,
    rng: Rng,
) -> Tuple[HubStructure, np.ndarray]:
    """Build the released hub structure over the given site indices.

    Returns ``(structure, exact)`` where ``exact`` is the ``(m, m)``
    exact site-to-site distance matrix (kept by the release for error
    measurement only — never part of the released structure).
    """
    site_idx = np.asarray(site_idx, dtype=np.int64)
    m = len(site_idx)
    if not 1 <= hub_count <= m:
        raise GraphError(
            f"hub_count must be in [1, {m}], got {hub_count}"
        )
    if not 0 <= ball_size <= max(m - 1, 0):
        raise GraphError(
            f"ball_size must be in [0, {max(m - 1, 0)}], got {ball_size}"
        )

    telemetry = get_telemetry()
    build_start = time.perf_counter()
    with telemetry.span(
        "hubs.build", sites=m, hubs=hub_count, ball_size=ball_size
    ):
        structure, exact = _build_hub_structure_inner(
            csr, site_idx, m, hub_count, ball_size, eps, delta, rng
        )
    telemetry.registry.histogram(
        "build.latency", phase="hubs", mechanism="hub-set"
    ).observe(time.perf_counter() - build_start)
    return structure, exact


def _build_hub_structure_inner(
    csr: CSRGraph,
    site_idx: np.ndarray,
    m: int,
    hub_count: int,
    ball_size: int,
    eps: float,
    delta: float,
    rng: Rng,
) -> Tuple[HubStructure, np.ndarray]:
    # One engine sweep for the exact site-to-site weighted distances;
    # the hub rows are a slice of it, never a separate computation.
    exact = multi_source_distances(csr, site_idx)[:, site_idx]
    if np.isinf(exact).any():
        raise DisconnectedGraphError(
            "hub-set release requires all sites mutually reachable"
        )

    # Hub sample: uniform over sites, independent of the weights.
    hubs = np.array(
        sorted(rng.sample(range(m), hub_count)), dtype=np.int64
    )

    # Ball membership: nearest sites by hop count (public topology).
    # Hop distances reuse the frozen CSR structure with unit weights.
    ball_pairs = np.empty(0, dtype=np.int64)
    if ball_size > 0:
        unit = csr.with_weights(np.ones(csr.num_edges))
        hops = multi_source_distances(unit, site_idx)[:, site_idx]
        # Stable argsort: ties broken by site order, self (hop 0) first.
        order = np.argsort(hops, axis=1, kind="stable")
        members = order[:, 1 : ball_size + 1]
        rows = np.repeat(np.arange(m, dtype=np.int64), members.shape[1])
        cols = members.ravel()
        is_hub = np.zeros(m, dtype=bool)
        is_hub[hubs] = True
        keep = ~(is_hub[rows] | is_hub[cols])
        lo = np.minimum(rows[keep], cols[keep])
        hi = np.maximum(rows[keep], cols[keep])
        ball_pairs = np.unique(lo * m + hi)

    # Budget accounting over the distinct released pair queries.
    q_hub = hub_count * (m - hub_count) + hub_count * (hub_count - 1) // 2
    pair_count = q_hub + len(ball_pairs)
    scale = hub_noise_scale(pair_count, eps, delta)

    # Vertex<->hub table: one vectorized Laplace draw over the matrix,
    # then enforce the data-independent entries — hub self-distances
    # are exactly 0 and each hub-hub pair is released once (the mirror
    # cell is a copy, not a second noisy release).
    matrix = exact[hubs] + rng.laplace_vector(scale, hub_count * m).reshape(
        hub_count, m
    )
    sub = matrix[:, hubs]
    upper = np.triu_indices(hub_count, k=1)
    sub[(upper[1], upper[0])] = sub[upper]
    np.fill_diagonal(sub, 0.0)
    matrix[:, hubs] = sub

    # Local-ball table: vectorized noise over the deduplicated pairs.
    ball: Dict[int, float] = {}
    if len(ball_pairs):
        lo = ball_pairs // m
        hi = ball_pairs % m
        values = exact[lo, hi] + rng.laplace_vector(scale, len(ball_pairs))
        ball = {
            int(key): float(v) for key, v in zip(ball_pairs, values)
        }

    structure = HubStructure(
        num_sites=m,
        hub_positions=hubs,
        matrix=matrix,
        ball=ball,
        noise_scale=scale,
        pair_count=pair_count,
    )
    return structure, exact


class HubSetRelease:
    """The improved all-pairs release: hub relays + local balls.

    Parameters
    ----------
    graph:
        Connected graph (public topology, private weights).
    eps, delta:
        The privacy budget.  ``delta = 0`` uses the pure vector-Laplace
        accounting (scale ``~V^{3/2}/eps``); ``delta > 0`` uses
        advanced composition (scale ``~V^{3/4} sqrt(log 1/delta)/eps``)
        — the regime where the sqrt(V)-type asymptotics fully bite.
    hub_count, ball_size:
        Override the ``ceil(sqrt(V))`` defaults.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        eps: float,
        rng: Rng,
        delta: float = 0.0,
        hub_count: int | None = None,
        ball_size: int | None = None,
    ) -> None:
        if not is_connected(graph):
            raise DisconnectedGraphError(
                "hub-set release requires a connected graph"
            )
        self._graph = graph
        self._params = PrivacyParams(eps, delta)
        self._csr = CSRGraph.from_graph(graph)
        n = self._csr.n
        h = default_hub_count(n) if hub_count is None else hub_count
        b = default_ball_size(n) if ball_size is None else ball_size
        self._structure, self._exact = build_hub_structure(
            self._csr,
            np.arange(n, dtype=np.int64),
            h,
            b,
            eps,
            delta,
            rng,
        )

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee of the whole release."""
        return self._params

    @property
    def graph(self) -> WeightedGraph:
        """The (public-topology) graph the release was computed on."""
        return self._graph

    @property
    def structure(self) -> HubStructure:
        """The released hub structure (safe to serialize)."""
        return self._structure

    @property
    def vertex_order(self) -> Tuple[Vertex, ...]:
        """Vertices in site-index order (the CSR compilation order)."""
        return self._csr.vertices

    @property
    def hubs(self) -> List[Vertex]:
        """The sampled hub vertices."""
        vertices = self._csr.vertices
        return [vertices[int(p)] for p in self._structure.hub_positions]

    @property
    def hub_count(self) -> int:
        """Number of sampled hubs (``~sqrt(V)`` by default)."""
        return self._structure.hub_count

    @property
    def noise_scale(self) -> float:
        """The Laplace scale applied to each released entry."""
        return self._structure.noise_scale

    @property
    def released_pair_count(self) -> int:
        """Distinct pair queries the release paid for."""
        return self._structure.pair_count

    def distance(self, source: Vertex, target: Vertex) -> float:
        """The released (noisy) distance estimate for a pair."""
        return self._structure.estimate(
            self._csr.index_of(source), self._csr.index_of(target)
        )

    def exact_distance(self, source: Vertex, target: Vertex) -> float:
        """The true distance (for error measurement; not private)."""
        return float(
            self._exact[
                self._csr.index_of(source), self._csr.index_of(target)
            ]
        )
