"""The project-wide call graph behind privlint's inter-procedural rules.

PR 9's PL1 was deliberately single-function: a helper that returns a
raw weight-derived value which its *caller* noises was invisible, so
whole exact-computation layers sat behind a blanket allowlist.  This
module builds the structure that lets the analyzer follow taint
*through* calls instead: one :class:`FunctionNode` per function in the
scanned tree, each carrying

* its **call sites** in source order, resolved against the module's
  import-alias table (``module.fn`` and dotted chains through
  aliases), the enclosing class (``self.method`` / ``cls.method``),
  same-module definitions (bare-name calls, local class
  constructors), one-hop re-exports through package ``__init__``
  modules, and — for attribute calls whose receiver the AST cannot
  name (``backend.sssp(...)``, ``mech.build(...)``,
  ``self._ledger.spend(...)``) — a class-hierarchy-style *name join*
  over every known method with that name; and
* its **direct summary bits**: reads private weight state, returns a
  value, serializes/logs, contains a recognized noising sink,
  contains a raw ``laplace_*``/``perturb_*`` noise draw, contains a
  ledger ``spend``.

Rules (PL1 weight taint, PL5 budget hygiene) propagate these bits to a
fixpoint over the caller/callee edges; the fixpoints are bounded by
the node count (each pass flips at least one monotone bit), so the
pass is linear-ish in practice and can never diverge on recursive
cycles.

The graph serializes as a versioned ``repro-callgraph`` JSON document
(``lint --callgraph-out``; CI uploads it as an artifact) with a
fail-closed reader, :func:`validate_callgraph`, in the house style of
``validate_profile``/``validate_lint_report``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..exceptions import LintError
from .engine import FunctionInfo, ModuleUnit

__all__ = [
    "CALLGRAPH_FORMAT",
    "CALLGRAPH_VERSION",
    "CallSite",
    "FunctionNode",
    "CallGraph",
    "build_call_graph",
    "callgraph_document",
    "validate_callgraph",
    "WEIGHT_READS",
    "NOISE_SINK_PREFIXES",
    "NOISE_SINK_NAMES",
    "OUTPUT_SINKS",
    "DRAW_NAME_PREFIXES",
    "PURE_DRAW_NAMES",
    "SPEND_NAMES",
]

CALLGRAPH_FORMAT = "repro-callgraph"
CALLGRAPH_VERSION = 1

# ----------------------------------------------------------------------
# The taint vocabulary (shared with the rules in rules.py)
# ----------------------------------------------------------------------

#: Attribute names whose access reads private weight state.
WEIGHT_READS: FrozenSet[str] = frozenset(
    {
        "weight",
        "weights",
        "weight_vector",
        "edge_weights",
        "with_weights",
        "total_weight",
        "path_weight",
    }
)

#: Call targets recognized as noising/accounting sinks: Laplace draws
#: and helpers, mechanism release methods, registry/synopsis builds,
#: ledger spends, and the engine's vectorized perturbation kernels.
NOISE_SINK_PREFIXES: Tuple[str, ...] = (
    "laplace",
    "release_",
    "build_",
    "perturb_",
)
NOISE_SINK_NAMES: FrozenSet[str] = frozenset({"build", "spend"})

#: Call/name targets that move a value out of the process: returns are
#: detected structurally, these cover serialize/log escapes.
OUTPUT_SINKS: FrozenSet[str] = frozenset(
    {"print", "dumps", "dump", "write", "write_text", "writelines"}
)

#: Raw-noise-draw call names for PL5 budget hygiene: an actual Laplace
#: sample or a vectorized perturbation, as opposed to the broader PL1
#: sink set (which also recognizes builds and spends as *boundaries*).
DRAW_NAME_PREFIXES: Tuple[str, ...] = ("laplace", "perturb")

#: ``laplace``-prefixed names that are deterministic arithmetic, not
#: draws: quantiles and tail bounds consume no randomness and spend no
#: budget.
PURE_DRAW_NAMES: FrozenSet[str] = frozenset(
    {"laplace_quantile", "laplace_tail_bound", "laplace_cdf"}
)

#: Call names that account an expenditure against a budget ledger.
SPEND_NAMES: FrozenSet[str] = frozenset({"spend"})


def is_draw_name(name: str) -> bool:
    """True for call names that draw raw noise (PL5 sinks)."""
    return name not in PURE_DRAW_NAMES and any(
        name.startswith(p) for p in DRAW_NAME_PREFIXES
    )


def is_noise_sink_name(name: str) -> bool:
    """True for call names PL1 recognizes as noising/accounting
    boundaries."""
    return name in NOISE_SINK_NAMES or any(
        name.startswith(p) for p in NOISE_SINK_PREFIXES
    )


# ----------------------------------------------------------------------
# Nodes and call sites
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function, in source order.

    ``targets`` holds the ids of every :class:`FunctionNode` the call
    may reach (empty when the callee is outside the scanned tree or
    dynamically dispatched through a value the resolver cannot name).
    ``kind`` records *how* the resolution happened — ``local`` (same
    module), ``import`` (through the alias table, including re-export
    hops), ``self`` (enclosing class), ``join`` (name join over every
    known method), or ``opaque`` (unresolved) — so the serialized
    graph is debuggable.
    """

    lineno: int
    col: int
    name: str
    kind: str
    targets: Tuple[str, ...]


@dataclass
class FunctionNode:
    """One function in the project call graph plus its direct summary.

    The boolean bits are *intra-procedural* facts (what this function
    does in its own body); the rules propagate them along edges.
    """

    node_id: str
    path: str
    module: str
    qualname: str
    name: str
    lineno: int
    calls: Tuple[CallSite, ...] = ()
    #: Weight-state attribute names read directly (empty if none).
    reads: Tuple[str, ...] = ()
    returns_value: bool = False
    serializes: bool = False
    noises: bool = False
    draws: bool = False
    spends: bool = False

    @property
    def reads_weights(self) -> bool:
        return bool(self.reads)

    @property
    def escapes(self) -> bool:
        """The function moves a value out: returns or serializes."""
        return self.returns_value or self.serializes

    def as_dict(self) -> Dict[str, object]:
        return {
            "id": self.node_id,
            "path": self.path,
            "module": self.module,
            "qualname": self.qualname,
            "line": self.lineno,
            "reads": list(self.reads),
            "returns_value": self.returns_value,
            "serializes": self.serializes,
            "noises": self.noises,
            "draws": self.draws,
            "spends": self.spends,
            "calls": [
                {
                    "line": c.lineno,
                    "name": c.name,
                    "kind": c.kind,
                    "targets": list(c.targets),
                }
                for c in self.calls
            ],
        }


def _owned_walk(
    info: FunctionInfo, node: ast.AST
) -> Iterator[ast.AST]:
    """Walk ``node`` without crossing into nested function bodies."""
    yield node
    if isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef)
    ) and node is not info.node:
        return
    for child in ast.iter_child_nodes(node):
        yield from _owned_walk(info, child)


def _call_name(node: ast.Call) -> Optional[str]:
    """The bare called name: ``f(...)`` -> ``f``, ``x.m(...)`` -> ``m``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------


class _Resolver:
    """Resolution tables over one set of parsed modules."""

    def __init__(self, units: Sequence[ModuleUnit]) -> None:
        self.units = tuple(units)
        #: dotted module key -> unit (``__init__`` drops its segment,
        #: so a package's key is the package itself).
        self.unit_by_module: Dict[str, ModuleUnit] = {}
        #: module key -> {qualname or bare symbol -> [node ids]}.
        self.module_defs: Dict[str, Dict[str, List[str]]] = {}
        #: method name -> [node ids] for the global name join.
        self.methods: Dict[str, List[str]] = {}
        #: module key -> {class name -> {method name -> node id}}.
        self.classes: Dict[str, Dict[str, Dict[str, str]]] = {}
        #: function-info id -> enclosing class name (if a method).
        self._class_of: Dict[int, str] = {}
        for unit in self.units:
            self.unit_by_module[".".join(unit.segments)] = unit
        for unit in self.units:
            self._index_unit(unit)

    @staticmethod
    def node_id(unit: ModuleUnit, info: FunctionInfo) -> str:
        return f"{unit.display_path}::{info.qualname}"

    def _index_unit(self, unit: ModuleUnit) -> None:
        mkey = ".".join(unit.segments)
        defs = self.module_defs.setdefault(mkey, {})
        by_ast = {id(info.node): info for info in unit.functions}
        # Class membership from the tree (a qualname alone cannot
        # distinguish ``Class.method`` from ``outer.inner``).
        class_table = self.classes.setdefault(mkey, {})
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = class_table.setdefault(node.name, {})
            for child in node.body:
                info = by_ast.get(id(child))
                if info is not None:
                    nid = self.node_id(unit, info)
                    methods[info.node.name] = nid
                    self._class_of[id(info)] = node.name
        for info in unit.functions:
            nid = self.node_id(unit, info)
            defs.setdefault(info.qualname, []).append(nid)
            if "." not in info.qualname:
                # Module-level function: callable by bare name.
                defs.setdefault(info.qualname, [])
            else:
                name = info.qualname.rsplit(".", 1)[1]
                if not name.startswith("__"):
                    self.methods.setdefault(name, []).append(nid)
        # A local class name resolves to its constructor.
        for cls, methods in class_table.items():
            ctor = methods.get("__init__")
            if ctor is not None:
                defs.setdefault(cls, []).append(ctor)

    def enclosing_class(
        self, unit: ModuleUnit, info: FunctionInfo
    ) -> Optional[str]:
        return self._class_of.get(id(info))

    def resolve_dotted(
        self, dotted: str, _depth: int = 0
    ) -> Tuple[str, ...]:
        """Resolve a dotted import origin to node ids, following
        re-exports through package ``__init__`` alias tables (bounded
        hops, cycle-safe via the depth cap)."""
        if _depth > 8:
            return ()
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            mkey = ".".join(parts[:i])
            unit = self.unit_by_module.get(mkey)
            if unit is None:
                continue
            symbol = ".".join(parts[i:])
            hit = self.module_defs.get(mkey, {}).get(symbol)
            if hit:
                return tuple(sorted(hit))
            # Re-export hop: ``from repro.algorithms import dijkstra``
            # where algorithms/__init__ aliases the real module.
            head, rest = parts[i], parts[i + 1 :]
            origin = unit.import_aliases.get(head)
            if origin is not None:
                return self.resolve_dotted(
                    ".".join([origin] + rest), _depth + 1
                )
        return ()

    def resolve_call(
        self, unit: ModuleUnit, info: FunctionInfo, call: ast.Call
    ) -> Optional[CallSite]:
        name = _call_name(call)
        if name is None:
            return None
        mkey = ".".join(unit.segments)
        func = call.func
        lineno = call.lineno
        col = call.col_offset
        if isinstance(func, ast.Name):
            local = self.module_defs.get(mkey, {}).get(name)
            if local:
                return CallSite(
                    lineno, col, name, "local", tuple(sorted(local))
                )
            origin = unit.import_aliases.get(name)
            if origin is not None:
                targets = self.resolve_dotted(origin)
                if targets:
                    return CallSite(
                        lineno, col, name, "import", targets
                    )
            return CallSite(lineno, col, name, "opaque", ())
        # Attribute call.  A chain rooted at an import alias resolves
        # precisely; ``self``/``cls`` resolve through the enclosing
        # class; anything else falls back to the name join.
        dotted = unit.dotted_source(func)
        if dotted is not None:
            targets = self.resolve_dotted(dotted)
            if targets:
                return CallSite(lineno, col, name, "import", targets)
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id in (
            "self",
            "cls",
        ):
            cls = self.enclosing_class(unit, info)
            if cls is not None:
                hit = (
                    self.classes.get(mkey, {})
                    .get(cls, {})
                    .get(name)
                )
                if hit is not None:
                    return CallSite(lineno, col, name, "self", (hit,))
        if name.startswith("__"):
            return CallSite(lineno, col, name, "opaque", ())
        joined = self.methods.get(name)
        if joined:
            return CallSite(
                lineno, col, name, "join", tuple(sorted(joined))
            )
        return CallSite(lineno, col, name, "opaque", ())


def _direct_bits(
    info: FunctionInfo,
) -> Tuple[Tuple[str, ...], bool, bool, bool, bool, bool]:
    """(reads, returns_value, serializes, noises, draws, spends) from
    one pass over the function's owned nodes."""
    reads = set()
    returns_value = serializes = noises = draws = spends = False
    for sub in _owned_walk(info, info.node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.ctx, ast.Load)
            and sub.attr in WEIGHT_READS
        ):
            reads.add(sub.attr)
        elif isinstance(sub, ast.Return) and not (
            sub.value is None
            or (
                isinstance(sub.value, ast.Constant)
                and sub.value.value is None
            )
        ):
            returns_value = True
        elif isinstance(sub, ast.Call):
            name = _call_name(sub)
            if name is None:
                continue
            if is_noise_sink_name(name):
                noises = True
            elif name in OUTPUT_SINKS:
                serializes = True
            if is_draw_name(name):
                draws = True
            if name in SPEND_NAMES:
                spends = True
    return (
        tuple(sorted(reads)),
        returns_value,
        serializes,
        noises,
        draws,
        spends,
    )


@dataclass
class CallGraph:
    """The resolved project call graph: nodes, forward edges (inside
    each node's ``calls``), and the reverse caller index."""

    nodes: Dict[str, FunctionNode]
    callers: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.callers:
            reverse: Dict[str, List[str]] = {}
            for node in self.nodes.values():
                for site in node.calls:
                    for target in site.targets:
                        reverse.setdefault(target, []).append(
                            node.node_id
                        )
            self.callers = {
                nid: tuple(sorted(set(callers)))
                for nid, callers in reverse.items()
            }

    def callers_of(self, node_id: str) -> Tuple[str, ...]:
        return self.callers.get(node_id, ())

    def sorted_nodes(self) -> List[FunctionNode]:
        return [self.nodes[k] for k in sorted(self.nodes)]

    @property
    def num_edges(self) -> int:
        return sum(
            len(site.targets)
            for node in self.nodes.values()
            for site in node.calls
        )


def build_call_graph(units: Iterable[ModuleUnit]) -> CallGraph:
    """Construct the project call graph for a set of parsed modules."""
    units = tuple(units)
    resolver = _Resolver(units)
    nodes: Dict[str, FunctionNode] = {}
    for unit in units:
        for info in unit.functions:
            nid = _Resolver.node_id(unit, info)
            sites: List[CallSite] = []
            for sub in _owned_walk(info, info.node):
                if isinstance(sub, ast.Call):
                    site = resolver.resolve_call(unit, info, sub)
                    if site is not None:
                        sites.append(site)
            sites.sort(key=lambda s: (s.lineno, s.col))
            reads, returns_value, serializes, noises, draws, spends = (
                _direct_bits(info)
            )
            nodes[nid] = FunctionNode(
                node_id=nid,
                path=unit.display_path,
                module=".".join(unit.segments),
                qualname=info.qualname,
                name=info.qualname.rsplit(".", 1)[-1],
                lineno=info.lineno,
                calls=tuple(sites),
                reads=reads,
                returns_value=returns_value,
                serializes=serializes,
                noises=noises,
                draws=draws,
                spends=spends,
            )
    return CallGraph(nodes=nodes)


# ----------------------------------------------------------------------
# The versioned repro-callgraph document
# ----------------------------------------------------------------------


def callgraph_document(graph: CallGraph) -> Dict[str, object]:
    """The versioned JSON document for one call graph (the
    ``lint --callgraph-out`` artifact)."""
    nodes = graph.sorted_nodes()
    resolved = sum(
        1
        for node in nodes
        for site in node.calls
        if site.targets
    )
    total_sites = sum(len(node.calls) for node in nodes)
    return {
        "format": CALLGRAPH_FORMAT,
        "version": CALLGRAPH_VERSION,
        "functions": [node.as_dict() for node in nodes],
        "stats": {
            "functions": len(nodes),
            "call_sites": total_sites,
            "resolved_call_sites": resolved,
            "edges": graph.num_edges,
            "modules": len({node.module for node in nodes}),
        },
    }


def validate_callgraph(doc: object) -> Dict[str, object]:
    """Check a parsed ``repro-callgraph`` document; returns it typed.

    Fail-closed in the house style: wrong format marker, unsupported
    version, missing sections, a function entry without its summary
    bits, a call whose target id is not a known function, or stats
    that disagree with the listed functions all raise
    :class:`~repro.exceptions.LintError`.
    """
    if not isinstance(doc, dict):
        raise LintError(
            "callgraph must be a JSON object, got "
            f"{type(doc).__name__}"
        )
    if doc.get("format") != CALLGRAPH_FORMAT:
        raise LintError(
            f"not a callgraph document (format={doc.get('format')!r}, "
            f"expected {CALLGRAPH_FORMAT!r})"
        )
    if doc.get("version") != CALLGRAPH_VERSION:
        raise LintError(
            f"unsupported callgraph version {doc.get('version')!r} "
            f"(this build reads version {CALLGRAPH_VERSION})"
        )
    functions = doc.get("functions")
    if not isinstance(functions, list):
        raise LintError("callgraph has no 'functions' list")
    ids = set()
    for entry in functions:
        if not isinstance(entry, dict):
            raise LintError("callgraph function entry is not an object")
        for key in ("id", "path", "module", "qualname"):
            if not isinstance(entry.get(key), str):
                raise LintError(
                    f"callgraph function entry lacks string {key!r}"
                )
        if not isinstance(entry.get("line"), int):
            raise LintError(
                "callgraph function entry lacks integer 'line'"
            )
        for key in (
            "returns_value",
            "serializes",
            "noises",
            "draws",
            "spends",
        ):
            if not isinstance(entry.get(key), bool):
                raise LintError(
                    f"callgraph function entry lacks boolean {key!r}"
                )
        if not isinstance(entry.get("reads"), list) or not isinstance(
            entry.get("calls"), list
        ):
            raise LintError(
                "callgraph function entry lacks 'reads'/'calls' lists"
            )
        ids.add(entry["id"])
    edges = 0
    for entry in functions:
        for call in entry["calls"]:
            if not isinstance(call, dict) or not isinstance(
                call.get("targets"), list
            ):
                raise LintError(
                    "callgraph call site lacks a 'targets' list"
                )
            for target in call["targets"]:
                if target not in ids:
                    raise LintError(
                        f"callgraph call targets unknown function "
                        f"{target!r}"
                    )
                edges += 1
    stats = doc.get("stats")
    if not isinstance(stats, dict):
        raise LintError("callgraph has no 'stats' object")
    if stats.get("functions") != len(functions) or (
        stats.get("edges") != edges
    ):
        raise LintError(
            "callgraph stats disagree with its functions "
            f"(stats say functions={stats.get('functions')} "
            f"edges={stats.get('edges')}, document has "
            f"{len(functions)} and {edges})"
        )
    return doc
