"""privlint — the repo's AST-based privacy/determinism static analyzer.

The serving stack's correctness rests on cross-cutting invariants that
unit tests can only sample: every raw-weight read is budget-accounted
and noised before release (the Sealfon model — topology public,
weights private), randomness flows only through an explicitly threaded
:class:`~repro.rng.Rng`, telemetry/audit/profiling are purely
observational, and concurrency/time hygiene keeps seeded outputs
deterministic.  privlint turns those invariants into machine-checked
properties of every source file: a zero-dependency ``ast`` visitor
pipeline with five rule families (PL1 privacy taint, PL2 RNG
discipline, PL3 observational purity, PL4 determinism hygiene, PL5
budget hygiene), per-line ``# privlint: ignore[rule]`` suppressions,
a count-aware committed JSON baseline for grandfathered findings, and
a versioned ``repro-lint`` report document with a fail-closed reader.

PL1 and PL5 are inter-procedural: a project-wide call graph
(:mod:`repro.privlint.callgraph`, serializable as the versioned
``repro-callgraph`` document) carries per-function summaries — reads
private weight state, returns a derived value, noises, spends budget
— that the rules propagate to a bounded, cycle-safe fixpoint.  A
helper that returns a raw weight-derived value is clean when every
caller noises it; a serving epoch that can reach a ``laplace_*`` draw
before a ledger ``spend`` is flagged.

Run it via the CLI (the CI lint gate)::

    python -m repro.cli lint                      # self-host src/repro
    python -m repro.cli lint --format json        # machine-readable
    python -m repro.cli lint --paths src/repro/serving   # pre-commit
    python -m repro.cli lint --update-baseline    # regrow the baseline
    python -m repro.cli lint --report-unused-ignores  # dead ignores
    python -m repro.cli lint --callgraph-out cg.json  # debug artifact

or programmatically::

    from repro.privlint import run_lint, lint_document, load_baseline
    from repro.privlint import DEFAULT_BASELINE_PATH

    result = run_lint()
    document = lint_document(
        result, load_baseline(DEFAULT_BASELINE_PATH)
    )
    assert document["summary"]["new"] == 0

See the README's "Static analysis" section for the rule catalog with
motivating examples, the suppression syntax, and the baseline
workflow.
"""

from __future__ import annotations

from .callgraph import (
    CALLGRAPH_FORMAT,
    CALLGRAPH_VERSION,
    CallGraph,
    CallSite,
    FunctionNode,
    build_call_graph,
    callgraph_document,
    validate_callgraph,
)
from .engine import (
    EXCLUDED_DIR_NAMES,
    FunctionInfo,
    LintResult,
    ModuleUnit,
    ProjectContext,
    UnusedIgnore,
    default_package_root,
    iter_source_files,
    load_module_unit,
    run_lint,
)
from .findings import SEVERITIES, Finding, finding_from_dict
from .report import (
    BASELINE_FORMAT,
    BASELINE_VERSION,
    DEFAULT_BASELINE_PATH,
    LINT_FORMAT,
    LINT_VERSION,
    lint_document,
    load_baseline,
    render_text,
    save_baseline,
    validate_lint_report,
)
from .rules import (
    DEFAULT_RULES,
    PL1_ALLOWLIST,
    PL5_RELEASE_PRIMITIVES,
    PL5_SERVING_GLOBS,
    PL1WeightTaint,
    PL2RngDiscipline,
    PL3ObservationalPurity,
    PL4DeterminismHygiene,
    PL5BudgetHygiene,
    Rule,
)
from .suppressions import is_suppressed, parse_suppressions

__all__ = [
    "Finding",
    "finding_from_dict",
    "SEVERITIES",
    "FunctionInfo",
    "ModuleUnit",
    "ProjectContext",
    "UnusedIgnore",
    "LintResult",
    "EXCLUDED_DIR_NAMES",
    "default_package_root",
    "iter_source_files",
    "load_module_unit",
    "run_lint",
    "CallGraph",
    "CallSite",
    "FunctionNode",
    "CALLGRAPH_FORMAT",
    "CALLGRAPH_VERSION",
    "build_call_graph",
    "callgraph_document",
    "validate_callgraph",
    "Rule",
    "DEFAULT_RULES",
    "PL1_ALLOWLIST",
    "PL5_SERVING_GLOBS",
    "PL5_RELEASE_PRIMITIVES",
    "PL1WeightTaint",
    "PL2RngDiscipline",
    "PL3ObservationalPurity",
    "PL4DeterminismHygiene",
    "PL5BudgetHygiene",
    "parse_suppressions",
    "is_suppressed",
    "LINT_FORMAT",
    "LINT_VERSION",
    "BASELINE_FORMAT",
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_PATH",
    "lint_document",
    "validate_lint_report",
    "load_baseline",
    "save_baseline",
    "render_text",
]
