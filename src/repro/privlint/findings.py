"""The :class:`Finding` record produced by every privlint rule.

A finding pins one rule violation to one source location.  Findings
are plain value objects so the rest of the analyzer — suppression
filtering, baseline diffing, the JSON report — can treat them
uniformly; rules never print, they only yield findings.

Baselines match findings on :attr:`Finding.key` — ``(rule, path,
message)``, deliberately *excluding* the line number — so grandfathered
findings survive unrelated edits that shift code up or down, while any
change to the offending function's name (messages embed the qualname)
re-surfaces the finding for a fresh look.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..exceptions import LintError

__all__ = ["Finding", "SEVERITIES", "finding_from_dict"]

#: Recognized severities, strongest first.  Severity is informational —
#: the lint gate fails on any *new* finding regardless of severity —
#: but reports sort errors above warnings.
SEVERITIES: Tuple[str, ...] = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Parameters
    ----------
    rule:
        The rule identifier (``PL1`` .. ``PL4``).
    path:
        Display path of the offending file, POSIX-style and relative
        to the scan root's parent (``repro/serving/service.py``), so
        reports and baselines are stable across checkouts.
    line:
        1-based line of the offending statement (the ``def`` line for
        function-scoped findings).
    message:
        Human-readable description; embeds the function qualname for
        function-scoped findings so the baseline key is stable.
    severity:
        ``error`` or ``warning`` (see :data:`SEVERITIES`).
    """

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise LintError(
                f"unknown finding severity {self.severity!r} "
                f"(expected one of {', '.join(SEVERITIES)})"
            )

    @property
    def key(self) -> Tuple[str, str, str]:
        """The baseline identity of this finding (line-independent)."""
        return (self.rule, self.path, self.message)

    @property
    def sort_key(self) -> Tuple[str, int, str]:
        """Stable report order: by path, then line, then rule."""
        return (self.path, self.line, self.rule)

    def as_dict(self) -> Dict[str, object]:
        """The finding as a JSON-ready mapping."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        """One ``path:line: rule severity: message`` report line."""
        return (
            f"{self.path}:{self.line}: {self.rule} "
            f"[{self.severity}] {self.message}"
        )


def finding_from_dict(entry: object) -> Finding:
    """Rebuild a :class:`Finding` from a report/baseline mapping.

    Fail-closed: a malformed entry raises
    :class:`~repro.exceptions.LintError` rather than producing a
    half-populated finding that would silently never match anything.
    """
    if not isinstance(entry, dict):
        raise LintError(
            f"finding entry must be an object, got {type(entry).__name__}"
        )
    missing = [
        k for k in ("rule", "path", "line", "message") if k not in entry
    ]
    if missing:
        raise LintError(
            f"finding entry is missing keys: {', '.join(missing)}"
        )
    try:
        return Finding(
            rule=str(entry["rule"]),
            path=str(entry["path"]),
            line=int(entry["line"]),
            message=str(entry["message"]),
            severity=str(entry.get("severity", "error")),
        )
    except (TypeError, ValueError) as error:
        raise LintError(f"malformed finding entry: {error}") from None
