"""The PL1-PL4 rule families of the privlint analyzer.

Each rule is a stateless object with a ``name``, a one-line
``summary``, and a ``check(unit)`` generator yielding
:class:`~repro.privlint.findings.Finding` records.  The rules encode
the three cross-cutting invariants of the Sealfon private-edge-weight
model as machine-checked properties:

* **PL1 — privacy taint.**  Topology is public, weights are private:
  a function that reads private weight state (``WeightedGraph``
  weight accessors, ``CSRGraph.weights``, ``with_weights``) and
  returns or serializes a derived value must pass through a
  recognized noising sink (``laplace_*`` draws, a registry/synopsis
  ``build``, a ledger ``spend``) on the way out.  Exact-recomputation
  kernels that are only ever invoked *under* a release are carried on
  the maintained :data:`PL1_ALLOWLIST`.
* **PL2 — RNG discipline.**  All randomness flows through an
  explicitly threaded :class:`~repro.rng.Rng`: no global-state
  ``random.*`` / ``numpy.random.*`` calls, no entropy-seeded
  ``default_rng()``, no wall-clock-seeded generators, and any
  function that draws noise receives its generator as a parameter
  (its own or an enclosing function's) or via constructor-threaded
  attribute state.
* **PL3 — observational purity.**  Telemetry observes, never acts:
  no import from ``repro.telemetry.*`` into the modules that draw
  noise or mutate ledgers, and no ``rng`` parameter in any telemetry
  signature.
* **PL4 — concurrency/determinism hygiene.**  Dual-lock acquisitions
  order by ``id`` so cross-merges cannot deadlock, and wall-clock
  reads (``time.time``, ``datetime.now``) never feed seeded or
  deterministic outputs — the monotonic clock is for latencies,
  wall-clock timestamps are for observational records and carry an
  inline justification.

The analysis is intentionally single-function (no inter-procedural
dataflow): precise enough to catch the bug classes above, simple
enough that a finding is explainable by reading one function.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from .engine import FunctionInfo, ModuleUnit
from .findings import Finding

__all__ = [
    "Rule",
    "PL1WeightTaint",
    "PL2RngDiscipline",
    "PL3ObservationalPurity",
    "PL4DeterminismHygiene",
    "DEFAULT_RULES",
    "PL1_ALLOWLIST",
]


class Rule:
    """Base class for privlint rules (stateless; yields findings)."""

    name: str = "PL0"
    summary: str = ""

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def _call_target(node: ast.Call) -> Optional[str]:
    """The called name: ``f(...)`` -> ``f``, ``x.m(...)`` -> ``m``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


#: Wall-clock reads (dotted import origins).  ``time.perf_counter`` /
#: ``time.monotonic`` are deliberately absent: the monotonic clock is
#: the blessed way to measure latency.
_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _is_wallclock_call(unit: ModuleUnit, node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and (unit.dotted_source(node.func) or "") in _WALLCLOCK
    )


def _contains_wallclock(unit: ModuleUnit, node: ast.AST) -> bool:
    return any(_is_wallclock_call(unit, n) for n in ast.walk(node))


# ----------------------------------------------------------------------
# PL1 — privacy taint
# ----------------------------------------------------------------------

#: Attribute names whose access reads private weight state.
_WEIGHT_READS = frozenset(
    {
        "weight",
        "weights",
        "weight_vector",
        "edge_weights",
        "with_weights",
        "total_weight",
        "path_weight",
    }
)

#: Call targets recognized as noising/accounting sinks: Laplace draws
#: and helpers, mechanism release methods, registry/synopsis builds,
#: ledger spends, and the engine's vectorized perturbation kernels.
_NOISE_SINK_PREFIXES = ("laplace", "release_", "build_", "perturb_")
_NOISE_SINK_NAMES = frozenset({"build", "spend"})

#: Call/name targets that move a value out of the process: returns are
#: detected structurally, these cover serialize/log escapes.
_OUTPUT_SINKS = frozenset(
    {"print", "dumps", "dump", "write", "write_text", "writelines"}
)

#: Maintained allowlist (display-path globs): exact-computation
#: substrate that reads weights *by design* and is only ever invoked
#: under a release mechanism or for ground-truth evaluation.  Entries
#: here are reviewed in PRs like any other code change; new modules
#: are NOT allowlisted by default.
PL1_ALLOWLIST: Tuple[str, ...] = (
    # The graph substrate: these modules *define* the weight state and
    # its accessors; the release boundary is above them.
    "repro/graphs/*",
    # Exact algorithms (Dijkstra, MST, matchings, coverings): the
    # paper's subroutines, called only under a mechanism's budgeted
    # release or to compute evaluation ground truth.
    "repro/algorithms/*",
    # The vectorized CSR kernels (the ISSUE's canonical example):
    # exact recomputation invoked under synopsis builds.
    "repro/engine/*",
    # Workload generators *construct* the synthetic private input
    # (road networks, congestion scenarios) and compute ground-truth
    # error for the replay harness — upstream of any release.
    "repro/workloads/*",
    # Error metrics compare released values against exact ground
    # truth; they never leave the evaluation harness.
    "repro/analysis/errors.py",
)


class PL1WeightTaint(Rule):
    """Weight-derived values must leave functions through a noising
    sink."""

    name = "PL1"
    summary = (
        "function reads private weight state and returns/serializes a "
        "derived value without a recognized noising sink"
    )

    def __init__(
        self, allowlist: Optional[Sequence[str]] = None
    ) -> None:
        self.allowlist: Tuple[str, ...] = (
            tuple(allowlist) if allowlist is not None else PL1_ALLOWLIST
        )

    def _allowlisted(self, unit: ModuleUnit) -> bool:
        return any(
            fnmatch(unit.display_path, pattern)
            for pattern in self.allowlist
        )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if self._allowlisted(unit):
            return
        for info in unit.functions:
            reads = set()
            returns_value = False
            serializes = False
            noised = False
            for sub in _owned_walk(info, info.node):
                if (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.ctx, ast.Load)
                    and sub.attr in _WEIGHT_READS
                ):
                    reads.add(sub.attr)
                elif isinstance(sub, ast.Return) and not (
                    sub.value is None
                    or (
                        isinstance(sub.value, ast.Constant)
                        and sub.value.value is None
                    )
                ):
                    returns_value = True
                elif isinstance(sub, ast.Call):
                    target = _call_target(sub)
                    if target is None:
                        continue
                    if target in _NOISE_SINK_NAMES or any(
                        target.startswith(p)
                        for p in _NOISE_SINK_PREFIXES
                    ):
                        noised = True
                    elif target in _OUTPUT_SINKS:
                        serializes = True
            if reads and (returns_value or serializes) and not noised:
                escape = (
                    "returns" if returns_value else "serializes/logs"
                )
                yield Finding(
                    rule=self.name,
                    path=unit.display_path,
                    line=info.lineno,
                    message=(
                        f"function '{info.qualname}' reads private "
                        f"weight state ({', '.join(sorted(reads))}) "
                        f"and {escape} a derived value without a "
                        "recognized noising sink (laplace_*, registry "
                        "build, ledger spend)"
                    ),
                    severity="error",
                )


def _owned_walk(
    info: FunctionInfo, node: ast.AST
) -> Iterable[ast.AST]:
    """Walk ``node`` without crossing into nested function bodies
    (those are owned — and checked — separately)."""
    yield node
    if isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef)
    ) and node is not info.node:
        return
    for child in ast.iter_child_nodes(node):
        yield from _owned_walk(info, child)


# ----------------------------------------------------------------------
# PL2 — RNG discipline
# ----------------------------------------------------------------------

#: numpy.random constructors that carry *explicit* state and are
#: therefore fine (the library's own Rng wraps default_rng(seed)).
_EXPLICIT_STATE_CTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: Noise-drawing methods whose receiver must be a threaded generator.
_NOISE_DRAWS = frozenset(
    {"laplace", "laplace_vector", "normal", "exponential"}
)


class PL2RngDiscipline(Rule):
    """All randomness flows through an explicitly threaded ``Rng``."""

    name = "PL2"
    summary = (
        "global-state / entropy-seeded / wall-clock-seeded randomness, "
        "or a noise draw whose rng was not threaded as a parameter"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = unit.dotted_source(node.func)
            if dotted is not None:
                yield from self._check_dotted(unit, node, dotted)
            yield from self._check_draw(unit, node)

    def _check_dotted(
        self, unit: ModuleUnit, node: ast.Call, dotted: str
    ) -> Iterator[Finding]:
        if dotted.startswith("random."):
            yield Finding(
                rule=self.name,
                path=unit.display_path,
                line=node.lineno,
                message=(
                    f"global-state stdlib randomness '{dotted}': all "
                    "randomness must flow through a threaded "
                    "repro.rng.Rng"
                ),
            )
            return
        if dotted.startswith("numpy.random."):
            leaf = dotted.rsplit(".", 1)[1]
            if leaf not in _EXPLICIT_STATE_CTORS:
                yield Finding(
                    rule=self.name,
                    path=unit.display_path,
                    line=node.lineno,
                    message=(
                        f"global-state numpy randomness '{dotted}': "
                        "draw from a threaded repro.rng.Rng instead"
                    ),
                )
                return
        seeded_ctor = dotted.endswith(".default_rng") or dotted in (
            "numpy.random.default_rng",
        )
        if seeded_ctor or dotted.rsplit(".", 1)[-1] == "Rng":
            if not node.args and not node.keywords and seeded_ctor:
                yield Finding(
                    rule=self.name,
                    path=unit.display_path,
                    line=node.lineno,
                    message=(
                        f"bare '{dotted}()' draws OS entropy: seed "
                        "explicitly (or accept an Rng parameter) so "
                        "runs are reproducible"
                    ),
                )
            elif any(
                _contains_wallclock(unit, arg)
                for arg in list(node.args)
                + [kw.value for kw in node.keywords]
            ):
                yield Finding(
                    rule=self.name,
                    path=unit.display_path,
                    line=node.lineno,
                    message=(
                        f"wall-clock-seeded generator '{dotted}(...)': "
                        "time-derived seeds are unreproducible; thread "
                        "an explicit seed or Rng"
                    ),
                )

    def _check_draw(
        self, unit: ModuleUnit, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _NOISE_DRAWS
            and isinstance(func.value, ast.Name)
        ):
            # Attribute receivers (self._rng.laplace) are constructor-
            # threaded state, whose constructor is checked in turn.
            return
        receiver = func.value.id
        owner = unit.owner_of(node)
        if owner is None:
            yield Finding(
                rule=self.name,
                path=unit.display_path,
                line=node.lineno,
                message=(
                    f"module-level noise draw '{receiver}."
                    f"{func.attr}(...)': noise may only be drawn "
                    "inside functions that receive an rng parameter"
                ),
            )
            return
        if (
            receiver in owner.params_chain
            or "rng" in owner.params_chain
        ):
            return
        yield Finding(
            rule=self.name,
            path=unit.display_path,
            line=node.lineno,
            message=(
                f"function '{owner.qualname}' draws noise via "
                f"'{receiver}.{func.attr}(...)' but neither "
                f"'{receiver}' nor 'rng' arrives as a parameter: "
                "thread the generator explicitly"
            ),
        )


# ----------------------------------------------------------------------
# PL3 — observational purity
# ----------------------------------------------------------------------

#: Module segments a telemetry module may never import from: the
#: modules that draw noise (rng, dp, core, apsp, mechanisms) or mutate
#: ledgers (serving).
_PL3_BANNED_SEGMENTS = frozenset(
    {"rng", "dp", "serving", "core", "apsp", "mechanisms"}
)


class PL3ObservationalPurity(Rule):
    """Telemetry observes; it never draws noise or spends budget."""

    name = "PL3"
    summary = (
        "telemetry module imports a noise/ledger module, or a "
        "telemetry signature takes an rng"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if "telemetry" not in unit.segments:
            return
        yield from self._check_imports(unit)
        for info in unit.functions:
            if "rng" in info.params:
                yield Finding(
                    rule=self.name,
                    path=unit.display_path,
                    line=info.lineno,
                    message=(
                        f"telemetry function '{info.qualname}' takes "
                        "an 'rng' parameter: telemetry is purely "
                        "observational and never touches randomness"
                    ),
                )

    def _check_imports(self, unit: ModuleUnit) -> Iterator[Finding]:
        package = unit.segments[:-1] if unit.segments else ()
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield from self._check_origin(
                        unit, node.lineno, alias.name.split(".")
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    drop = node.level - 1
                    base = list(
                        package[: len(package) - drop]
                        if drop
                        else package
                    )
                else:
                    base = []
                if node.module:
                    base += node.module.split(".")
                for alias in node.names:
                    origin = base + (
                        [alias.name] if alias.name != "*" else []
                    )
                    yield from self._check_origin(
                        unit, node.lineno, origin
                    )

    def _check_origin(
        self, unit: ModuleUnit, lineno: int, origin: Sequence[str]
    ) -> Iterator[Finding]:
        segments = [s for s in origin if s]
        if "telemetry" in segments:
            return
        banned = [s for s in segments if s in _PL3_BANNED_SEGMENTS]
        if banned:
            yield Finding(
                rule=self.name,
                path=unit.display_path,
                line=lineno,
                message=(
                    f"telemetry module imports "
                    f"'{'.'.join(segments)}' (noise/ledger module "
                    f"'{banned[0]}'): telemetry must stay purely "
                    "observational"
                ),
            )


# ----------------------------------------------------------------------
# PL4 — concurrency/determinism hygiene
# ----------------------------------------------------------------------


def _is_lockish(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and "lock" in node.attr.lower()


class PL4DeterminismHygiene(Rule):
    """Id-ordered dual locking; wall clocks never feed deterministic
    outputs."""

    name = "PL4"
    summary = (
        "dual-lock acquisition without id-ordering, or a wall-clock "
        "read (time.time/datetime.now) outside latency measurement"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if _is_wallclock_call(unit, node):
                dotted = unit.dotted_source(node.func)
                yield Finding(
                    rule=self.name,
                    path=unit.display_path,
                    line=node.lineno,
                    message=(
                        f"wall-clock read '{dotted}()': derive "
                        "latencies from time.perf_counter() and keep "
                        "wall timestamps out of seeded/deterministic "
                        "outputs (observational timestamps get an "
                        "inline justification)"
                    ),
                    severity="warning",
                )
            elif isinstance(node, ast.With) and len(node.items) >= 2:
                yield from self._check_dual_lock(unit, node)

    def _check_dual_lock(
        self, unit: ModuleUnit, node: ast.With
    ) -> Iterator[Finding]:
        locks = [
            item.context_expr
            for item in node.items
            if _is_lockish(item.context_expr)
        ]
        if len(locks) < 2:
            return
        owner = unit.owner_of(node)
        scope: ast.AST = owner.node if owner is not None else unit.tree
        # Evidence of deterministic ordering: the function sorts or
        # compares by id() somewhere before taking both locks.
        orders_by_id = any(
            isinstance(sub, ast.Name) and sub.id == "id"
            for sub in ast.walk(scope)
        )
        if orders_by_id:
            return
        where = (
            f"function '{owner.qualname}'"
            if owner is not None
            else "module scope"
        )
        yield Finding(
            rule=self.name,
            path=unit.display_path,
            line=node.lineno,
            message=(
                f"{where} acquires two locks in one with-statement "
                "without id-ordering: sort the lock holders by id() "
                "first so concurrent cross-acquisitions cannot "
                "deadlock"
            ),
            severity="error",
        )


#: The shipped rule pipeline, in rule-id order.
DEFAULT_RULES: Tuple[Rule, ...] = (
    PL1WeightTaint(),
    PL2RngDiscipline(),
    PL3ObservationalPurity(),
    PL4DeterminismHygiene(),
)
