"""The PL1-PL4 rule families of the privlint analyzer.

Each rule is a stateless object with a ``name``, a one-line
``summary``, and a ``check(unit)`` generator yielding
:class:`~repro.privlint.findings.Finding` records.  The rules encode
the three cross-cutting invariants of the Sealfon private-edge-weight
model as machine-checked properties:

* **PL1 — privacy taint.**  Topology is public, weights are private:
  a function that reads private weight state (``WeightedGraph``
  weight accessors, ``CSRGraph.weights``, ``with_weights``) and
  returns or serializes a derived value must pass through a
  recognized noising sink (``laplace_*`` draws, a registry/synopsis
  ``build``, a ledger ``spend``) on the way out.  Exact-recomputation
  kernels that are only ever invoked *under* a release are carried on
  the maintained :data:`PL1_ALLOWLIST`.
* **PL2 — RNG discipline.**  All randomness flows through an
  explicitly threaded :class:`~repro.rng.Rng`: no global-state
  ``random.*`` / ``numpy.random.*`` calls, no entropy-seeded
  ``default_rng()``, no wall-clock-seeded generators, and any
  function that draws noise receives its generator as a parameter
  (its own or an enclosing function's) or via constructor-threaded
  attribute state.
* **PL3 — observational purity.**  Telemetry observes, never acts:
  no import from ``repro.telemetry.*`` into the modules that draw
  noise or mutate ledgers, and no ``rng`` parameter in any telemetry
  signature.
* **PL4 — concurrency/determinism hygiene.**  Dual-lock acquisitions
  order by ``id`` so cross-merges cannot deadlock, and wall-clock
  reads (``time.time``, ``datetime.now``) never feed seeded or
  deterministic outputs — the monotonic clock is for latencies,
  wall-clock timestamps are for observational records and carry an
  inline justification.
* **PL5 — budget hygiene.**  Inside the serving layer, every path
  from an epoch entry point (``refresh``, ``fresh_batch``, a
  ``build*`` builder) to a raw noise draw (``laplace_*`` /
  ``perturb_*``) must traverse a :class:`~repro.serving.ledger.
  BudgetLedger` ``spend`` first — "spend first, release second" as a
  machine-checked property instead of a comment.

PL2-PL4 are single-function (a finding is explainable by reading one
function).  PL1 and PL5 are *inter-procedural*: they propagate
per-function summaries over the project call graph
(:mod:`repro.privlint.callgraph`) to a bounded, cycle-safe fixpoint,
so a helper that returns a raw weight-derived value is exonerated
when every caller noises it — and flagged when one leaks it.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .callgraph import (
    NOISE_SINK_NAMES,
    NOISE_SINK_PREFIXES,
    OUTPUT_SINKS,
    SPEND_NAMES,
    WEIGHT_READS,
    CallGraph,
    FunctionNode,
    is_draw_name,
)
from .engine import FunctionInfo, ModuleUnit, ProjectContext
from .findings import Finding
from .suppressions import is_suppressed

__all__ = [
    "Rule",
    "PL1WeightTaint",
    "PL2RngDiscipline",
    "PL3ObservationalPurity",
    "PL4DeterminismHygiene",
    "PL5BudgetHygiene",
    "DEFAULT_RULES",
    "PL1_ALLOWLIST",
    "PL5_SERVING_GLOBS",
    "PL5_RELEASE_PRIMITIVES",
]

# Backward-compatible aliases: the taint vocabulary moved to
# repro.privlint.callgraph where the summary extractor lives.
_WEIGHT_READS = WEIGHT_READS
_NOISE_SINK_PREFIXES = NOISE_SINK_PREFIXES
_NOISE_SINK_NAMES = NOISE_SINK_NAMES
_OUTPUT_SINKS = OUTPUT_SINKS


class Rule:
    """Base class for privlint rules (stateless; yields findings).

    Per-unit rules implement ``check(unit)``.  Rules that reason
    across call boundaries set ``project = True`` and implement
    ``check_project(context)`` instead — the engine hands them the
    shared :class:`~repro.privlint.engine.ProjectContext` once per
    run.
    """

    name: str = "PL0"
    summary: str = ""
    project: bool = False

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(
        self, context: ProjectContext
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def _call_target(node: ast.Call) -> Optional[str]:
    """The called name: ``f(...)`` -> ``f``, ``x.m(...)`` -> ``m``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


#: Wall-clock reads (dotted import origins).  ``time.perf_counter`` /
#: ``time.monotonic`` are deliberately absent: the monotonic clock is
#: the blessed way to measure latency.
_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _is_wallclock_call(unit: ModuleUnit, node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and (unit.dotted_source(node.func) or "") in _WALLCLOCK
    )


def _contains_wallclock(unit: ModuleUnit, node: ast.AST) -> bool:
    return any(_is_wallclock_call(unit, n) for n in ast.walk(node))


# ----------------------------------------------------------------------
# PL1 — privacy taint (inter-procedural)
# ----------------------------------------------------------------------

#: Maintained allowlist (display-path globs): modules that read and
#: hand out weight state *by design*, where the release boundary is
#: structurally above them.  Since the call-graph pass the
#: ``engine``/``algorithms`` layers are no longer here — the analyzer
#: now *proves* their exact kernels flow into noising callers instead
#: of trusting a glob.  Entries are reviewed in PRs like any other
#: code change; new modules are NOT allowlisted by default.
PL1_ALLOWLIST: Tuple[str, ...] = (
    # The graph substrate: these modules *define* the weight state and
    # its accessors; every consumer sits above them.
    "repro/graphs/*",
    # Workload generators *construct* the synthetic private input
    # (road networks, congestion scenarios) and compute ground-truth
    # error for the replay harness — upstream of any release.
    "repro/workloads/*",
    # Error metrics compare released values against exact ground
    # truth; they never leave the evaluation harness.
    "repro/analysis/errors.py",
)


class PL1WeightTaint(Rule):
    """Weight-derived values must leave the program through a noising
    sink — checked across call boundaries.

    The analysis runs over the project call graph in three bounded
    fixpoints (each pass flips only monotone bits, so recursion and
    mutual recursion terminate):

    1. **Taint.**  A function is tainted if it reads weight state
       directly, or calls a tainted function that *forwards* its
       taint (returns a value, does not noise it, and is not a
       trusted boundary — an allowlisted module or a def-line
       ``ignore[PL1]``).
    2. **Candidates.**  A tainted function that escapes (returns or
       serializes) without noising and is not trusted is a candidate
       leak — its raw value is in *someone's* hands.
    3. **Leaks.**  A candidate actually leaks if its value reaches
       the outside raw: it serializes, it has no caller (the raw
       return IS the API surface), or some caller re-exposes it and
       leaks in turn.  Candidates whose every caller noises, is
       trusted, or keeps the value internal are exonerated — this is
       what lets the exact ``engine``/``algorithms`` kernels come off
       the allowlist.

    Only *direct readers* are flagged (one finding per chain root);
    multi-hop leaks carry a witness call chain in the message.
    """

    name = "PL1"
    project = True
    summary = (
        "function reads private weight state and the derived value "
        "escapes, across all call paths, without a recognized "
        "noising sink"
    )

    #: Witness chains longer than this render with an ellipsis.
    _CHAIN_DISPLAY_CAP = 4

    def __init__(
        self, allowlist: Optional[Sequence[str]] = None
    ) -> None:
        self.allowlist: Tuple[str, ...] = (
            tuple(allowlist) if allowlist is not None else PL1_ALLOWLIST
        )

    def _allowlisted(self, display_path: str) -> bool:
        return any(
            fnmatch(display_path, pattern)
            for pattern in self.allowlist
        )

    # -- the three fixpoints --------------------------------------

    def _trusted(
        self, context: ProjectContext, with_suppressions: bool
    ) -> FrozenSet[str]:
        graph: CallGraph = context.callgraph
        trusted: Set[str] = set()
        for node in graph.nodes.values():
            if self._allowlisted(node.path):
                trusted.add(node.node_id)
                continue
            if not with_suppressions:
                continue
            unit = context.unit_for(node.path)
            if unit is not None and is_suppressed(
                self.name, node.lineno, unit.suppressions
            ):
                trusted.add(node.node_id)
        return frozenset(trusted)

    def _analyze(
        self, graph: CallGraph, trusted: FrozenSet[str]
    ) -> Tuple[Set[str], Set[str]]:
        """(candidates, leaking) under one trust assignment."""
        nodes = graph.nodes
        # 1. Taint: seeded by direct readers, propagated caller-ward
        # through functions that forward raw derived values.
        tainted: Set[str] = {
            nid for nid, node in nodes.items() if node.reads_weights
        }
        changed = True
        while changed:
            changed = False
            for nid, node in nodes.items():
                if nid in tainted:
                    continue
                for site in node.calls:
                    if any(
                        t in tainted and self._forwards(nodes[t], trusted)
                        for t in site.targets
                    ):
                        tainted.add(nid)
                        changed = True
                        break
        # 2. Candidates: tainted escapers with no noising sink.
        candidates: Set[str] = {
            nid
            for nid in tainted
            if nid not in trusted
            and nodes[nid].escapes
            and not nodes[nid].noises
        }
        # 3. Leaks: seeded by candidates whose value reaches the
        # outside unconditionally (serializers, caller-less roots),
        # propagated callee-ward — a candidate leaks when a caller
        # that re-exposes its value leaks.
        leaking: Set[str] = {
            nid
            for nid in candidates
            if nodes[nid].serializes or not graph.callers_of(nid)
        }
        changed = True
        while changed:
            changed = False
            for nid in candidates:
                if nid in leaking:
                    continue
                if any(
                    caller in leaking
                    for caller in graph.callers_of(nid)
                ):
                    leaking.add(nid)
                    changed = True
        return candidates, leaking

    @staticmethod
    def _forwards(node: FunctionNode, trusted: FrozenSet[str]) -> bool:
        """Does a tainted ``node`` pass raw taint to its callers?"""
        return (
            node.returns_value
            and not node.noises
            and node.node_id not in trusted
        )

    def _witness_chain(
        self, graph: CallGraph, root: str, leaking: Set[str]
    ) -> List[str]:
        """A leak path from ``root`` caller-ward: greedy, min-id at
        each hop, cycle-safe via the visited set."""
        chain = [root]
        visited = {root}
        current = root
        while True:
            node = graph.nodes[current]
            if node.serializes or not graph.callers_of(current):
                break
            upstream = sorted(
                c
                for c in graph.callers_of(current)
                if c in leaking and c not in visited
            )
            if not upstream:
                break
            current = upstream[0]
            visited.add(current)
            chain.append(current)
        return chain

    def _render_chain(
        self, graph: CallGraph, chain: List[str]
    ) -> str:
        shown = chain[: self._CHAIN_DISPLAY_CAP]
        parts = [graph.nodes[nid].qualname for nid in shown]
        if len(chain) > len(shown):
            parts.append("...")
        return " -> ".join(parts)

    def _finding(
        self,
        graph: CallGraph,
        nid: str,
        leaking: Set[str],
    ) -> Finding:
        node = graph.nodes[nid]
        escape = "returns" if node.returns_value else "serializes/logs"
        message = (
            f"function '{node.qualname}' reads private "
            f"weight state ({', '.join(node.reads)}) "
            f"and {escape} a derived value without a "
            "recognized noising sink (laplace_*, registry "
            "build, ledger spend)"
        )
        chain = self._witness_chain(graph, nid, leaking)
        if len(chain) > 1:
            message += (
                "; the raw value leaks through call chain "
                f"{self._render_chain(graph, chain)}"
            )
        return Finding(
            rule=self.name,
            path=node.path,
            line=node.lineno,
            message=message,
            severity="error",
        )

    def check_project(
        self, context: ProjectContext
    ) -> Iterator[Finding]:
        graph: CallGraph = context.callgraph
        trusted = self._trusted(context, with_suppressions=True)
        _, leaking = self._analyze(graph, trusted)
        for nid in sorted(leaking):
            if graph.nodes[nid].reads_weights:
                yield self._finding(graph, nid, leaking)
        # Trust-blind pass: decide which def-line ignore[PL1]
        # comments actually changed the outcome.  Suppressed roots
        # are re-yielded (the engine counts and marks them);
        # suppressed mid-chain boundaries are marked used directly.
        blind_trusted = self._trusted(context, with_suppressions=False)
        suppressed_boundaries = trusted - blind_trusted
        if not suppressed_boundaries:
            return
        blind_candidates, blind_leaking = self._analyze(
            graph, blind_trusted
        )
        for nid in sorted(blind_leaking):
            node = graph.nodes[nid]
            if nid not in suppressed_boundaries:
                continue
            if node.reads_weights:
                yield self._finding(graph, nid, blind_leaking)
            else:
                context.mark_suppression_used(node.path, node.lineno)
        # A suppressed boundary that never leaks itself can still be
        # load-bearing: it absorbs a chain that would otherwise leak.
        for nid in sorted(suppressed_boundaries - blind_leaking):
            if nid in blind_candidates:
                node = graph.nodes[nid]
                context.mark_suppression_used(node.path, node.lineno)


def _owned_walk(
    info: FunctionInfo, node: ast.AST
) -> Iterable[ast.AST]:
    """Walk ``node`` without crossing into nested function bodies
    (those are owned — and checked — separately)."""
    yield node
    if isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef)
    ) and node is not info.node:
        return
    for child in ast.iter_child_nodes(node):
        yield from _owned_walk(info, child)


# ----------------------------------------------------------------------
# PL2 — RNG discipline
# ----------------------------------------------------------------------

#: numpy.random constructors that carry *explicit* state and are
#: therefore fine (the library's own Rng wraps default_rng(seed)).
_EXPLICIT_STATE_CTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: Noise-drawing methods whose receiver must be a threaded generator.
_NOISE_DRAWS = frozenset(
    {"laplace", "laplace_vector", "normal", "exponential"}
)


class PL2RngDiscipline(Rule):
    """All randomness flows through an explicitly threaded ``Rng``."""

    name = "PL2"
    summary = (
        "global-state / entropy-seeded / wall-clock-seeded randomness, "
        "or a noise draw whose rng was not threaded as a parameter"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = unit.dotted_source(node.func)
            if dotted is not None:
                yield from self._check_dotted(unit, node, dotted)
            yield from self._check_draw(unit, node)

    def _check_dotted(
        self, unit: ModuleUnit, node: ast.Call, dotted: str
    ) -> Iterator[Finding]:
        if dotted.startswith("random."):
            yield Finding(
                rule=self.name,
                path=unit.display_path,
                line=node.lineno,
                message=(
                    f"global-state stdlib randomness '{dotted}': all "
                    "randomness must flow through a threaded "
                    "repro.rng.Rng"
                ),
            )
            return
        if dotted.startswith("numpy.random."):
            leaf = dotted.rsplit(".", 1)[1]
            if leaf not in _EXPLICIT_STATE_CTORS:
                yield Finding(
                    rule=self.name,
                    path=unit.display_path,
                    line=node.lineno,
                    message=(
                        f"global-state numpy randomness '{dotted}': "
                        "draw from a threaded repro.rng.Rng instead"
                    ),
                )
                return
        seeded_ctor = dotted.endswith(".default_rng") or dotted in (
            "numpy.random.default_rng",
        )
        if seeded_ctor or dotted.rsplit(".", 1)[-1] == "Rng":
            if not node.args and not node.keywords and seeded_ctor:
                yield Finding(
                    rule=self.name,
                    path=unit.display_path,
                    line=node.lineno,
                    message=(
                        f"bare '{dotted}()' draws OS entropy: seed "
                        "explicitly (or accept an Rng parameter) so "
                        "runs are reproducible"
                    ),
                )
            elif any(
                _contains_wallclock(unit, arg)
                for arg in list(node.args)
                + [kw.value for kw in node.keywords]
            ):
                yield Finding(
                    rule=self.name,
                    path=unit.display_path,
                    line=node.lineno,
                    message=(
                        f"wall-clock-seeded generator '{dotted}(...)': "
                        "time-derived seeds are unreproducible; thread "
                        "an explicit seed or Rng"
                    ),
                )

    def _check_draw(
        self, unit: ModuleUnit, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _NOISE_DRAWS
            and isinstance(func.value, ast.Name)
        ):
            # Attribute receivers (self._rng.laplace) are constructor-
            # threaded state, whose constructor is checked in turn.
            return
        receiver = func.value.id
        owner = unit.owner_of(node)
        if owner is None:
            yield Finding(
                rule=self.name,
                path=unit.display_path,
                line=node.lineno,
                message=(
                    f"module-level noise draw '{receiver}."
                    f"{func.attr}(...)': noise may only be drawn "
                    "inside functions that receive an rng parameter"
                ),
            )
            return
        if (
            receiver in owner.params_chain
            or "rng" in owner.params_chain
        ):
            return
        yield Finding(
            rule=self.name,
            path=unit.display_path,
            line=node.lineno,
            message=(
                f"function '{owner.qualname}' draws noise via "
                f"'{receiver}.{func.attr}(...)' but neither "
                f"'{receiver}' nor 'rng' arrives as a parameter: "
                "thread the generator explicitly"
            ),
        )


# ----------------------------------------------------------------------
# PL3 — observational purity
# ----------------------------------------------------------------------

#: Module segments a telemetry module may never import from: the
#: modules that draw noise (rng, dp, core, apsp, mechanisms) or mutate
#: ledgers (serving).
_PL3_BANNED_SEGMENTS = frozenset(
    {"rng", "dp", "serving", "core", "apsp", "mechanisms"}
)


class PL3ObservationalPurity(Rule):
    """Telemetry observes; it never draws noise or spends budget."""

    name = "PL3"
    summary = (
        "telemetry module imports a noise/ledger module, or a "
        "telemetry signature takes an rng"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if "telemetry" not in unit.segments:
            return
        yield from self._check_imports(unit)
        for info in unit.functions:
            if "rng" in info.params:
                yield Finding(
                    rule=self.name,
                    path=unit.display_path,
                    line=info.lineno,
                    message=(
                        f"telemetry function '{info.qualname}' takes "
                        "an 'rng' parameter: telemetry is purely "
                        "observational and never touches randomness"
                    ),
                )

    def _check_imports(self, unit: ModuleUnit) -> Iterator[Finding]:
        package = unit.package
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield from self._check_origin(
                        unit, node.lineno, alias.name.split(".")
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    drop = node.level - 1
                    base = list(
                        package[: len(package) - drop]
                        if drop
                        else package
                    )
                else:
                    base = []
                if node.module:
                    base += node.module.split(".")
                for alias in node.names:
                    origin = base + (
                        [alias.name] if alias.name != "*" else []
                    )
                    yield from self._check_origin(
                        unit, node.lineno, origin
                    )

    def _check_origin(
        self, unit: ModuleUnit, lineno: int, origin: Sequence[str]
    ) -> Iterator[Finding]:
        segments = [s for s in origin if s]
        if "telemetry" in segments:
            return
        banned = [s for s in segments if s in _PL3_BANNED_SEGMENTS]
        if banned:
            yield Finding(
                rule=self.name,
                path=unit.display_path,
                line=lineno,
                message=(
                    f"telemetry module imports "
                    f"'{'.'.join(segments)}' (noise/ledger module "
                    f"'{banned[0]}'): telemetry must stay purely "
                    "observational"
                ),
            )


# ----------------------------------------------------------------------
# PL4 — concurrency/determinism hygiene
# ----------------------------------------------------------------------


def _is_lockish(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and "lock" in node.attr.lower()


class PL4DeterminismHygiene(Rule):
    """Id-ordered dual locking; wall clocks never feed deterministic
    outputs."""

    name = "PL4"
    summary = (
        "dual-lock acquisition without id-ordering, or a wall-clock "
        "read (time.time/datetime.now) outside latency measurement"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if _is_wallclock_call(unit, node):
                dotted = unit.dotted_source(node.func)
                yield Finding(
                    rule=self.name,
                    path=unit.display_path,
                    line=node.lineno,
                    message=(
                        f"wall-clock read '{dotted}()': derive "
                        "latencies from time.perf_counter() and keep "
                        "wall timestamps out of seeded/deterministic "
                        "outputs (observational timestamps get an "
                        "inline justification)"
                    ),
                    severity="warning",
                )
            elif isinstance(node, ast.With) and len(node.items) >= 2:
                yield from self._check_dual_lock(unit, node)

    def _check_dual_lock(
        self, unit: ModuleUnit, node: ast.With
    ) -> Iterator[Finding]:
        locks = [
            item.context_expr
            for item in node.items
            if _is_lockish(item.context_expr)
        ]
        if len(locks) < 2:
            return
        owner = unit.owner_of(node)
        scope: ast.AST = owner.node if owner is not None else unit.tree
        # Evidence of deterministic ordering: the function sorts or
        # compares by id() somewhere before taking both locks.
        orders_by_id = any(
            isinstance(sub, ast.Name) and sub.id == "id"
            for sub in ast.walk(scope)
        )
        if orders_by_id:
            return
        where = (
            f"function '{owner.qualname}'"
            if owner is not None
            else "module scope"
        )
        yield Finding(
            rule=self.name,
            path=unit.display_path,
            line=node.lineno,
            message=(
                f"{where} acquires two locks in one with-statement "
                "without id-ordering: sort the lock holders by id() "
                "first so concurrent cross-acquisitions cannot "
                "deadlock"
            ),
            severity="error",
        )


# ----------------------------------------------------------------------
# PL5 — budget hygiene (inter-procedural)
# ----------------------------------------------------------------------

#: Display-path globs selecting the serving layer, where the ledger
#: discipline applies.  Test fixtures under ``*/serving/`` match too,
#: by design.
PL5_SERVING_GLOBS: Tuple[str, ...] = ("*serving/*",)

#: Serving modules that ARE the release primitives: their ``build*``
#: functions draw the noise a caller has already paid for, so they are
#: not epoch entry points themselves — the budget obligation sits with
#: every caller, which the ``unguarded`` summary propagates.
PL5_RELEASE_PRIMITIVES: Tuple[str, ...] = (
    "repro/serving/synopsis.py",
)

#: Bare names / prefixes that make a serving function an epoch entry
#: point: synopsis refreshes, batch construction, builders.
PL5_ENTRY_NAMES: FrozenSet[str] = frozenset(
    {"refresh", "refresh_shard", "fresh_batch"}
)
PL5_ENTRY_PREFIXES: Tuple[str, ...] = ("build_", "_build")


class PL5BudgetHygiene(Rule):
    """Spend first, release second — every serving-epoch path to a
    noise draw must traverse a budget ledger ``spend``.

    Two bounded fixpoints over the call graph:

    * ``spends(F)``: F calls a ledger ``spend``, directly or
      transitively.
    * ``unguarded(F)``: entered with no prior spend, F can reach a
      raw ``laplace_*``/``perturb_*`` draw before any spend.
      Computed by walking F's call sites in program order with a
      ``spent`` flag: a site is a violation when the flag is clear
      and the site is itself a draw or any resolved target is
      unguarded; the flag sets once a site spends (draw risk is
      evaluated *before* the same site's spend, so a callee that
      internally spends-then-draws is safe and a draw-then-spend one
      is not).

    An entry point (``refresh``/``fresh_batch``/``build*`` in a
    serving module that is not a release primitive) is flagged iff it
    is unguarded.  Fail-closed: an unresolved draw-named call still
    counts as a draw.
    """

    name = "PL5"
    project = True
    summary = (
        "serving-epoch entry point reaches a raw noise draw "
        "(laplace_*/perturb_*) without a preceding budget ledger "
        "spend"
    )

    def __init__(
        self,
        serving_globs: Optional[Sequence[str]] = None,
        primitive_globs: Optional[Sequence[str]] = None,
    ) -> None:
        self.serving_globs: Tuple[str, ...] = (
            tuple(serving_globs)
            if serving_globs is not None
            else PL5_SERVING_GLOBS
        )
        self.primitive_globs: Tuple[str, ...] = (
            tuple(primitive_globs)
            if primitive_globs is not None
            else PL5_RELEASE_PRIMITIVES
        )

    def _is_entry(self, node: FunctionNode) -> bool:
        if not any(
            fnmatch(node.path, g) for g in self.serving_globs
        ):
            return False
        if any(fnmatch(node.path, g) for g in self.primitive_globs):
            return False
        return node.name in PL5_ENTRY_NAMES or any(
            node.name.startswith(p) for p in PL5_ENTRY_PREFIXES
        )

    @staticmethod
    def _spends_fixpoint(graph: CallGraph) -> Set[str]:
        spends = {
            nid
            for nid, node in graph.nodes.items()
            if node.spends
        }
        changed = True
        while changed:
            changed = False
            for nid, node in graph.nodes.items():
                if nid in spends:
                    continue
                if any(
                    t in spends
                    for site in node.calls
                    for t in site.targets
                ):
                    spends.add(nid)
                    changed = True
        return spends

    @staticmethod
    def _unguarded_fixpoint(
        graph: CallGraph, spends: Set[str]
    ) -> Dict[str, Optional[Tuple[int, str]]]:
        """node id -> first offending (line, call name), or None when
        the function is guarded."""
        unguarded: Dict[str, Optional[Tuple[int, str]]] = {
            nid: None for nid in graph.nodes
        }

        def first_violation(
            node: FunctionNode,
        ) -> Optional[Tuple[int, str]]:
            spent = False
            for site in node.calls:  # already in program order
                if not spent:
                    if is_draw_name(site.name):
                        return (site.lineno, site.name)
                    for target in site.targets:
                        if unguarded[target] is not None:
                            return (site.lineno, site.name)
                if site.name in SPEND_NAMES or any(
                    t in spends for t in site.targets
                ):
                    spent = True
            return None

        changed = True
        while changed:
            changed = False
            for nid, node in graph.nodes.items():
                if unguarded[nid] is not None:
                    continue
                violation = first_violation(node)
                if violation is not None:
                    unguarded[nid] = violation
                    changed = True
        return unguarded

    def check_project(
        self, context: ProjectContext
    ) -> Iterator[Finding]:
        graph: CallGraph = context.callgraph
        spends = self._spends_fixpoint(graph)
        unguarded = self._unguarded_fixpoint(graph, spends)
        for nid in sorted(graph.nodes):
            node = graph.nodes[nid]
            if not self._is_entry(node):
                continue
            violation = unguarded[nid]
            if violation is None:
                continue
            _, call_name = violation
            yield Finding(
                rule=self.name,
                path=node.path,
                line=node.lineno,
                message=(
                    f"serving-epoch entry point '{node.qualname}' "
                    f"reaches a raw noise draw via '{call_name}' "
                    "without a preceding budget ledger spend: spend "
                    "first, release second"
                ),
                severity="error",
            )


#: The shipped rule pipeline, in rule-id order.
DEFAULT_RULES: Tuple[Rule, ...] = (
    PL1WeightTaint(),
    PL2RngDiscipline(),
    PL3ObservationalPurity(),
    PL4DeterminismHygiene(),
    PL5BudgetHygiene(),
)
