"""The privlint analysis pipeline: files -> modules -> rules -> findings.

The engine owns everything rule-independent: discovering source files
(with the ``tests/`` exclusion default), parsing each into a
:class:`ModuleUnit` (AST + import-alias map + per-function ownership
index + suppression table), running a rule pipeline over every unit,
and filtering the suppressed findings out.

Zero dependencies beyond the standard library ``ast`` module — the
analyzer must be runnable in any environment that can run the code it
checks, including the scipy-free CI job.

Fail-closed: a file that cannot be read or parsed raises
:class:`~repro.exceptions.LintError` instead of being skipped, because
a skipped file is an unchecked privacy invariant.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..exceptions import LintError
from .findings import Finding
from .suppressions import is_suppressed, parse_suppressions

__all__ = [
    "FunctionInfo",
    "ModuleUnit",
    "ProjectContext",
    "UnusedIgnore",
    "LintResult",
    "default_package_root",
    "iter_source_files",
    "load_module_unit",
    "run_lint",
]

#: Directory names never descended into when scanning a tree.  The
#: ``tests`` entry is the pre-commit-friendly default: fixtures under a
#: test tree intentionally violate the rules.
EXCLUDED_DIR_NAMES: FrozenSet[str] = frozenset(
    {"tests", "__pycache__", ".git"}
)


def default_package_root() -> Path:
    """The installed ``repro`` package directory (the default scan
    root): the analyzer self-hosts on the package it ships inside."""
    return Path(__file__).resolve().parent.parent


@dataclass(frozen=True)
class FunctionInfo:
    """One function definition plus the analysis the rules share.

    ``owned`` holds the AST nodes whose *innermost* enclosing function
    is this one — a nested function's body belongs to the nested
    function, not to its parent — so per-function rules never blame an
    outer function for its inner function's statements.
    """

    node: ast.AST
    qualname: str
    lineno: int
    #: Parameter names of this function alone.
    params: FrozenSet[str]
    #: Parameters visible here including enclosing functions (closures
    #: legitimately draw from an outer function's threaded ``rng``).
    params_chain: FrozenSet[str]
    owned: Tuple[ast.AST, ...]


@dataclass(frozen=True)
class ModuleUnit:
    """One parsed source file, ready for the rule pipeline."""

    path: Path
    #: POSIX display path (stable across checkouts; see ``run_lint``).
    display_path: str
    #: Dotted-module segments of the display path, ``__init__`` dropped
    #: (``("repro", "telemetry", "audit")``).
    segments: Tuple[str, ...]
    #: The *containing package's* segments — for an ``__init__.py``
    #: this is ``segments`` itself (the module IS the package), for an
    #: ordinary module it drops the last segment.  Relative imports
    #: resolve against this, not against ``segments[:-1]``, which is
    #: one level too shallow inside package ``__init__`` modules.
    package: Tuple[str, ...]
    source: str
    tree: ast.Module
    #: Local name -> dotted import source (``np`` -> ``numpy``,
    #: ``default_rng`` -> ``numpy.random.default_rng``).
    import_aliases: Dict[str, str]
    functions: Tuple[FunctionInfo, ...]
    suppressions: Dict[int, FrozenSet[str]]

    def dotted_source(self, node: ast.AST) -> Optional[str]:
        """Resolve an attribute/name chain to its dotted import origin.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when ``np`` was imported as
        numpy.  Returns None when the chain does not bottom out in an
        imported name — a local variable that merely shadows a module
        name never matches a banned prefix.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.import_aliases.get(node.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))

    def owner_of(self, node: ast.AST) -> Optional[FunctionInfo]:
        """The innermost function owning ``node`` (None at module
        scope)."""
        for info in self.functions:
            if any(owned is node for owned in info.owned):
                return info
        return None


_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _argument_names(node: ast.AST) -> FrozenSet[str]:
    args = node.args
    names = [
        a.arg
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        )
    ]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return frozenset(names)


def _index_functions(tree: ast.Module) -> Tuple[FunctionInfo, ...]:
    """Every function in the module with its owned-node set, computed
    in one DFS that tracks the enclosing class/function stack."""
    infos: List[FunctionInfo] = []

    def walk(
        node: ast.AST,
        qual: Tuple[str, ...],
        chain: Tuple[FrozenSet[str], ...],
        owned_sink: Optional[List[ast.AST]],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCTION_NODES):
                params = _argument_names(child)
                owned: List[ast.AST] = [child]
                child_qual = qual + (child.name,)
                walk(child, child_qual, chain + (params,), owned)
                infos.append(
                    FunctionInfo(
                        node=child,
                        qualname=".".join(child_qual),
                        lineno=child.lineno,
                        params=params,
                        params_chain=frozenset().union(
                            params, *chain
                        ),
                        owned=tuple(owned),
                    )
                )
            else:
                if owned_sink is not None:
                    owned_sink.append(child)
                next_qual = (
                    qual + (child.name,)
                    if isinstance(child, ast.ClassDef)
                    else qual
                )
                walk(child, next_qual, chain, owned_sink)

    walk(tree, (), (), None)
    return tuple(infos)


def _index_imports(
    tree: ast.Module, package: Tuple[str, ...]
) -> Dict[str, str]:
    """Local name -> dotted origin for every import in the module.

    Relative imports resolve against the module's containing package
    (``from ..rng import Rng`` inside ``repro.telemetry.audit``
    resolves to ``repro.rng``), so the purity rule can ban by absolute
    prefix — and the call-graph builder can chase re-exports — without
    caring how the import was spelled.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                origin = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                aliases[local] = origin
                if alias.asname:
                    aliases[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package[: len(package) - (node.level - 1)] if (
                    node.level - 1
                ) else package
                prefix = list(base)
                if node.module:
                    prefix += node.module.split(".")
            else:
                prefix = (node.module or "").split(".")
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = ".".join(
                    [p for p in prefix if p] + [alias.name]
                )
    return aliases


def load_module_unit(path: Path, display_path: str) -> ModuleUnit:
    """Parse one source file into a :class:`ModuleUnit` (fail-closed)."""
    try:
        source = path.read_text()
    except OSError as error:
        raise LintError(f"cannot read {display_path}: {error}") from None
    try:
        tree = ast.parse(source, filename=display_path)
    except SyntaxError as error:
        raise LintError(
            f"cannot parse {display_path}: {error.msg} "
            f"(line {error.lineno})"
        ) from None
    parts = Path(display_path).with_suffix("").parts
    segments = tuple(p for p in parts if p != "__init__")
    package = (
        segments
        if parts and parts[-1] == "__init__"
        else segments[:-1]
    )
    return ModuleUnit(
        path=path,
        display_path=display_path,
        segments=segments,
        package=package,
        source=source,
        tree=tree,
        import_aliases=_index_imports(tree, package),
        functions=_index_functions(tree),
        suppressions=parse_suppressions(source, display_path),
    )


def iter_source_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files and directory trees into a sorted, de-duplicated
    list of ``.py`` files, never descending into
    :data:`EXCLUDED_DIR_NAMES` directories.

    A path that does not exist raises
    :class:`~repro.exceptions.LintError` — a typoed ``--paths`` entry
    must not silently lint nothing.
    """
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw).resolve()
        if path.is_file():
            seen.setdefault(path, None)
            continue
        if not path.is_dir():
            raise LintError(f"lint path does not exist: {raw}")
        for candidate in sorted(path.rglob("*.py")):
            relative = candidate.relative_to(path)
            if any(
                part in EXCLUDED_DIR_NAMES for part in relative.parts[:-1]
            ):
                continue
            seen.setdefault(candidate, None)
    return sorted(seen)


@dataclass
class ProjectContext:
    """Project-wide state shared by cross-module rules.

    Per-unit rules see one :class:`ModuleUnit` at a time; rules that
    reason across call boundaries (PL1's taint propagation, PL5's
    budget hygiene) declare ``project = True`` and receive this
    context instead — every parsed unit, the lazily built call graph
    (built at most once per run, shared by all project rules), and the
    suppression-usage ledger behind ``lint --report-unused-ignores``.
    """

    units: Tuple[ModuleUnit, ...]
    package_root: Path
    _callgraph: Optional[object] = None
    _units_by_path: Optional[Dict[str, ModuleUnit]] = None
    _used_suppressions: Set[Tuple[str, int]] = field(
        default_factory=set
    )

    @property
    def callgraph(self):
        if self._callgraph is None:
            from .callgraph import build_call_graph

            self._callgraph = build_call_graph(self.units)
        return self._callgraph

    def unit_for(self, display_path: str) -> Optional[ModuleUnit]:
        if self._units_by_path is None:
            self._units_by_path = {
                unit.display_path: unit for unit in self.units
            }
        return self._units_by_path.get(display_path)

    def mark_suppression_used(self, path: str, line: int) -> None:
        """Record that the ignore comment on ``path:line`` silenced a
        (would-be) finding; unmarked comments surface as unused."""
        self._used_suppressions.add((path, line))

    def suppression_used(self, path: str, line: int) -> bool:
        return (path, line) in self._used_suppressions


@dataclass(frozen=True)
class UnusedIgnore:
    """One inline ignore comment that silenced nothing this run."""

    path: str
    line: int
    rules: Tuple[str, ...]

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: unused privlint "
            f"ignore[{','.join(self.rules)}] (suppressed no finding)"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rules": list(self.rules),
        }


@dataclass(frozen=True)
class LintResult:
    """The outcome of one analyzer run (before baseline diffing)."""

    #: Unsuppressed findings in stable report order.
    findings: Tuple[Finding, ...]
    #: Findings silenced by inline privlint ignore comments.
    suppressed: int
    #: Display paths of every file scanned.
    files: Tuple[str, ...]
    package_root: Path = field(default_factory=default_package_root)
    #: Ignore comments that silenced nothing (dead suppressions).
    unused_ignores: Tuple[UnusedIgnore, ...] = ()
    #: The project context of the run (callgraph access for the CLI).
    context: Optional[ProjectContext] = None


def _display_path(path: Path, package_root: Path) -> str:
    """Report/baseline path for one scanned file: relative to the
    package root's parent when inside the package (stable across
    checkouts), else to the current directory, else absolute."""
    anchor = package_root.resolve().parent
    try:
        return path.relative_to(anchor).as_posix()
    except ValueError:
        pass
    try:
        return path.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Optional[Sequence[Path]] = None,
    rules: Optional[Sequence[object]] = None,
    package_root: Optional[Path] = None,
) -> LintResult:
    """Run the rule pipeline over a set of paths.

    ``paths`` defaults to the whole installed ``repro`` package (the
    self-hosting scan CI gates on); directories are walked with the
    ``tests/`` exclusion default.  ``rules`` defaults to
    :data:`repro.privlint.rules.DEFAULT_RULES`.
    """
    if rules is None:
        from .rules import DEFAULT_RULES

        rules = DEFAULT_RULES
    root = (
        Path(package_root).resolve()
        if package_root is not None
        else default_package_root()
    )
    scan = [root] if paths is None else [Path(p) for p in paths]
    units: List[ModuleUnit] = []
    for path in iter_source_files(scan):
        units.append(load_module_unit(path, _display_path(path, root)))
    context = ProjectContext(
        units=tuple(units), package_root=root
    )
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        if getattr(rule, "project", False):
            produced = rule.check_project(context)
        else:
            produced = (
                finding
                for unit in units
                for finding in rule.check(unit)
            )
        for finding in produced:
            unit = context.unit_for(finding.path)
            if unit is not None and is_suppressed(
                finding.rule, finding.line, unit.suppressions
            ):
                suppressed += 1
                context.mark_suppression_used(
                    finding.path, finding.line
                )
            else:
                findings.append(finding)
    unused: List[UnusedIgnore] = []
    for unit in units:
        for line, names in unit.suppressions.items():
            if not context.suppression_used(unit.display_path, line):
                unused.append(
                    UnusedIgnore(
                        path=unit.display_path,
                        line=line,
                        rules=tuple(sorted(names)),
                    )
                )
    unused.sort(key=lambda u: (u.path, u.line))
    findings.sort(key=lambda f: f.sort_key)
    return LintResult(
        findings=tuple(findings),
        suppressed=suppressed,
        files=tuple(unit.display_path for unit in units),
        package_root=root,
        unused_ignores=tuple(unused),
        context=context,
    )
