"""The privlint analysis pipeline: files -> modules -> rules -> findings.

The engine owns everything rule-independent: discovering source files
(with the ``tests/`` exclusion default), parsing each into a
:class:`ModuleUnit` (AST + import-alias map + per-function ownership
index + suppression table), running a rule pipeline over every unit,
and filtering the suppressed findings out.

Zero dependencies beyond the standard library ``ast`` module — the
analyzer must be runnable in any environment that can run the code it
checks, including the scipy-free CI job.

Fail-closed: a file that cannot be read or parsed raises
:class:`~repro.exceptions.LintError` instead of being skipped, because
a skipped file is an unchecked privacy invariant.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import LintError
from .findings import Finding
from .suppressions import is_suppressed, parse_suppressions

__all__ = [
    "FunctionInfo",
    "ModuleUnit",
    "LintResult",
    "default_package_root",
    "iter_source_files",
    "load_module_unit",
    "run_lint",
]

#: Directory names never descended into when scanning a tree.  The
#: ``tests`` entry is the pre-commit-friendly default: fixtures under a
#: test tree intentionally violate the rules.
EXCLUDED_DIR_NAMES: FrozenSet[str] = frozenset(
    {"tests", "__pycache__", ".git"}
)


def default_package_root() -> Path:
    """The installed ``repro`` package directory (the default scan
    root): the analyzer self-hosts on the package it ships inside."""
    return Path(__file__).resolve().parent.parent


@dataclass(frozen=True)
class FunctionInfo:
    """One function definition plus the analysis the rules share.

    ``owned`` holds the AST nodes whose *innermost* enclosing function
    is this one — a nested function's body belongs to the nested
    function, not to its parent — so per-function rules never blame an
    outer function for its inner function's statements.
    """

    node: ast.AST
    qualname: str
    lineno: int
    #: Parameter names of this function alone.
    params: FrozenSet[str]
    #: Parameters visible here including enclosing functions (closures
    #: legitimately draw from an outer function's threaded ``rng``).
    params_chain: FrozenSet[str]
    owned: Tuple[ast.AST, ...]


@dataclass(frozen=True)
class ModuleUnit:
    """One parsed source file, ready for the rule pipeline."""

    path: Path
    #: POSIX display path (stable across checkouts; see ``run_lint``).
    display_path: str
    #: Dotted-module segments of the display path, ``__init__`` dropped
    #: (``("repro", "telemetry", "audit")``).
    segments: Tuple[str, ...]
    source: str
    tree: ast.Module
    #: Local name -> dotted import source (``np`` -> ``numpy``,
    #: ``default_rng`` -> ``numpy.random.default_rng``).
    import_aliases: Dict[str, str]
    functions: Tuple[FunctionInfo, ...]
    suppressions: Dict[int, FrozenSet[str]]

    def dotted_source(self, node: ast.AST) -> Optional[str]:
        """Resolve an attribute/name chain to its dotted import origin.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when ``np`` was imported as
        numpy.  Returns None when the chain does not bottom out in an
        imported name — a local variable that merely shadows a module
        name never matches a banned prefix.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.import_aliases.get(node.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))

    def owner_of(self, node: ast.AST) -> Optional[FunctionInfo]:
        """The innermost function owning ``node`` (None at module
        scope)."""
        for info in self.functions:
            if any(owned is node for owned in info.owned):
                return info
        return None


_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _argument_names(node: ast.AST) -> FrozenSet[str]:
    args = node.args
    names = [
        a.arg
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        )
    ]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return frozenset(names)


def _index_functions(tree: ast.Module) -> Tuple[FunctionInfo, ...]:
    """Every function in the module with its owned-node set, computed
    in one DFS that tracks the enclosing class/function stack."""
    infos: List[FunctionInfo] = []

    def walk(
        node: ast.AST,
        qual: Tuple[str, ...],
        chain: Tuple[FrozenSet[str], ...],
        owned_sink: Optional[List[ast.AST]],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCTION_NODES):
                params = _argument_names(child)
                owned: List[ast.AST] = [child]
                child_qual = qual + (child.name,)
                walk(child, child_qual, chain + (params,), owned)
                infos.append(
                    FunctionInfo(
                        node=child,
                        qualname=".".join(child_qual),
                        lineno=child.lineno,
                        params=params,
                        params_chain=frozenset().union(
                            params, *chain
                        ),
                        owned=tuple(owned),
                    )
                )
            else:
                if owned_sink is not None:
                    owned_sink.append(child)
                next_qual = (
                    qual + (child.name,)
                    if isinstance(child, ast.ClassDef)
                    else qual
                )
                walk(child, next_qual, chain, owned_sink)

    walk(tree, (), (), None)
    return tuple(infos)


def _index_imports(
    tree: ast.Module, segments: Tuple[str, ...]
) -> Dict[str, str]:
    """Local name -> dotted origin for every import in the module.

    Relative imports resolve against the module's own dotted position
    (``from ..rng import Rng`` inside ``repro.telemetry.audit``
    resolves to ``repro.rng``), so the purity rule can ban by absolute
    prefix without caring how the import was spelled.
    """
    aliases: Dict[str, str] = {}
    package = segments[:-1] if segments else ()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                origin = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                aliases[local] = origin
                if alias.asname:
                    aliases[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package[: len(package) - (node.level - 1)] if (
                    node.level - 1
                ) else package
                prefix = list(base)
                if node.module:
                    prefix += node.module.split(".")
            else:
                prefix = (node.module or "").split(".")
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = ".".join(
                    [p for p in prefix if p] + [alias.name]
                )
    return aliases


def load_module_unit(path: Path, display_path: str) -> ModuleUnit:
    """Parse one source file into a :class:`ModuleUnit` (fail-closed)."""
    try:
        source = path.read_text()
    except OSError as error:
        raise LintError(f"cannot read {display_path}: {error}") from None
    try:
        tree = ast.parse(source, filename=display_path)
    except SyntaxError as error:
        raise LintError(
            f"cannot parse {display_path}: {error.msg} "
            f"(line {error.lineno})"
        ) from None
    parts = Path(display_path).with_suffix("").parts
    segments = tuple(p for p in parts if p != "__init__")
    return ModuleUnit(
        path=path,
        display_path=display_path,
        segments=segments,
        source=source,
        tree=tree,
        import_aliases=_index_imports(tree, segments),
        functions=_index_functions(tree),
        suppressions=parse_suppressions(source, display_path),
    )


def iter_source_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files and directory trees into a sorted, de-duplicated
    list of ``.py`` files, never descending into
    :data:`EXCLUDED_DIR_NAMES` directories.

    A path that does not exist raises
    :class:`~repro.exceptions.LintError` — a typoed ``--paths`` entry
    must not silently lint nothing.
    """
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw).resolve()
        if path.is_file():
            seen.setdefault(path, None)
            continue
        if not path.is_dir():
            raise LintError(f"lint path does not exist: {raw}")
        for candidate in sorted(path.rglob("*.py")):
            relative = candidate.relative_to(path)
            if any(
                part in EXCLUDED_DIR_NAMES for part in relative.parts[:-1]
            ):
                continue
            seen.setdefault(candidate, None)
    return sorted(seen)


@dataclass(frozen=True)
class LintResult:
    """The outcome of one analyzer run (before baseline diffing)."""

    #: Unsuppressed findings in stable report order.
    findings: Tuple[Finding, ...]
    #: Findings silenced by inline privlint ignore comments.
    suppressed: int
    #: Display paths of every file scanned.
    files: Tuple[str, ...]
    package_root: Path = field(default_factory=default_package_root)


def _display_path(path: Path, package_root: Path) -> str:
    """Report/baseline path for one scanned file: relative to the
    package root's parent when inside the package (stable across
    checkouts), else to the current directory, else absolute."""
    anchor = package_root.resolve().parent
    try:
        return path.relative_to(anchor).as_posix()
    except ValueError:
        pass
    try:
        return path.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Optional[Sequence[Path]] = None,
    rules: Optional[Sequence[object]] = None,
    package_root: Optional[Path] = None,
) -> LintResult:
    """Run the rule pipeline over a set of paths.

    ``paths`` defaults to the whole installed ``repro`` package (the
    self-hosting scan CI gates on); directories are walked with the
    ``tests/`` exclusion default.  ``rules`` defaults to
    :data:`repro.privlint.rules.DEFAULT_RULES`.
    """
    if rules is None:
        from .rules import DEFAULT_RULES

        rules = DEFAULT_RULES
    root = (
        Path(package_root).resolve()
        if package_root is not None
        else default_package_root()
    )
    scan = [root] if paths is None else [Path(p) for p in paths]
    findings: List[Finding] = []
    suppressed = 0
    files: List[str] = []
    for path in iter_source_files(scan):
        display = _display_path(path, root)
        unit = load_module_unit(path, display)
        files.append(display)
        for rule in rules:
            for finding in rule.check(unit):
                if is_suppressed(
                    finding.rule, finding.line, unit.suppressions
                ):
                    suppressed += 1
                else:
                    findings.append(finding)
    findings.sort(key=lambda f: f.sort_key)
    return LintResult(
        findings=tuple(findings),
        suppressed=suppressed,
        files=tuple(files),
        package_root=root,
    )
