"""Inline ``# privlint: ignore[rule]`` suppression comments.

A finding is suppressed by a trailing comment on the *same physical
line* the finding points at (the ``def`` line for function-scoped
findings, the call line for call-site findings)::

    "ts": time.time(),  # privlint: ignore[PL4] observational timestamp

The bracket list names one or more rules (``ignore[PL1,PL4]``) or
``*`` for all rules on that line.  Everything after the closing
bracket is the human justification — the house rule (README "Static
analysis") is that every ignore carries one, though the analyzer only
enforces the syntax.

Suppressions are deliberately line-scoped and rule-scoped: a file- or
block-wide ignore would let new violations ride in under an old
justification.  Grandfathered findings belong in the committed
baseline instead (see :mod:`repro.privlint.report`).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterable, List

from ..exceptions import LintError

__all__ = ["parse_suppressions", "is_suppressed"]

#: Matches the ignore[PL1] / ignore[PL1, PL2] / ignore[*] bracket
#: list after the comment marker (see module docstring for examples).
_SUPPRESSION_RE = re.compile(
    r"#\s*privlint:\s*ignore\[([^\]]*)\]"
)

#: One rule token inside the brackets.
_RULE_TOKEN_RE = re.compile(r"^(?:\*|[A-Z][A-Z0-9]*)$")


def _comment_tokens(source: str, path: str):
    """(lineno, text) for every real comment token — docstrings and
    string literals that merely *mention* the syntax never suppress."""
    try:
        for token in tokenize.generate_tokens(
            io.StringIO(source).readline
        ):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except tokenize.TokenError as error:
        raise LintError(
            f"cannot tokenize {path}: {error}"
        ) from None


def parse_suppressions(
    source: str, path: str = "<string>"
) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rules suppressed on that line.

    Fail-closed on malformed bracket lists: an empty list or a token
    that is not a rule id (or ``*``) raises
    :class:`~repro.exceptions.LintError` — a typo like
    ``ignore[pl4]`` must not silently suppress nothing.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    for lineno, comment in _comment_tokens(source, path):
        match = _SUPPRESSION_RE.search(comment)
        if match is None:
            continue
        tokens: List[str] = [
            token.strip()
            for token in match.group(1).split(",")
            if token.strip()
        ]
        if not tokens:
            raise LintError(
                f"{path}:{lineno}: empty privlint ignore list "
                "(write ignore[RULE] or ignore[*])"
            )
        for token in tokens:
            if not _RULE_TOKEN_RE.match(token):
                raise LintError(
                    f"{path}:{lineno}: malformed privlint ignore "
                    f"token {token!r} (rule ids are uppercase, "
                    "e.g. ignore[PL4])"
                )
        suppressions[lineno] = frozenset(tokens)
    return suppressions


def is_suppressed(
    rule: str, line: int, suppressions: Dict[int, FrozenSet[str]]
) -> bool:
    """True when ``rule`` is suppressed on ``line``."""
    rules = suppressions.get(line)
    return rules is not None and (rule in rules or "*" in rules)


def known_rule_names(rules: Iterable[object]) -> FrozenSet[str]:
    """The rule-id vocabulary of a rule pipeline (for validation)."""
    return frozenset(getattr(rule, "name") for rule in rules)
