"""The versioned ``repro-lint`` report document and the committed
baseline of grandfathered findings.

The report is the machine-readable half of the lint gate: CI runs
``python -m repro.cli lint --format json``, uploads the document as an
artifact, and fails the build when the ``new`` count is non-zero.
Like every other serialized document in this codebase
(``repro-profile``, ``repro-flight``, ``repro-telemetry``) it carries
``format``/``version`` markers and a fail-closed reader,
:func:`validate_lint_report`, that raises
:class:`~repro.exceptions.LintError` on anything it does not fully
understand.

The baseline (``repro-lint-baseline``) grandfathers pre-existing
findings so the gate can be turned on before the last finding is
fixed: a finding whose :attr:`~repro.privlint.findings.Finding.key`
appears in the baseline is reported but does not fail the gate.  The
committed baseline lives next to this module
(:data:`DEFAULT_BASELINE_PATH`) and ``lint --update-baseline``
rewrites it; keeping it near-empty is the house rule — intentional
violations get inline ``# privlint: ignore[rule]`` justifications
instead of baseline entries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..exceptions import LintError
from .engine import LintResult
from .findings import Finding, finding_from_dict

__all__ = [
    "LINT_FORMAT",
    "LINT_VERSION",
    "BASELINE_FORMAT",
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_PATH",
    "lint_document",
    "validate_lint_report",
    "load_baseline",
    "save_baseline",
    "render_text",
]

LINT_FORMAT = "repro-lint"
LINT_VERSION = 1

BASELINE_FORMAT = "repro-lint-baseline"
BASELINE_VERSION = 1

#: The committed self-hosting baseline, shipped inside the package so
#: the default gate works from any checkout or install.
DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

BaselineKey = Tuple[str, str, str]


def lint_document(
    result: LintResult,
    baseline: Optional[FrozenSet[BaselineKey]] = None,
) -> Dict[str, object]:
    """The versioned JSON report for one analyzer run.

    Every unsuppressed finding is listed with a ``baselined`` marker;
    the ``summary`` block carries the counts the gate and CI read
    (``new`` is the number of non-baselined findings — the gate fails
    when it is non-zero).
    """
    grandfathered = baseline or frozenset()
    findings: List[Dict[str, object]] = []
    new = 0
    for finding in result.findings:
        baselined = finding.key in grandfathered
        if not baselined:
            new += 1
        entry = finding.as_dict()
        entry["baselined"] = baselined
        findings.append(entry)
    return {
        "format": LINT_FORMAT,
        "version": LINT_VERSION,
        "files_scanned": len(result.files),
        "findings": findings,
        "summary": {
            "total": len(findings),
            "new": new,
            "baselined": len(findings) - new,
            "suppressed": result.suppressed,
        },
    }


def validate_lint_report(doc: object) -> Dict[str, object]:
    """Check a parsed lint report document; returns it typed as a dict.

    Fail-closed in the house style of ``validate_profile`` /
    ``validate_flight``: wrong format marker, unsupported version, a
    missing findings list, a malformed finding entry, or a summary
    that disagrees with the findings it summarizes all raise
    :class:`~repro.exceptions.LintError`.
    """
    if not isinstance(doc, dict):
        raise LintError(
            "lint report must be a JSON object, got "
            f"{type(doc).__name__}"
        )
    if doc.get("format") != LINT_FORMAT:
        raise LintError(
            f"not a lint report (format={doc.get('format')!r}, "
            f"expected {LINT_FORMAT!r})"
        )
    if doc.get("version") != LINT_VERSION:
        raise LintError(
            f"unsupported lint report version {doc.get('version')!r} "
            f"(this build reads version {LINT_VERSION})"
        )
    findings = doc.get("findings")
    if not isinstance(findings, list):
        raise LintError("lint report has no 'findings' list")
    new = 0
    for entry in findings:
        finding_from_dict(entry)  # raises on malformed entries
        if not isinstance(entry, dict) or "baselined" not in entry:
            raise LintError(
                "lint report finding lacks the 'baselined' marker"
            )
        if not entry["baselined"]:
            new += 1
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        raise LintError("lint report has no 'summary' object")
    for key in ("total", "new", "baselined", "suppressed"):
        if not isinstance(summary.get(key), int):
            raise LintError(
                f"lint report summary lacks integer {key!r}"
            )
    if summary["total"] != len(findings) or summary["new"] != new:
        raise LintError(
            "lint report summary disagrees with its findings "
            f"(summary says total={summary['total']} new="
            f"{summary['new']}, findings say total={len(findings)} "
            f"new={new})"
        )
    return doc


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------


def load_baseline(path: Path) -> FrozenSet[BaselineKey]:
    """The grandfathered finding keys from a committed baseline file.

    A missing file is an empty baseline (every finding is new — the
    fail-closed direction); a file that exists but cannot be parsed or
    carries the wrong markers raises
    :class:`~repro.exceptions.LintError`.
    """
    path = Path(path)
    if not path.exists():
        return frozenset()
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise LintError(
            f"cannot read lint baseline {path}: {error}"
        ) from None
    if not isinstance(doc, dict) or doc.get("format") != BASELINE_FORMAT:
        raise LintError(
            f"{path} is not a lint baseline (expected format "
            f"{BASELINE_FORMAT!r})"
        )
    if doc.get("version") != BASELINE_VERSION:
        raise LintError(
            f"unsupported lint baseline version "
            f"{doc.get('version')!r} (this build reads version "
            f"{BASELINE_VERSION})"
        )
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise LintError(f"{path} has no 'entries' list")
    keys = set()
    for entry in entries:
        if not isinstance(entry, dict) or not all(
            isinstance(entry.get(k), str)
            for k in ("rule", "path", "message")
        ):
            raise LintError(
                f"{path} has a malformed baseline entry: {entry!r}"
            )
        keys.add((entry["rule"], entry["path"], entry["message"]))
    return frozenset(keys)


def save_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write the baseline document grandfathering ``findings``;
    returns the number of entries written."""
    entries = sorted(
        {f.key for f in findings}
    )
    document = {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "entries": [
            {"rule": rule, "path": path_, "message": message}
            for rule, path_, message in entries
        ],
    }
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    return len(entries)


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------


def render_text(document: Dict[str, object]) -> str:
    """Human-readable rendering of a lint report document: one
    ``path:line: rule [severity] message`` line per finding (baselined
    findings marked), then the summary line the gate acts on."""
    lines: List[str] = []
    for entry in document["findings"]:
        finding = finding_from_dict(entry)
        suffix = "  (baselined)" if entry.get("baselined") else ""
        lines.append(finding.render() + suffix)
    summary = document["summary"]
    lines.append(
        f"privlint: {document['files_scanned']} files, "
        f"{summary['total']} finding(s) "
        f"({summary['new']} new, {summary['baselined']} baselined, "
        f"{summary['suppressed']} suppressed)"
    )
    return "\n".join(lines) + "\n"
