"""The versioned ``repro-lint`` report document and the committed
baseline of grandfathered findings.

The report is the machine-readable half of the lint gate: CI runs
``python -m repro.cli lint --format json``, uploads the document as an
artifact, and fails the build when the ``new`` count is non-zero.
Like every other serialized document in this codebase
(``repro-profile``, ``repro-flight``, ``repro-telemetry``) it carries
``format``/``version`` markers and a fail-closed reader,
:func:`validate_lint_report`, that raises
:class:`~repro.exceptions.LintError` on anything it does not fully
understand.

The baseline (``repro-lint-baseline``) grandfathers pre-existing
findings so the gate can be turned on before the last finding is
fixed: a finding whose :attr:`~repro.privlint.findings.Finding.key`
appears in the baseline is reported but does not fail the gate.  The
committed baseline lives next to this module
(:data:`DEFAULT_BASELINE_PATH`) and ``lint --update-baseline``
rewrites it; keeping it near-empty is the house rule — intentional
violations get inline ``# privlint: ignore[rule]`` justifications
instead of baseline entries.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from ..exceptions import LintError
from .engine import LintResult
from .findings import Finding, finding_from_dict

__all__ = [
    "LINT_FORMAT",
    "LINT_VERSION",
    "BASELINE_FORMAT",
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_PATH",
    "lint_document",
    "validate_lint_report",
    "load_baseline",
    "save_baseline",
    "render_text",
]

# Version 2 adds the ``unused_ignores`` section (dead-suppression
# detection) and its summary count.
LINT_FORMAT = "repro-lint"
LINT_VERSION = 2

# Version 2 makes entries count-aware: two identical findings in one
# file used to collapse into a single ``(rule, path, message)`` slot,
# letting the second ride in for free.  Entries now carry ``count``
# and the gate fails when the occurrence count *grows* past it.
BASELINE_FORMAT = "repro-lint-baseline"
BASELINE_VERSION = 2

#: The committed self-hosting baseline, shipped inside the package so
#: the default gate works from any checkout or install.
DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

BaselineKey = Tuple[str, str, str]


def lint_document(
    result: LintResult,
    baseline: Optional[
        Union[Mapping[BaselineKey, int], FrozenSet[BaselineKey]]
    ] = None,
) -> Dict[str, object]:
    """The versioned JSON report for one analyzer run.

    Every unsuppressed finding is listed with a ``baselined`` marker;
    the ``summary`` block carries the counts the gate and CI read
    (``new`` is the number of non-baselined findings — the gate fails
    when it is non-zero).

    The baseline is count-aware: a key grandfathers at most ``count``
    occurrences, so a second identical finding in the same file no
    longer rides in for free.  Occurrences are consumed in report
    order.  A plain key set is accepted for convenience and means
    count 1 per key.
    """
    if baseline is None:
        allowance: Dict[BaselineKey, int] = {}
    elif isinstance(baseline, Mapping):
        allowance = dict(baseline)
    else:
        allowance = {key: 1 for key in baseline}
    findings: List[Dict[str, object]] = []
    new = 0
    for finding in result.findings:
        remaining = allowance.get(finding.key, 0)
        baselined = remaining > 0
        if baselined:
            allowance[finding.key] = remaining - 1
        else:
            new += 1
        entry = finding.as_dict()
        entry["baselined"] = baselined
        findings.append(entry)
    return {
        "format": LINT_FORMAT,
        "version": LINT_VERSION,
        "files_scanned": len(result.files),
        "findings": findings,
        "unused_ignores": [
            ignore.as_dict() for ignore in result.unused_ignores
        ],
        "summary": {
            "total": len(findings),
            "new": new,
            "baselined": len(findings) - new,
            "suppressed": result.suppressed,
            "unused_ignores": len(result.unused_ignores),
        },
    }


def validate_lint_report(doc: object) -> Dict[str, object]:
    """Check a parsed lint report document; returns it typed as a dict.

    Fail-closed in the house style of ``validate_profile`` /
    ``validate_flight``: wrong format marker, unsupported version, a
    missing findings list, a malformed finding entry, or a summary
    that disagrees with the findings it summarizes all raise
    :class:`~repro.exceptions.LintError`.
    """
    if not isinstance(doc, dict):
        raise LintError(
            "lint report must be a JSON object, got "
            f"{type(doc).__name__}"
        )
    if doc.get("format") != LINT_FORMAT:
        raise LintError(
            f"not a lint report (format={doc.get('format')!r}, "
            f"expected {LINT_FORMAT!r})"
        )
    if doc.get("version") != LINT_VERSION:
        raise LintError(
            f"unsupported lint report version {doc.get('version')!r} "
            f"(this build reads version {LINT_VERSION})"
        )
    findings = doc.get("findings")
    if not isinstance(findings, list):
        raise LintError("lint report has no 'findings' list")
    new = 0
    for entry in findings:
        finding_from_dict(entry)  # raises on malformed entries
        if not isinstance(entry, dict) or "baselined" not in entry:
            raise LintError(
                "lint report finding lacks the 'baselined' marker"
            )
        if not entry["baselined"]:
            new += 1
    unused = doc.get("unused_ignores")
    if not isinstance(unused, list):
        raise LintError("lint report has no 'unused_ignores' list")
    for entry in unused:
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("path"), str)
            or not isinstance(entry.get("line"), int)
            or not isinstance(entry.get("rules"), list)
        ):
            raise LintError(
                f"malformed unused-ignore entry: {entry!r}"
            )
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        raise LintError("lint report has no 'summary' object")
    for key in (
        "total",
        "new",
        "baselined",
        "suppressed",
        "unused_ignores",
    ):
        if not isinstance(summary.get(key), int):
            raise LintError(
                f"lint report summary lacks integer {key!r}"
            )
    if summary["total"] != len(findings) or summary["new"] != new:
        raise LintError(
            "lint report summary disagrees with its findings "
            f"(summary says total={summary['total']} new="
            f"{summary['new']}, findings say total={len(findings)} "
            f"new={new})"
        )
    if summary["unused_ignores"] != len(unused):
        raise LintError(
            "lint report summary disagrees with its unused_ignores "
            f"(summary says {summary['unused_ignores']}, document "
            f"lists {len(unused)})"
        )
    return doc


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------


def load_baseline(path: Path) -> Dict[BaselineKey, int]:
    """Grandfathered finding keys -> allowed occurrence counts.

    A missing file is an empty baseline (every finding is new — the
    fail-closed direction); a file that exists but cannot be parsed or
    carries the wrong markers raises
    :class:`~repro.exceptions.LintError`.  Version 1 baselines (no
    ``count`` field) are still readable and mean one occurrence per
    entry — exactly the v1 semantics for the common case, stricter
    for the duplicate-collapse hole v2 closes.
    """
    path = Path(path)
    if not path.exists():
        return {}
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise LintError(
            f"cannot read lint baseline {path}: {error}"
        ) from None
    if not isinstance(doc, dict) or doc.get("format") != BASELINE_FORMAT:
        raise LintError(
            f"{path} is not a lint baseline (expected format "
            f"{BASELINE_FORMAT!r})"
        )
    version = doc.get("version")
    if version not in (1, BASELINE_VERSION):
        raise LintError(
            f"unsupported lint baseline version "
            f"{version!r} (this build reads versions 1 and "
            f"{BASELINE_VERSION})"
        )
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise LintError(f"{path} has no 'entries' list")
    keys: Dict[BaselineKey, int] = {}
    for entry in entries:
        if not isinstance(entry, dict) or not all(
            isinstance(entry.get(k), str)
            for k in ("rule", "path", "message")
        ):
            raise LintError(
                f"{path} has a malformed baseline entry: {entry!r}"
            )
        count = entry.get("count", 1)
        if (
            not isinstance(count, int)
            or isinstance(count, bool)
            or count < 1
        ):
            raise LintError(
                f"{path} has a baseline entry with invalid count "
                f"{count!r} (must be a positive integer)"
            )
        key = (entry["rule"], entry["path"], entry["message"])
        keys[key] = keys.get(key, 0) + count
    return keys


def save_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write the baseline document grandfathering ``findings`` with
    their occurrence counts; returns the number of entries written."""
    counts = Counter(f.key for f in findings)
    document = {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "entries": [
            {
                "rule": rule,
                "path": path_,
                "message": message,
                "count": counts[(rule, path_, message)],
            }
            for rule, path_, message in sorted(counts)
        ],
    }
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    return len(counts)


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------


def render_text(
    document: Dict[str, object], show_unused_ignores: bool = False
) -> str:
    """Human-readable rendering of a lint report document: one
    ``path:line: rule [severity] message`` line per finding (baselined
    findings marked), optionally the unused-ignore warnings, then the
    summary line the gate acts on."""
    lines: List[str] = []
    for entry in document["findings"]:
        finding = finding_from_dict(entry)
        suffix = "  (baselined)" if entry.get("baselined") else ""
        lines.append(finding.render() + suffix)
    if show_unused_ignores:
        for entry in document.get("unused_ignores", []):
            rules = ",".join(entry["rules"])
            lines.append(
                f"{entry['path']}:{entry['line']}: unused privlint "
                f"ignore[{rules}] (suppressed no finding)"
            )
    summary = document["summary"]
    lines.append(
        f"privlint: {document['files_scanned']} files, "
        f"{summary['total']} finding(s) "
        f"({summary['new']} new, {summary['baselined']} baselined, "
        f"{summary['suppressed']} suppressed, "
        f"{summary['unused_ignores']} unused ignore(s))"
    )
    return "\n".join(lines) + "\n"
