"""Extension: private all-pairs distances on cycle graphs.

The paper's future-work section asks for "improved all-pairs distance
algorithms for additional classes of networks".  Cycles are the
smallest class beyond trees: they are the paper's own example of why
edge-DP fails (Section 1.3), and ring topologies are common in
transport and backbone networks.

Construction (ours, in the paper's toolbox): fix an arbitrary break
edge ``e0`` (public choice).  Release

* the Appendix-A hub hierarchy on the path ``C - e0`` with budget
  ``eps/2`` (per-prefix error ``O(log^1.5 V)/eps``), and
* the cycle's total weight ``||w||_1`` with ``Lap(2/eps)`` noise
  (sensitivity 1, budget ``eps/2``).

By basic composition the whole release is eps-DP.  For any pair
``x, y`` the cycle distance is the minimum of the clockwise and the
counter-clockwise arc, and both arcs are recovered from a prefix
difference and (for the wrapping arc) the noisy total:

    d(x, y) = min(prefix(j) - prefix(i),
                  total - (prefix(j) - prefix(i))).

Each estimate sums ``O(log V)`` noisy terms, so the per-distance error
is ``O(log^1.5 V)/eps`` — the tree bound extends to cycles.  (The
``min`` of two noisy estimates adds at most the larger of their errors;
it can only *under*-estimate, never overestimate beyond the arc error.)
"""

from __future__ import annotations

from typing import List

from ..dp.params import PrivacyParams
from ..exceptions import GraphError, PrivacyError, VertexNotFoundError
from ..graphs.graph import Vertex, WeightedGraph
from ..rng import Rng
from .path_hierarchy import PathHierarchyRelease

__all__ = ["CycleRelease", "release_cycle_distances", "linearize_cycle"]


def linearize_cycle(graph: WeightedGraph) -> List[Vertex]:
    """Order the vertices of a cycle graph around the ring.

    Raises :class:`~repro.exceptions.GraphError` unless the graph is a
    single cycle (connected, every vertex of degree exactly 2).
    """
    if graph.directed:
        raise GraphError("cycle release requires an undirected graph")
    n = graph.num_vertices
    if n < 3:
        raise GraphError("a cycle needs at least 3 vertices")
    if graph.num_edges != n:
        raise GraphError("a cycle on n vertices has exactly n edges")
    for v in graph.vertices():
        if graph.degree(v) != 2:
            raise GraphError(f"vertex {v!r} has degree != 2; not a cycle")
    start = next(iter(graph.vertices()))
    order = [start]
    seen = {start}
    while len(order) < n:
        tail = order[-1]
        extensions = [u for u, _ in graph.neighbors(tail) if u not in seen]
        if not extensions:
            raise GraphError("graph is not a single cycle")
        order.append(extensions[0])
        seen.add(extensions[0])
    if not graph.has_edge(order[-1], order[0]):
        raise GraphError("graph is not a single cycle")
    return order


class CycleRelease:
    """Private all-pairs distances on a cycle (extension module)."""

    def __init__(self, graph: WeightedGraph, eps: float, rng: Rng) -> None:
        if eps <= 0:
            raise PrivacyError(f"eps must be positive, got {eps}")
        graph.check_nonnegative()
        self._order = linearize_cycle(graph)
        self._index = {v: i for i, v in enumerate(self._order)}
        self._params = PrivacyParams(eps)
        # Break the (public, arbitrary) edge between the last and first
        # vertex in the traversal; the remainder is a path.
        path = WeightedGraph()
        for a, b in zip(self._order, self._order[1:]):
            path.add_edge(a, b, graph.weight(a, b))
        # eps/2 for the hierarchy, eps/2 for the total (Lemma 3.3).
        self._hierarchy = PathHierarchyRelease(path, eps / 2.0, rng)
        self._noisy_total = graph.total_weight() + rng.laplace(2.0 / eps)

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee (pure eps-DP via basic composition)."""
        return self._params

    @property
    def noisy_total(self) -> float:
        """The released estimate of the cycle's total weight."""
        return self._noisy_total

    @property
    def hierarchy(self) -> PathHierarchyRelease:
        """The underlying hub-hierarchy release on the broken cycle."""
        return self._hierarchy

    def arc_estimates(self, x: Vertex, y: Vertex) -> tuple[float, float]:
        """Noisy estimates of the two arcs between ``x`` and ``y``
        (direct arc on the broken path; wrapping arc through the break
        edge)."""
        if x not in self._index:
            raise VertexNotFoundError(x)
        if y not in self._index:
            raise VertexNotFoundError(y)
        direct = self._hierarchy.distance(x, y)
        wrap = self._noisy_total - direct
        return direct, wrap

    def distance(self, x: Vertex, y: Vertex) -> float:
        """The released cycle distance: min of the two arc estimates."""
        if x == y:
            return 0.0
        direct, wrap = self.arc_estimates(x, y)
        return min(direct, wrap)


def release_cycle_distances(
    graph: WeightedGraph, eps: float, rng: Rng
) -> CycleRelease:
    """Release eps-DP all-pairs distances on a cycle graph with
    ``O(log^1.5 V)/eps`` per-distance error (extension; see module
    docstring)."""
    return CycleRelease(graph, eps, rng)
