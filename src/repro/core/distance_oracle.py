"""Distance oracles (Section 4, introduction).

A single distance query ``d_w(s, t)`` has sensitivity 1 — neighboring
weight functions change any path's weight by at most the L1 budget of 1,
hence the minimum over paths by at most 1 — so the Laplace mechanism
answers it with ``Lap(1/eps)`` noise (:func:`private_distance`).

For *all-pairs* distances the paper's intro gives two baselines, both
implemented here:

* :class:`AllPairsBasicRelease` — pure eps-DP via basic composition
  over the ``V^2`` pair queries: ``Lap(V^2/eps)`` noise per answer.
  (Equivalently: the vector of all pairwise distances has L1
  sensitivity at most ``V^2``.)
* :class:`AllPairsAdvancedRelease` — ``(eps, delta)``-DP via advanced
  composition (Lemma 3.4): per-query noise ``O(V sqrt(ln 1/delta))/eps``.

These are the ``~V/eps``-error baselines that Sections 4.1 and 4.2 then
beat for trees and bounded-weight graphs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..algorithms.shortest_paths import all_pairs_dijkstra, dijkstra
from ..algorithms.traversal import is_connected
from ..dp.composition import composed_noise_scale
from ..dp.mechanisms import LaplaceMechanism
from ..dp.params import PrivacyParams
from ..exceptions import (
    DisconnectedGraphError,
    PrivacyError,
    VertexNotFoundError,
)
from ..graphs.graph import Vertex, WeightedGraph
from ..rng import Rng

__all__ = [
    "private_distance",
    "all_pairs_noise_scale",
    "AllPairsBasicRelease",
    "AllPairsAdvancedRelease",
]


def all_pairs_noise_scale(
    num_vertices: int, eps: float, delta: float = 0.0
) -> float:
    """The per-answer Laplace scale of the intro all-pairs baselines.

    The ``P = V(V-1)/2`` distinct unordered pair queries priced by the
    shared :func:`~repro.dp.composition.composed_noise_scale`
    accounting — used by the release classes, the engine-native
    synopsis builder, and mechanism auto-selection (which contests
    this scale against the hub mechanisms').
    """
    return composed_noise_scale(
        num_vertices * (num_vertices - 1) // 2, eps, delta
    )


def private_distance(
    graph: WeightedGraph,
    source: Vertex,
    target: Vertex,
    eps: float,
    rng: Rng,
    backend: str | None = None,
) -> float:
    """Release a single distance with ``Lap(1/eps)`` noise.

    This is the straightforward application of the Laplace mechanism
    mentioned in Section 1.2: one sensitivity-1 query, eps-DP.  The
    exact Dijkstra half dispatches through the :mod:`repro.engine`
    backend registry like every other hot path (``backend`` forces a
    kernel; default auto-selection on graph size).
    """
    distances, _ = dijkstra(graph, source, target=target, backend=backend)
    if target not in distances:
        raise DisconnectedGraphError(
            f"no path from {source!r} to {target!r}"
        )
    mechanism = LaplaceMechanism(sensitivity=1.0, eps=eps, rng=rng)
    return mechanism.release_scalar(distances[target])


def _ordered_pairs(vertices: List[Vertex]) -> Iterator[Tuple[Vertex, Vertex]]:
    """Yield the unordered vertex pairs lazily — ``V^2/2`` tuples never
    exist at once, only the noisy answer dict does."""
    for i in range(len(vertices)):
        for j in range(i + 1, len(vertices)):
            yield vertices[i], vertices[j]


class _AllPairsReleaseBase:
    """Shared machinery: exact all-pairs distances plus noisy answers.

    The exact sweep — the release's entire computational cost — runs
    on the :mod:`repro.engine` backend named by ``backend`` (default
    auto-selection).
    """

    def __init__(
        self, graph: WeightedGraph, backend: str | None = None
    ) -> None:
        if not is_connected(graph):
            raise DisconnectedGraphError(
                "all-pairs release requires a connected graph"
            )
        self._graph = graph
        self._vertices = graph.vertex_list()
        self._exact = all_pairs_dijkstra(graph, backend=backend)
        self._noisy: Dict[Tuple[Vertex, Vertex], float] = {}
        self._scale = 0.0  # set by _populate

    def _populate(self, noise_scale: float, rng: Rng) -> None:
        self._scale = float(noise_scale)
        n = len(self._vertices)
        noise = rng.laplace_vector(noise_scale, n * (n - 1) // 2)
        for (s, t), x in zip(_ordered_pairs(self._vertices), noise):
            self._noisy[(s, t)] = self._exact[s][t] + float(x)

    @property
    def graph(self) -> WeightedGraph:
        """The (public-topology) graph the release was computed on."""
        return self._graph

    @property
    def noise_scale(self) -> float:
        """The Laplace scale applied to each pairwise distance."""
        return self._scale

    def distance(self, source: Vertex, target: Vertex) -> float:
        """The released (noisy) distance between a pair of vertices.

        Symmetric; a vertex's distance to itself is released as exactly
        0 (it is data-independent, so this leaks nothing).
        """
        if source not in self._exact:
            raise VertexNotFoundError(source)
        if target not in self._exact:
            raise VertexNotFoundError(target)
        if source == target:
            return 0.0
        if (source, target) in self._noisy:
            return self._noisy[(source, target)]
        return self._noisy[(target, source)]

    def exact_distance(self, source: Vertex, target: Vertex) -> float:
        """The true distance (for error measurement; not private)."""
        return self._exact[source][target]

    def all_released(self) -> Dict[Tuple[Vertex, Vertex], float]:
        """All released pairwise distances keyed by vertex pair."""
        return dict(self._noisy)


class AllPairsBasicRelease(_AllPairsReleaseBase):
    """Pure-DP all-pairs distances via basic composition.

    Adds ``Lap(Q/eps)`` noise to each of the ``Q = V(V-1)/2`` distinct
    pair queries.  (The paper's intro counts ``V^2`` ordered pairs; the
    unordered count is a factor-2 saving with the identical argument:
    the query vector has L1 sensitivity ``Q``.)
    """

    def __init__(
        self,
        graph: WeightedGraph,
        eps: float,
        rng: Rng,
        backend: str | None = None,
    ) -> None:
        super().__init__(graph, backend=backend)
        self._params = PrivacyParams(eps)
        self._scale = all_pairs_noise_scale(len(self._vertices), eps)
        self._populate(self._scale, rng)

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee of the whole release."""
        return self._params


class AllPairsAdvancedRelease(_AllPairsReleaseBase):
    """``(eps, delta)``-DP all-pairs distances via advanced composition.

    Each pair query is answered with ``Lap(1/eps_q)`` noise where
    ``eps_q`` is the largest per-query budget whose ``Q``-fold advanced
    composition (Lemma 3.4) stays within ``(eps, delta)``.  The paper's
    asymptotic form of the resulting scale is
    ``O(V sqrt(ln 1/delta))/eps``.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        eps: float,
        delta: float,
        rng: Rng,
        backend: str | None = None,
    ) -> None:
        super().__init__(graph, backend=backend)
        if delta <= 0:
            raise PrivacyError(
                f"advanced composition requires delta > 0, got {delta}"
            )
        self._params = PrivacyParams(eps, delta)
        # The whole delta is reserved for the composition slack delta'.
        self._scale = all_pairs_noise_scale(
            len(self._vertices), eps, delta
        )
        self._populate(self._scale, rng)

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee of the whole release."""
        return self._params
