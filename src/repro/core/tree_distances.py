"""Algorithm 1: private distances on trees (Section 4.1).

The single-source release (Theorem 4.1) recursively partitions the tree
into subtrees of at most half the size, as in Figure 1: at each step it
finds the splitter ``v*`` (the unique vertex whose subtree exceeds half
the current piece while each child subtree does not), releases noisy
distances ``d(root, v*)`` and ``w(v*, v_i)`` for each child ``v_i``, and
recurses into the child subtrees ``T_1..T_t`` and the remainder ``T_0``.

Privacy argument (from the paper): the pieces at one recursion level are
vertex-disjoint and the queries within a piece touch disjoint edge sets,
so the queries of each level form a sensitivity-1 vector; with ``D``
levels the whole query vector has sensitivity ``D``, and adding
``Lap(D/eps)`` noise to every query is one Laplace-mechanism release
(eps-DP).  The recursion structure depends only on the *public*
topology, so ``D`` itself is public and is computed by a dry structural
pass before any noise is drawn.

Accuracy: every root-to-vertex distance is a sum of at most ``2D`` noisy
queries, so Lemma 3.1 gives error ``O(log^1.5 V * log(1/gamma))/eps``
per distance (Theorem 4.1).  All-pairs distances follow from the LCA
identity ``d(x,y) = d(v0,x) + d(v0,y) - 2 d(v0, lca(x,y))``
(Theorem 4.2) at no extra privacy cost.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..dp.params import PrivacyParams
from ..exceptions import PrivacyError, VertexNotFoundError
from ..graphs.graph import Vertex, WeightedGraph
from ..graphs.tree import RootedTree
from ..rng import Rng

__all__ = [
    "TreeSingleSourceRelease",
    "TreeAllPairsRelease",
    "release_tree_single_source",
    "release_tree_all_pairs",
]


class _Piece:
    """One piece of the recursive partition: a connected subtree of the
    original tree, identified by its local root and vertex set."""

    __slots__ = ("root", "members")

    def __init__(self, root: Vertex, members: set) -> None:
        self.root = root
        self.members = members


class _RecursionPlan:
    """The public (data-independent) structure of Algorithm 1's
    recursion: for each level, the queries to release.

    Each query is either ``("root", piece_root, v_star)`` — the distance
    from the piece root to its splitter — or ``("edge", v_star, child)``
    — the weight of a splitter-to-child edge.  The plan is computed from
    topology alone, so the number of levels (= the query vector's
    sensitivity) is public.
    """

    def __init__(self, tree: RootedTree) -> None:
        self.levels: List[List[Tuple[str, Vertex, Vertex]]] = []
        self.splits: Dict[int, List[Tuple[_Piece, Vertex, List[_Piece]]]] = {}
        current = [
            _Piece(tree.root, set(tree.preorder()))
        ]
        depth = 0
        while current:
            queries: List[Tuple[str, Vertex, Vertex]] = []
            splits: List[Tuple[_Piece, Vertex, List[_Piece]]] = []
            next_level: List[_Piece] = []
            for piece in current:
                if len(piece.members) <= 1:
                    continue
                v_star = _find_splitter(tree, piece)
                queries.append(("root", piece.root, v_star))
                children_in = [
                    c for c in tree.children(v_star) if c in piece.members
                ]
                sub_pieces: List[_Piece] = []
                removed: set = set()
                for child in children_in:
                    queries.append(("edge", v_star, child))
                    members = _descendants_within(tree, child, piece.members)
                    removed |= members
                    sub_pieces.append(_Piece(child, members))
                t0 = _Piece(piece.root, piece.members - removed)
                splits.append((piece, v_star, sub_pieces))
                next_level.extend(sub_pieces)
                next_level.append(t0)
            if queries:
                self.levels.append(queries)
                self.splits[depth] = splits
                depth += 1
            current = next_level

    @property
    def depth(self) -> int:
        """The number of recursion levels ``D`` (the sensitivity of the
        full query vector)."""
        return len(self.levels)


def _find_splitter(tree: RootedTree, piece: _Piece) -> Vertex:
    """The splitter ``v*`` of Algorithm 1 step 1, computed within the
    piece: subtree sizes are taken relative to the piece's members."""
    sizes = _sizes_within(tree, piece)
    half = len(piece.members) / 2.0
    v = piece.root
    while True:
        heavy = [
            c
            for c in tree.children(v)
            if c in piece.members and sizes[c] > half
        ]
        if not heavy:
            return v
        v = heavy[0]


def _sizes_within(tree: RootedTree, piece: _Piece) -> Dict[Vertex, int]:
    order = [v for v in tree.preorder() if v in piece.members]
    sizes: Dict[Vertex, int] = {}
    for v in reversed(order):
        sizes[v] = 1 + sum(
            sizes[c] for c in tree.children(v) if c in piece.members
        )
    return sizes


def _descendants_within(
    tree: RootedTree, start: Vertex, members: set
) -> set:
    result = set()
    stack = [start]
    while stack:
        v = stack.pop()
        result.add(v)
        stack.extend(c for c in tree.children(v) if c in members)
    return result


class TreeSingleSourceRelease:
    """Theorem 4.1's release: noisy distances from the root to every
    vertex of a tree, via Algorithm 1."""

    def __init__(self, tree: RootedTree, eps: float, rng: Rng) -> None:
        if eps <= 0:
            raise PrivacyError(f"eps must be positive, got {eps}")
        self._tree = tree
        self._params = PrivacyParams(eps)
        plan = _RecursionPlan(tree)
        self._depth = plan.depth
        # Scale = sensitivity / eps; sensitivity = number of levels.
        # Single-vertex trees release nothing.
        self._scale = max(plan.depth, 1) / eps
        self._estimates: Dict[Vertex, float] = {tree.root: 0.0}
        self._noise_terms: Dict[Vertex, int] = {tree.root: 0}
        self._num_queries = 0
        self._execute(plan, rng)

    def _execute(self, plan: _RecursionPlan, rng: Rng) -> None:
        tree = self._tree
        for depth in range(plan.depth):
            for piece, v_star, sub_pieces in plan.splits[depth]:
                base = self._estimates[piece.root]
                base_terms = self._noise_terms[piece.root]
                # d(root, v*) within the piece equals the difference of
                # original root distances, because the piece root is an
                # ancestor of every piece member.
                true_root_to_star = tree.distance_from_root(
                    v_star
                ) - tree.distance_from_root(piece.root)
                est_star = base + true_root_to_star + rng.laplace(self._scale)
                self._num_queries += 1
                star_terms = base_terms + 1
                if v_star not in self._estimates:
                    self._estimates[v_star] = est_star
                    self._noise_terms[v_star] = star_terms
                for sub in sub_pieces:
                    child = sub.root
                    edge_weight = tree.graph.weight(v_star, child)
                    est_child = (
                        est_star + edge_weight + rng.laplace(self._scale)
                    )
                    self._num_queries += 1
                    if child not in self._estimates:
                        self._estimates[child] = est_child
                        self._noise_terms[child] = star_terms + 1

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee (pure eps-DP)."""
        return self._params

    @property
    def tree(self) -> RootedTree:
        """The (public) rooted tree topology."""
        return self._tree

    @property
    def recursion_depth(self) -> int:
        """The number of recursion levels ``D`` — paper bound:
        ``<= log2 V`` up to rounding."""
        return self._depth

    @property
    def noise_scale(self) -> float:
        """The Laplace scale ``D/eps`` used per query."""
        return self._scale

    @property
    def num_queries(self) -> int:
        """Total noisy queries released — paper bound: ``<= 2V``."""
        return self._num_queries

    def distance_from_root(self, v: Vertex) -> float:
        """The released estimate of ``d_w(v0, v)``."""
        if v not in self._estimates:
            raise VertexNotFoundError(v)
        return self._estimates[v]

    def noise_terms(self, v: Vertex) -> int:
        """How many Laplace terms the estimate for ``v`` accumulated —
        paper bound: ``<= 2D`` (at most two per recursion level)."""
        if v not in self._noise_terms:
            raise VertexNotFoundError(v)
        return self._noise_terms[v]

    def all_distances(self) -> Dict[Vertex, float]:
        """Released estimates for every vertex."""
        return dict(self._estimates)


class TreeAllPairsRelease:
    """Theorem 4.2's release: all-pairs tree distances from a single
    single-source release plus the public LCA structure."""

    def __init__(self, tree: RootedTree, eps: float, rng: Rng) -> None:
        self._single = TreeSingleSourceRelease(tree, eps, rng)
        self._tree = tree

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee (pure eps-DP; post-processing of the
        single-source release)."""
        return self._single.params

    @property
    def single_source(self) -> TreeSingleSourceRelease:
        """The underlying single-source release."""
        return self._single

    def distance(self, x: Vertex, y: Vertex) -> float:
        """The released estimate of ``d_w(x, y)`` via the LCA identity
        of Theorem 4.2."""
        z = self._tree.lca(x, y)
        return (
            self._single.distance_from_root(x)
            + self._single.distance_from_root(y)
            - 2.0 * self._single.distance_from_root(z)
        )

    def all_pairs(self) -> Dict[Tuple[Vertex, Vertex], float]:
        """Released distances for every unordered pair."""
        vertices = self._tree.preorder()
        return {
            (x, y): self.distance(x, y)
            for i, x in enumerate(vertices)
            for y in vertices[i + 1 :]
        }


def _as_rooted(tree: WeightedGraph | RootedTree, root: Vertex | None) -> RootedTree:
    if isinstance(tree, RootedTree):
        return tree
    if root is None:
        root = next(iter(tree.vertices()))
    return RootedTree(tree, root)


def release_tree_single_source(
    tree: WeightedGraph | RootedTree,
    eps: float,
    rng: Rng,
    root: Vertex | None = None,
) -> TreeSingleSourceRelease:
    """Run Algorithm 1 (Theorem 4.1) on a tree.

    ``tree`` may be a :class:`RootedTree` or a tree-shaped
    :class:`WeightedGraph` (rooted at ``root``, defaulting to the first
    vertex — the choice is public and arbitrary, as in Theorem 4.2).
    """
    return TreeSingleSourceRelease(_as_rooted(tree, root), eps, rng)


def release_tree_all_pairs(
    tree: WeightedGraph | RootedTree,
    eps: float,
    rng: Rng,
    root: Vertex | None = None,
) -> TreeAllPairsRelease:
    """Run the Theorem 4.2 all-pairs release on a tree."""
    return TreeAllPairsRelease(_as_rooted(tree, root), eps, rng)
