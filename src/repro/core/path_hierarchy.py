"""Appendix A: private all-pairs distances on the path graph.

The path graph ``P`` on vertices ``0..V-1`` is the paper's bridge to
query release of threshold functions: ``d(0, x)`` is a prefix sum of
edge weights, so releasing all-pairs path distances is the [DNPR10]
continual-counter problem restated (Theorem A.1).

The construction designates hub sets ``S_0 supset S_1 supset ...`` of
geometrically increasing spacing and releases the noisy distance
between each pair of *consecutive* hubs at each level.  With base-2
spacing the consecutive-hub segments are exactly the dyadic intervals
``[j * 2^i, (j+1) * 2^i)`` of edge indices, which is the form
implemented here:

* each edge index lies in exactly one segment per level, so the full
  query vector has sensitivity ``L`` (the number of levels) and
  ``Lap(L/eps)`` noise per segment makes the release eps-DP;
* every prefix ``[0, x)`` decomposes into at most ``L`` released
  segments (binary decomposition), so ``d(x, y) = prefix(y) -
  prefix(x)`` sums at most ``2L`` noisy terms — by Lemma 3.1 the error
  is ``O(log^1.5 V * log(1/gamma))/eps`` per distance (Theorem A.1),
  matching the tree algorithm of Section 4.1.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..dp.params import PrivacyParams
from ..exceptions import GraphError, PrivacyError, VertexNotFoundError
from ..graphs.graph import Vertex, WeightedGraph
from ..rng import Rng

__all__ = ["PathHierarchyRelease", "release_path_hierarchy", "linearize_path"]


def linearize_path(graph: WeightedGraph) -> List[Vertex]:
    """Order the vertices of a path graph end to end.

    Raises :class:`~repro.exceptions.GraphError` unless the graph is a
    path (connected, two endpoints of degree 1, the rest degree 2).
    """
    if graph.directed:
        raise GraphError("path hierarchy requires an undirected graph")
    n = graph.num_vertices
    if n == 0:
        raise GraphError("empty graph is not a path")
    if n == 1:
        return graph.vertex_list()
    if graph.num_edges != n - 1:
        raise GraphError("a path on n vertices has exactly n - 1 edges")
    endpoints = [v for v in graph.vertices() if graph.degree(v) == 1]
    if len(endpoints) != 2:
        raise GraphError("a path graph must have exactly two endpoints")
    order = [endpoints[0]]
    seen = {endpoints[0]}
    while len(order) < n:
        tail = order[-1]
        extensions = [u for u, _ in graph.neighbors(tail) if u not in seen]
        if len(extensions) != 1:
            raise GraphError("graph is not a path (branch detected)")
        order.append(extensions[0])
        seen.add(extensions[0])
    return order


class PathHierarchyRelease:
    """The Appendix A hub-hierarchy release for a path graph."""

    def __init__(self, graph: WeightedGraph, eps: float, rng: Rng) -> None:
        if eps <= 0:
            raise PrivacyError(f"eps must be positive, got {eps}")
        graph.check_nonnegative()
        self._order = linearize_path(graph)
        self._index = {v: i for i, v in enumerate(self._order)}
        self._params = PrivacyParams(eps)
        edge_weights = [
            graph.weight(self._order[i], self._order[i + 1])
            for i in range(len(self._order) - 1)
        ]
        num_edges = len(edge_weights)
        # Number of levels: dyadic segment lengths 2^0 .. 2^(L-1).
        self._levels = max(1, num_edges.bit_length()) if num_edges else 1
        self._scale = self._levels / eps
        # Prefix sums of true weights for O(1) segment sums.
        prefix = [0.0]
        for w in edge_weights:
            prefix.append(prefix[-1] + w)
        self._segments: Dict[Tuple[int, int], float] = {}
        for level in range(self._levels):
            length = 1 << level
            start = 0
            while start + length <= num_edges:
                true_sum = prefix[start + length] - prefix[start]
                self._segments[(level, start)] = true_sum + rng.laplace(
                    self._scale
                )
                start += length

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee (pure eps-DP)."""
        return self._params

    @property
    def num_levels(self) -> int:
        """The number of hub levels ``L ~ log2 V`` (= the sensitivity of
        the released query vector)."""
        return self._levels

    @property
    def noise_scale(self) -> float:
        """The per-segment Laplace scale ``L/eps``."""
        return self._scale

    @property
    def num_segments(self) -> int:
        """How many noisy segment sums were released (< 2E)."""
        return len(self._segments)

    def _decompose(self, upto: int) -> List[Tuple[int, int]]:
        """Dyadic segments covering edge indices ``[0, upto)``; at most
        one per level (binary decomposition of ``upto``)."""
        segments: List[Tuple[int, int]] = []
        start = 0
        for level in reversed(range(self._levels)):
            length = 1 << level
            if start + length <= upto:
                segments.append((level, start))
                start += length
        assert start == upto
        return segments

    def prefix_estimate(self, position: int) -> Tuple[float, int]:
        """Noisy estimate of ``d(order[0], order[position])`` and the
        number of noisy terms it summed."""
        if not 0 <= position < len(self._order):
            raise GraphError(
                f"position {position} outside path of {len(self._order)} "
                "vertices"
            )
        segments = self._decompose(position)
        return sum(self._segments[s] for s in segments), len(segments)

    def distance(self, x: Vertex, y: Vertex) -> float:
        """The released estimate of ``d_w(x, y)``."""
        if x not in self._index:
            raise VertexNotFoundError(x)
        if y not in self._index:
            raise VertexNotFoundError(y)
        i, j = sorted((self._index[x], self._index[y]))
        # d(x, y) = prefix(j) - prefix(i); cancelling shared segments
        # would reduce error further, but the plain difference is what
        # the analysis bounds, and shared segments cancel exactly anyway
        # when both decompositions contain them.
        hi, _ = self.prefix_estimate(j)
        lo, _ = self.prefix_estimate(i)
        return hi - lo

    def max_terms_per_distance(self) -> int:
        """The worst-case number of noisy terms a distance estimate can
        sum (``<= 2L``), for validating the Theorem A.1 analysis."""
        return 2 * self._levels


def release_path_hierarchy(
    graph: WeightedGraph, eps: float, rng: Rng
) -> PathHierarchyRelease:
    """Run the Appendix A release (Theorem A.1) on a path graph."""
    return PathHierarchyRelease(graph, eps, rng)
