"""Algorithm 3: private shortest paths (Section 5.2).

The mechanism releases, for every edge,

    w'(e) = w(e) + Lap(1/eps) + (1/eps) * log(E / gamma)

and defines the approximate shortest path between any pair as the exact
shortest path under ``w'``.  The additive offset biases the release
*upward*, introducing a preference for few-hop paths: conditioned on the
high-probability event that every noise variable has magnitude at most
``(1/eps) log(E/gamma)``,

    w(e)  <=  w'(e)  <=  w(e) + (2/eps) log(E/gamma),

so any ``k``-hop path's released weight is within ``(2k/eps)
log(E/gamma)`` of its true weight, and the released path beats every
alternative path ``Q'`` up to ``(2 l(Q') / eps) log(E/gamma)``
(Theorem 5.5).  Since every shortest path has fewer than ``V`` hops,
the worst case is ``(2V/eps) log(E/gamma)`` (Corollary 5.6) — matching
the Omega(V) lower bound of Section 5.1 up to the log factor.

One release answers *all pairs* with no extra privacy cost: privacy is
spent once on ``w'`` and everything else is post-processing.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..algorithms.shortest_paths import dijkstra, dijkstra_path, reconstruct_path
from ..dp.mechanisms import LaplaceMechanism
from ..dp.params import PrivacyParams
from ..exceptions import PrivacyError
from ..graphs.graph import Vertex, WeightedGraph
from ..rng import Rng

__all__ = ["PrivatePathsRelease", "release_private_paths"]


class PrivatePathsRelease:
    """The Algorithm 3 release: a biased noisy graph plus path queries.

    Parameters
    ----------
    graph:
        The true weighted graph (weights must be nonnegative).
    eps:
        The privacy budget (pure DP).
    gamma:
        The failure probability used in the hop-penalty offset
        ``(1/eps) log(E/gamma)``; with probability ``1 - gamma`` the
        Theorem 5.5 guarantee holds simultaneously for all pairs.
    hop_bias:
        If ``False``, the offset is omitted.  This is *still* eps-DP
        (the offset is data-independent) and recovers the plain
        synthetic-graph path release; benchmarks use it as an ablation
        of the paper's bias trick.
    sensitivity_unit:
        The neighboring-relation unit (Section 1.2's Scaling remark).
    """

    def __init__(
        self,
        graph: WeightedGraph,
        eps: float,
        gamma: float,
        rng: Rng,
        hop_bias: bool = True,
        sensitivity_unit: float = 1.0,
    ) -> None:
        if not 0.0 < gamma < 1.0:
            raise PrivacyError(f"gamma must be in (0, 1), got {gamma}")
        graph.check_nonnegative()
        self._params = PrivacyParams(eps)
        self._gamma = gamma
        self._offset = (
            (sensitivity_unit / eps) * math.log(graph.num_edges / gamma)
            if hop_bias
            else 0.0
        )
        mechanism = LaplaceMechanism(
            sensitivity=sensitivity_unit, eps=eps, rng=rng
        )
        noisy = mechanism.release_vector(graph.weight_vector()) + self._offset
        # Clamp at zero so Dijkstra always applies.  Conditioned on the
        # event of Theorem 5.5 no weight is negative and clamping is a
        # no-op; outside that event clamping is harmless post-processing.
        self._released = graph.with_weights(noisy.clip(min=0.0))

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee (pure eps-DP)."""
        return self._params

    @property
    def gamma(self) -> float:
        """The failure probability the offset was tuned for."""
        return self._gamma

    @property
    def offset(self) -> float:
        """The hop-penalty offset ``(1/eps) log(E/gamma)`` added to every
        edge (0 when ``hop_bias=False``)."""
        return self._offset

    @property
    def graph(self) -> WeightedGraph:
        """The released graph ``(G, w')`` — safe to publish as-is."""
        return self._released

    def path(self, source: Vertex, target: Vertex) -> List[Vertex]:
        """The released path: a shortest path under ``w'``."""
        path, _ = dijkstra_path(self._released, source, target)
        return path

    def path_with_released_weight(  # privlint: ignore[PL1] exact Dijkstra over the already-noised released graph; post-processing is privacy-free
        self, source: Vertex, target: Vertex
    ) -> Tuple[List[Vertex], float]:
        """The released path together with its ``w'`` weight."""
        return dijkstra_path(self._released, source, target)

    def paths_from(self, source: Vertex) -> Dict[Vertex, List[Vertex]]:
        """Released paths from one source to every reachable vertex."""
        distances, parents = dijkstra(self._released, source)
        return {
            target: reconstruct_path(parents, source, target)
            for target in distances
        }

    def all_pairs_paths(  # privlint: ignore[PL1] exact sweeps over the already-noised released graph; post-processing is privacy-free
        self,
    ) -> Dict[Vertex, Dict[Vertex, List[Vertex]]]:
        """Released paths between every pair — one privacy budget pays
        for all of them (Theorem 5.5's "releases paths between all
        pairs" remark)."""
        return {
            source: self.paths_from(source)
            for source in self._released.vertices()
        }


def release_private_paths(
    graph: WeightedGraph,
    eps: float,
    gamma: float,
    rng: Rng,
    hop_bias: bool = True,
    sensitivity_unit: float = 1.0,
) -> PrivatePathsRelease:
    """Run Algorithm 3 and return the release object."""
    return PrivatePathsRelease(
        graph,
        eps,
        gamma,
        rng,
        hop_bias=hop_bias,
        sensitivity_unit=sensitivity_unit,
    )
