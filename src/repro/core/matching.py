"""Appendix B.2: private low-weight perfect matching (Theorem B.6).

Identical shape to the MST release: add ``Lap(1/eps)`` noise to every
weight, release the exact minimum-weight perfect matching of the noised
graph.  With probability ``1 - gamma`` the released matching's true
weight is within ``(V/eps) log(E/gamma)`` of the optimum.

Engine selection: bipartite graphs use the Hungarian algorithm (any
size); general graphs fall back to exact per-component bitmask DP
(components of at most ~22 vertices — which covers the paper's
hourglass instances, whose components have 4 vertices each).
"""

from __future__ import annotations

from typing import List, Literal

from ..algorithms.matching import (
    bipartition,
    exact_min_weight_perfect_matching,
    hungarian_min_cost_perfect_matching,
    matching_weight,
)
from ..dp.mechanisms import LaplaceMechanism
from ..dp.params import PrivacyParams
from ..exceptions import GraphError
from ..graphs.graph import Edge, WeightedGraph
from ..rng import Rng

__all__ = ["MatchingRelease", "release_private_matching"]

Engine = Literal["auto", "hungarian", "exact"]


def _solve(graph: WeightedGraph, engine: Engine) -> List[Edge]:
    if engine == "hungarian":
        return hungarian_min_cost_perfect_matching(graph)
    if engine == "exact":
        return exact_min_weight_perfect_matching(graph)
    if engine == "auto":
        try:
            bipartition(graph)
        except GraphError:
            return exact_min_weight_perfect_matching(graph)
        return hungarian_min_cost_perfect_matching(graph)
    raise ValueError(f"unknown matching engine {engine!r}")


class MatchingRelease:
    """A privately released perfect matching."""

    def __init__(
        self,
        graph: WeightedGraph,
        eps: float,
        rng: Rng,
        engine: Engine = "auto",
        sensitivity_unit: float = 1.0,
    ) -> None:
        self._params = PrivacyParams(eps)
        mechanism = LaplaceMechanism(
            sensitivity=sensitivity_unit, eps=eps, rng=rng
        )
        noisy = mechanism.release_vector(graph.weight_vector())
        self._noisy_graph = graph.with_weights(noisy)
        self._matching = _solve(self._noisy_graph, engine)

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee (pure eps-DP)."""
        return self._params

    @property
    def matching_edges(self) -> List[Edge]:
        """The released matching as canonical edge keys — the public
        output."""
        return list(self._matching)

    @property
    def noisy_graph(self) -> WeightedGraph:
        """The noised graph the matching was computed on."""
        return self._noisy_graph

    def true_weight(self, graph: WeightedGraph) -> float:  # privlint: ignore[PL1] analyst-side evaluation of the released matching against a caller-supplied graph; not part of the release
        """Evaluate the released matching under a weight function (pass
        the original graph to measure the Theorem B.6 error)."""
        return matching_weight(graph, self._matching)


def release_private_matching(
    graph: WeightedGraph,
    eps: float,
    rng: Rng,
    engine: Engine = "auto",
    sensitivity_unit: float = 1.0,
) -> MatchingRelease:
    """Run the Theorem B.6 mechanism and return the released matching."""
    return MatchingRelease(
        graph, eps, rng, engine=engine, sensitivity_unit=sensitivity_unit
    )
