"""Reconstruction lower bounds (Section 5.1, Appendix B; Figures 2–3).

The paper's lower bounds all follow one recipe: exhibit a gadget graph
and an encoding of a secret bitstring ``x`` into edge weights such that
any *accurate* release (short path / light spanning tree / light
matching) reveals most bits of ``x``, contradicting Lemma 5.4's limit on
how well a DP algorithm can reproduce its input.

This module implements the three gadgets and both directions of each
reduction:

* the **adversary** ``B`` of Lemmas 5.2 / B.2 / B.5, which decodes a
  released structure back into a bit vector — applied to a *non-private*
  exact solver it reconstructs ``x`` perfectly, demonstrating the leak;
* the **private mechanisms** (Algorithm 3 / Theorem B.3 / Theorem B.6)
  run on the gadgets, whose decoded outputs must err on about half the
  bits — which is exactly why their approximation error is forced up to
  ``Omega(V)`` (Theorems 5.1, B.1, B.4).

Gadgets:

* :func:`parallel_path_gadget` — Figure 2: vertices ``0..n`` with two
  parallel edges ``e_i^(0)``, ``e_i^(1)`` between ``i-1`` and ``i``.
* :func:`star_gadget` — Figure 3 (left): hub ``0`` with two parallel
  edges to each of ``1..n``.
* :func:`hourglass_gadget` — Figure 3 (right): ``n`` disjoint 4-vertex
  gadgets ``{(b1, b2, c)}`` with edges ``(0, b, c) - (1, b', c)``.

Edge keys for the multigraph gadgets are ``("e", i, b)`` so the decoder
can read the bit ``b`` straight off the released edge.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

from ..algorithms.shortest_paths import dijkstra_path
from ..algorithms.spanning_tree import kruskal_mst
from ..dp.params import PrivacyParams
from ..exceptions import GraphError, PrivacyError
from ..graphs.graph import WeightedGraph
from ..graphs.multigraph import MultiEdge, WeightedMultiGraph
from ..rng import Rng
from .matching import release_private_matching

__all__ = [
    "parallel_path_gadget",
    "path_weights_from_bits",
    "decode_path_bits",
    "exact_gadget_path",
    "private_gadget_path",
    "star_gadget",
    "star_weights_from_bits",
    "decode_star_bits",
    "exact_gadget_mst",
    "private_gadget_mst",
    "hourglass_gadget",
    "hourglass_weights_from_bits",
    "decode_matching_bits",
    "exact_gadget_matching",
    "private_gadget_matching",
    "hamming_distance",
    "attack_trial",
]


def hamming_distance(x: Sequence[int], y: Sequence[int]) -> int:
    """The number of coordinates where two bit vectors differ."""
    if len(x) != len(y):
        raise ValueError(
            f"length mismatch: {len(x)} vs {len(y)} coordinates"
        )
    return sum(1 for a, b in zip(x, y) if a != b)


def _check_bits(bits: Sequence[int]) -> List[int]:
    out = []
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"bits must be 0/1, got {b!r}")
        out.append(int(b))
    if not out:
        raise ValueError("bit vector must be non-empty")
    return out


# ----------------------------------------------------------------------
# Figure 2: the shortest-path gadget (Lemma 5.2 / Theorem 5.1)
# ----------------------------------------------------------------------


def parallel_path_gadget(n: int) -> WeightedMultiGraph:
    """The Figure 2 multigraph: vertices ``0..n``, parallel edges
    ``("e", i, 0)`` and ``("e", i, 1)`` between ``i-1`` and ``i``."""
    if n < 1:
        raise GraphError(f"gadget needs n >= 1 bit positions, got {n}")
    gadget = WeightedMultiGraph()
    for i in range(1, n + 1):
        gadget.add_edge(i - 1, i, 1.0, key=("e", i, 0))
        gadget.add_edge(i - 1, i, 1.0, key=("e", i, 1))
    return gadget


def path_weights_from_bits(bits: Sequence[int]) -> Dict[MultiEdge, float]:
    """The Lemma 5.2 encoding: ``w(e_i^(x_i)) = 0`` and
    ``w(e_i^(1 - x_i)) = 1``, so the shortest 0-to-n path has weight 0
    and spells out ``x``."""
    bits = _check_bits(bits)
    weights: Dict[MultiEdge, float] = {}
    for i, bit in enumerate(bits, start=1):
        weights[("e", i, bit)] = 0.0
        weights[("e", i, 1 - bit)] = 1.0
    return weights


def decode_path_bits(n: int, path_keys: Sequence[MultiEdge]) -> List[int]:
    """The adversary's decoder: ``y_i = 0`` iff ``e_i^(0)`` is on the
    released path (Lemma 5.2's definition of ``y``)."""
    chosen: Dict[int, int] = {}
    for key in path_keys:
        tag, i, b = key
        if tag != "e":
            raise GraphError(f"unexpected edge key {key!r}")
        chosen[i] = b
    missing = [i for i in range(1, n + 1) if i not in chosen]
    if missing:
        raise GraphError(
            f"released path skips positions {missing}; it is not a "
            "0-to-n path in the gadget"
        )
    return [chosen[i] for i in range(1, n + 1)]


def _multigraph_st_path(
    gadget: WeightedMultiGraph, source, target
) -> List[MultiEdge]:
    simple, chosen = gadget.min_weight_projection()
    vertex_path, _ = dijkstra_path(simple, source, target)
    keys = []
    for u, v in zip(vertex_path, vertex_path[1:]):
        canonical = simple.edge_key(u, v)
        assert canonical is not None
        keys.append(chosen[canonical])
    return keys


def exact_gadget_path(  # privlint: ignore[PL1] the attack baseline: intentionally exact
    gadget: WeightedMultiGraph, weights: Dict[MultiEdge, float]
) -> List[MultiEdge]:
    """The non-private baseline: the true shortest 0-to-n path.  Feeding
    its output to :func:`decode_path_bits` reconstructs the input
    exactly — the blatant leak that motivates the lower bound."""
    concrete = gadget.with_weights(weights)
    n = concrete.num_vertices - 1
    return _multigraph_st_path(concrete, 0, n)


def private_gadget_path(
    gadget: WeightedMultiGraph,
    weights: Dict[MultiEdge, float],
    eps: float,
    gamma: float,
    rng: Rng,
    hop_bias: bool = True,
) -> Tuple[List[MultiEdge], PrivacyParams]:
    """Algorithm 3 run on the multigraph gadget.

    Adds ``Lap(1/eps)`` noise (plus the hop-penalty offset) to every
    parallel edge and returns the shortest 0-to-n path of the noised
    gadget.  eps-DP by the same argument as Theorem 5.5; note the
    Lemma 5.2 *reduction* costs a factor 2 (neighboring bitstrings map
    to weight functions at L1 distance 2), which is accounted for in the
    theorem, not here.
    """
    if not 0.0 < gamma < 1.0:
        raise PrivacyError(f"gamma must be in (0, 1), got {gamma}")
    concrete = gadget.with_weights(weights)
    offset = (
        (1.0 / eps) * math.log(concrete.num_edges / gamma) if hop_bias else 0.0
    )
    noised: Dict[MultiEdge, float] = {}
    for key, w in concrete.weights().items():
        noised[key] = max(0.0, w + rng.laplace(1.0 / eps) + offset)
    noisy = concrete.with_weights(noised)
    n = noisy.num_vertices - 1
    return _multigraph_st_path(noisy, 0, n), PrivacyParams(eps)


# ----------------------------------------------------------------------
# Figure 3 (left): the spanning-tree gadget (Lemma B.2 / Theorem B.1)
# ----------------------------------------------------------------------


def star_gadget(n: int) -> WeightedMultiGraph:
    """The Figure 3 (left) multigraph: hub ``0`` joined to each vertex
    ``i`` in ``1..n`` by parallel edges ``("e", i, 0)``, ``("e", i, 1)``."""
    if n < 1:
        raise GraphError(f"gadget needs n >= 1 bit positions, got {n}")
    gadget = WeightedMultiGraph()
    for i in range(1, n + 1):
        gadget.add_edge(0, i, 1.0, key=("e", i, 0))
        gadget.add_edge(0, i, 1.0, key=("e", i, 1))
    return gadget


def star_weights_from_bits(bits: Sequence[int]) -> Dict[MultiEdge, float]:
    """The Lemma B.2 encoding — identical in form to the path gadget's:
    the cheap edge to leaf ``i`` carries bit ``x_i``."""
    return path_weights_from_bits(bits)


def decode_star_bits(n: int, tree_keys: Sequence[MultiEdge]) -> List[int]:
    """Decoder for the MST gadget: ``y_i = 0`` iff ``e_i^(0)`` is in the
    released spanning tree."""
    return decode_path_bits(n, tree_keys)


def _multigraph_mst(gadget: WeightedMultiGraph) -> List[MultiEdge]:
    simple, chosen = gadget.min_weight_projection()
    tree = kruskal_mst(simple)
    return [chosen[key] for key in tree]


def exact_gadget_mst(  # privlint: ignore[PL1] the attack baseline: intentionally exact
    gadget: WeightedMultiGraph, weights: Dict[MultiEdge, float]
) -> List[MultiEdge]:
    """The non-private MST baseline (perfect reconstruction)."""
    return _multigraph_mst(gadget.with_weights(weights))


def private_gadget_mst(
    gadget: WeightedMultiGraph,
    weights: Dict[MultiEdge, float],
    eps: float,
    rng: Rng,
) -> Tuple[List[MultiEdge], PrivacyParams]:
    """Theorem B.3's mechanism on the gadget: noise every parallel edge
    with ``Lap(1/eps)`` and release the exact MST of the noised
    multigraph."""
    concrete = gadget.with_weights(weights)
    noised = {
        key: w + rng.laplace(1.0 / eps)
        for key, w in concrete.weights().items()
    }
    return _multigraph_mst(concrete.with_weights(noised)), PrivacyParams(eps)


# ----------------------------------------------------------------------
# Figure 3 (right): the matching gadget (Lemma B.5 / Theorem B.4)
# ----------------------------------------------------------------------


def hourglass_gadget(n: int) -> WeightedGraph:
    """The Figure 3 (right) graph: ``n`` disjoint hourglass gadgets.

    Gadget ``c`` has vertices ``(b1, b2, c)`` for ``b1, b2 in {0, 1}``
    and the four edges ``(0, b, c) - (1, b', c)`` — a 4-cycle
    (complete bipartite K_{2,2} between side ``b1 = 0`` and side
    ``b1 = 1``).  This is a simple graph, no multigraph needed.
    """
    if n < 1:
        raise GraphError(f"gadget needs n >= 1 bit positions, got {n}")
    graph = WeightedGraph()
    for c in range(n):
        for b in (0, 1):
            for b_prime in (0, 1):
                graph.add_edge((0, b, c), (1, b_prime, c), 1.0)
    return graph


def hourglass_weights_from_bits(
    bits: Sequence[int],
) -> Dict[Tuple, float]:
    """The Lemma B.5 encoding: weight 1 on the edge from ``(0, 1, c)``
    to ``(1, 1 - x_c, c)``, weight 0 on the other three edges of each
    gadget.  The min-weight perfect matching has weight 0 and pairs
    ``(0, 1, c)`` with ``(1, x_c, c)``."""
    bits = _check_bits(bits)
    weights: Dict[Tuple, float] = {}
    for c, bit in enumerate(bits):
        for b_prime in (0, 1):
            weights[((0, 0, c), (1, b_prime, c))] = 0.0
        weights[((0, 1, c), (1, 1 - bit, c))] = 1.0
        weights[((0, 1, c), (1, bit, c))] = 0.0
    return weights


def decode_matching_bits(
    n: int, matching_edges: Sequence[Tuple]
) -> List[int]:
    """Decoder of Lemma B.5: ``y_c = 0`` iff the edge from ``(0, 1, c)``
    to ``(1, 0, c)`` is in the matching."""
    partner: Dict[int, int] = {}
    for u, v in matching_edges:
        for a, b in ((u, v), (v, u)):
            if a[:2] == (0, 1):
                partner[a[2]] = b[1]
    missing = [c for c in range(n) if c not in partner]
    if missing:
        raise GraphError(
            f"matching leaves top vertices of gadgets {missing} unmatched"
        )
    return [partner[c] for c in range(n)]


def exact_gadget_matching(  # privlint: ignore[PL1] the attack baseline: intentionally exact
    gadget: WeightedGraph, weights: Dict[Tuple, float]
) -> List[Tuple]:
    """The non-private matching baseline (perfect reconstruction)."""
    from ..algorithms.matching import hungarian_min_cost_perfect_matching

    concrete = gadget.with_weights(weights)
    return hungarian_min_cost_perfect_matching(concrete)


def private_gadget_matching(
    gadget: WeightedGraph,
    weights: Dict[Tuple, float],
    eps: float,
    rng: Rng,
) -> Tuple[List[Tuple], PrivacyParams]:
    """Theorem B.6's mechanism on the hourglass instance."""
    concrete = gadget.with_weights(weights)
    release = release_private_matching(concrete, eps, rng, engine="hungarian")
    return release.matching_edges, release.params


# ----------------------------------------------------------------------
# The full attack pipeline (Lemmas 5.2-5.4 empirically)
# ----------------------------------------------------------------------


def attack_trial(
    bits: Sequence[int],
    release: Callable[[Sequence[int]], List[int]],
) -> Tuple[int, float]:
    """Run one reconstruction trial.

    ``release`` maps the secret bits to the adversary's decoded guess
    (the composition of encoding, mechanism and decoder).  Returns the
    Hamming distance achieved and its fraction of ``n``.

    Lemma 5.4 says a ``(2 eps, (1+e^eps) delta)``-DP pipeline must have
    expected Hamming distance at least ``n (1 - (1+e^eps) delta) /
    (1 + e^{2 eps})`` on uniform inputs; an exact solver achieves 0.
    The benchmarks average this over many random ``bits``.
    """
    bits = _check_bits(bits)
    guess = release(bits)
    distance = hamming_distance(bits, guess)
    return distance, distance / len(bits)
