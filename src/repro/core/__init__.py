"""The paper's private mechanisms.

Each module implements one algorithm or construction from the paper:

* :mod:`repro.core.distance_oracle` — single-pair and all-pairs
  distance baselines (Section 4 intro).
* :mod:`repro.core.synthetic_graph` — the noisy-graph release
  (Section 4 intro / basis of Algorithm 3).
* :mod:`repro.core.private_paths` — Algorithm 3 (Theorem 5.5).
* :mod:`repro.core.tree_distances` — Algorithm 1 (Theorems 4.1, 4.2).
* :mod:`repro.core.path_hierarchy` — Appendix A (Theorem A.1).
* :mod:`repro.core.bounded_weight` — Algorithm 2 (Theorems 4.3–4.7).
* :mod:`repro.core.mst` — Appendix B.1 (Theorem B.3).
* :mod:`repro.core.matching` — Appendix B.2 (Theorem B.6).
* :mod:`repro.core.lower_bounds` — the reconstruction lower bounds
  (Theorems 5.1, B.1, B.4 and Figures 2–3).
"""

from .distance_oracle import (
    private_distance,
    AllPairsBasicRelease,
    AllPairsAdvancedRelease,
)
from .synthetic_graph import SyntheticGraphRelease, release_synthetic_graph
from .private_paths import PrivatePathsRelease, release_private_paths
from .tree_distances import (
    TreeSingleSourceRelease,
    TreeAllPairsRelease,
    release_tree_single_source,
    release_tree_all_pairs,
)
from .path_hierarchy import PathHierarchyRelease, release_path_hierarchy
from .bounded_weight import (
    BoundedWeightRelease,
    release_bounded_weight,
    release_grid_bounded_weight,
)
from .cycle_distances import CycleRelease, release_cycle_distances
from .histogram_release import HistogramRelease, release_histogram_distances
from .mst import MstRelease, release_private_mst
from .matching import MatchingRelease, release_private_matching
from . import lower_bounds

__all__ = [
    "private_distance",
    "AllPairsBasicRelease",
    "AllPairsAdvancedRelease",
    "SyntheticGraphRelease",
    "release_synthetic_graph",
    "PrivatePathsRelease",
    "release_private_paths",
    "TreeSingleSourceRelease",
    "TreeAllPairsRelease",
    "release_tree_single_source",
    "release_tree_all_pairs",
    "PathHierarchyRelease",
    "release_path_hierarchy",
    "BoundedWeightRelease",
    "release_bounded_weight",
    "release_grid_bounded_weight",
    "CycleRelease",
    "release_cycle_distances",
    "HistogramRelease",
    "release_histogram_distances",
    "MstRelease",
    "release_private_mst",
    "MatchingRelease",
    "release_private_matching",
    "lower_bounds",
]
