"""The synthetic-graph release (Section 4, introduction).

"The other natural approach is to release an eps-differentially private
version of the graph by adding ``Lap(1/eps)`` noise to each edge."  The
weight vector ``w`` has L1 sensitivity 1 between neighbors by
definition, so this is one application of the Laplace mechanism; every
downstream computation (distances, paths, anything) is post-processing
and therefore free.

With probability ``1 - gamma`` all ``E`` noise variables have magnitude
at most ``(1/eps) log(E/gamma)``, so every path's length moves by at
most ``(V/eps) log(E/gamma)`` — the ``~V/eps`` all-pairs baseline that
the tree and bounded-weight algorithms improve on.

Noisy weights can be negative, which would break Dijkstra.  The release
clamps weights at zero by default: clamping is post-processing (no
privacy cost) and can only move a noisy weight *closer* to the true
nonnegative weight (``|max(0, w + X) - w| <= |X|`` when ``w >= 0``), so
the error bound is preserved.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..algorithms.shortest_paths import all_pairs_dijkstra, dijkstra_path
from ..dp.mechanisms import LaplaceMechanism
from ..dp.params import PrivacyParams
from ..graphs.graph import Vertex, WeightedGraph
from ..rng import Rng

__all__ = ["SyntheticGraphRelease", "release_synthetic_graph"]


class SyntheticGraphRelease:
    """A privately released copy of the graph with noisy weights.

    The released object is the noisy graph itself (public); query
    methods are conveniences that post-process it.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        eps: float,
        rng: Rng,
        clamp_at_zero: bool = True,
        sensitivity_unit: float = 1.0,
    ) -> None:
        graph.check_nonnegative()
        self._params = PrivacyParams(eps)
        self._eps = eps
        mechanism = LaplaceMechanism(
            sensitivity=sensitivity_unit, eps=eps, rng=rng
        )
        noisy = mechanism.release_vector(graph.weight_vector())
        if clamp_at_zero:
            noisy = noisy.clip(min=0.0)
        self._released = graph.with_weights(noisy)

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee (pure eps-DP)."""
        return self._params

    @property
    def graph(self) -> WeightedGraph:
        """The released noisy graph — safe to publish as-is."""
        return self._released

    def distance(self, source: Vertex, target: Vertex) -> float:
        """Noisy distance estimate via exact Dijkstra on the release."""
        _, weight = dijkstra_path(self._released, source, target)
        return weight

    def shortest_path(  # privlint: ignore[PL1] exact Dijkstra over the already-noised released graph; post-processing is privacy-free
        self, source: Vertex, target: Vertex
    ) -> Tuple[List[Vertex], float]:
        """A path that is shortest *in the released graph*, and its
        released weight.  Its true weight is obtained by evaluating the
        path on the original graph (post-processing on the analyst's
        side)."""
        return dijkstra_path(self._released, source, target)

    def all_pairs_distances(self) -> Dict[Vertex, Dict[Vertex, float]]:  # privlint: ignore[PL1] exact sweep over the already-noised released graph; post-processing is privacy-free
        """Noisy all-pairs distances from the released graph."""
        return all_pairs_dijkstra(self._released)


def release_synthetic_graph(
    graph: WeightedGraph,
    eps: float,
    rng: Rng,
    clamp_at_zero: bool = True,
    sensitivity_unit: float = 1.0,
) -> SyntheticGraphRelease:
    """Release a noisy synthetic graph under eps-DP.

    ``sensitivity_unit`` implements the Scaling remark of Section 1.2:
    if a single individual can influence the weights by at most ``u`` in
    L1 (instead of 1), pass ``sensitivity_unit=u`` and the noise — and
    hence all error bounds — scale by ``u``.
    """
    return SyntheticGraphRelease(
        graph,
        eps,
        rng,
        clamp_at_zero=clamp_at_zero,
        sensitivity_unit=sensitivity_unit,
    )
