"""Appendix B.1: private almost-minimum spanning tree (Theorem B.3).

The mechanism adds ``Lap(1/eps)`` noise to every edge weight and
releases the exact MST of the noised graph.  Privacy: post-processing
of one Laplace-mechanism release (the weight vector has sensitivity 1).
Accuracy: with probability ``1 - gamma`` every noise variable has
magnitude at most ``(1/eps) log(E/gamma)``, so the released tree's true
weight is within ``2(V-1)/eps * log(E/gamma)`` of the minimum
(Theorem B.3).  Negative weights are allowed, both in the input
(Appendix B permits them) and as a product of the noise.
"""

from __future__ import annotations

from typing import List

from ..algorithms.spanning_tree import kruskal_mst, spanning_tree_weight
from ..dp.mechanisms import LaplaceMechanism
from ..dp.params import PrivacyParams
from ..graphs.graph import Edge, WeightedGraph
from ..rng import Rng

__all__ = ["MstRelease", "release_private_mst"]


class MstRelease:
    """A privately released spanning tree."""

    def __init__(
        self,
        graph: WeightedGraph,
        eps: float,
        rng: Rng,
        sensitivity_unit: float = 1.0,
    ) -> None:
        self._params = PrivacyParams(eps)
        mechanism = LaplaceMechanism(
            sensitivity=sensitivity_unit, eps=eps, rng=rng
        )
        noisy = mechanism.release_vector(graph.weight_vector())
        self._noisy_graph = graph.with_weights(noisy)
        self._tree = kruskal_mst(self._noisy_graph)

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee (pure eps-DP)."""
        return self._params

    @property
    def tree_edges(self) -> List[Edge]:
        """The released spanning tree as canonical edge keys — this is
        the public output."""
        return list(self._tree)

    @property
    def noisy_graph(self) -> WeightedGraph:
        """The noised graph the tree was computed on (also publishable:
        it is the actual Laplace-mechanism output)."""
        return self._noisy_graph

    def true_weight(self, graph: WeightedGraph) -> float:  # privlint: ignore[PL1] analyst-side evaluation of the released tree against a caller-supplied graph; not part of the release
        """Evaluate the released tree under a weight function — pass the
        original graph to measure the Theorem B.3 error (this is an
        analyst-side computation, not part of the release)."""
        return spanning_tree_weight(graph, self._tree)


def release_private_mst(
    graph: WeightedGraph,
    eps: float,
    rng: Rng,
    sensitivity_unit: float = 1.0,
) -> MstRelease:
    """Run the Theorem B.3 mechanism and return the released tree."""
    return MstRelease(graph, eps, rng, sensitivity_unit=sensitivity_unit)
