"""Section 1.3 at toy scale: synthetic-database release of all-pairs
distances via the histogram formulation.

Section 1.3 observes that a weight function is a point in ``R^{|E|}``,
so the private edge-weight model *is* the standard histogram model and
generic machinery (there: DRV10 boosting, with a discretization to
multiples of ``tau = alpha / (2 V)``) can release all-pairs distances
with error depending on ``||w||_1`` — incomparable to the paper's
bounds, and at *exponential running time*.

This module reproduces that trade-off concretely with the simpler
exponential mechanism over the same discretized candidate space:

* candidates are all weight vectors on a ``tau``-grid in
  ``[0, M]^{|E|}`` (``(M/tau + 1)^{|E|}`` of them — genuinely
  exponential in ``|E|``, which is the point; sizes are capped);
* the quality score of a candidate ``c`` is
  ``-max_{s,t} |d_c(s,t) - d_w(s,t)|`` — the negated worst all-pairs
  distance error.  Each distance has sensitivity 1 in ``w`` and a max
  of sensitivity-1 queries is sensitivity-1, so the score has
  sensitivity 1;
* the mechanism releases the chosen synthetic weight vector; all
  downstream queries are post-processing.

Utility: within ``(2/eps) ln(|C|/gamma)`` of the best grid point, whose
own error is at most ``tau |E| / 2``-ish — so the release error is
``O(tau E + (E/eps) log(M/tau))``, with running time ``(M/tau)^E``.
The benchmarks use this to exhibit Section 1.3's "incomparable"
regimes against the paper's polynomial-time algorithms.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Tuple

from ..algorithms.shortest_paths import all_pairs_dijkstra
from ..algorithms.traversal import is_connected
from ..dp.exponential import ExponentialMechanism
from ..dp.params import PrivacyParams
from ..exceptions import DisconnectedGraphError, GraphError, PrivacyError
from ..graphs.graph import Vertex, WeightedGraph
from ..rng import Rng

__all__ = ["HistogramRelease", "release_histogram_distances"]

_MAX_CANDIDATES = 300_000


class HistogramRelease:
    """An exponential-mechanism synthetic-graph release (toy scale)."""

    def __init__(
        self,
        graph: WeightedGraph,
        weight_bound: float,
        resolution: float,
        eps: float,
        rng: Rng,
        max_candidates: int = _MAX_CANDIDATES,
    ) -> None:
        if weight_bound <= 0:
            raise PrivacyError(
                f"weight bound must be positive, got {weight_bound}"
            )
        if resolution <= 0 or resolution > weight_bound:
            raise GraphError(
                f"resolution must be in (0, {weight_bound}], got {resolution}"
            )
        graph.check_bounded(weight_bound)
        if not is_connected(graph):
            raise DisconnectedGraphError(
                "histogram release requires a connected graph"
            )
        levels = int(math.floor(weight_bound / resolution)) + 1
        num_candidates = levels ** graph.num_edges
        if num_candidates > max_candidates:
            raise GraphError(
                f"candidate space has {num_candidates} grid points "
                f"({levels}^{graph.num_edges}); the mechanism is "
                "exponential-time by design — shrink the graph or "
                "coarsen the resolution"
            )
        self._params = PrivacyParams(eps)
        self._num_candidates = num_candidates

        true_distances = all_pairs_dijkstra(graph)
        vertices = graph.vertex_list()
        pairs = [
            (vertices[i], vertices[j])
            for i in range(len(vertices))
            for j in range(i + 1, len(vertices))
        ]

        grid = [round(i * resolution, 12) for i in range(levels)]
        candidates: List[Tuple[float, ...]] = []
        scores: List[float] = []
        for assignment in itertools.product(grid, repeat=graph.num_edges):
            candidate_graph = graph.with_weights(assignment)
            distances = all_pairs_dijkstra(candidate_graph)
            worst = max(
                abs(distances[s][t] - true_distances[s][t])
                for s, t in pairs
            )
            candidates.append(assignment)
            scores.append(-worst)
        mechanism = ExponentialMechanism(eps, sensitivity=1.0, rng=rng)
        chosen = mechanism.choose(candidates, scores)
        self._released_graph = graph.with_weights(chosen)
        self._released_distances = all_pairs_dijkstra(self._released_graph)

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee (pure eps-DP)."""
        return self._params

    @property
    def num_candidates(self) -> int:
        """How many grid candidates were scored (exponential in E)."""
        return self._num_candidates

    @property
    def graph(self) -> WeightedGraph:
        """The released synthetic graph — safe to publish."""
        return self._released_graph

    def distance(self, source: Vertex, target: Vertex) -> float:
        """All-pairs distance from the released synthetic graph."""
        return self._released_distances[source][target]


def release_histogram_distances(
    graph: WeightedGraph,
    weight_bound: float,
    resolution: float,
    eps: float,
    rng: Rng,
    max_candidates: int = _MAX_CANDIDATES,
) -> HistogramRelease:
    """Run the Section 1.3-style synthetic-database release (toy scale;
    exponential in ``|E|`` by design — see module docstring)."""
    return HistogramRelease(
        graph, weight_bound, resolution, eps, rng, max_candidates
    )
