"""Algorithm 2: all-pairs distances in bounded-weight graphs
(Section 4.2, Theorems 4.3, 4.5, 4.6, 4.7).

With weights in ``[0, M]``, fix a k-covering ``Z`` (Definition 4.1):
every vertex ``v`` has a covering vertex ``z(v)`` within ``k`` hops, so
``|d(u, v) - d(z(u), z(v))| <= 2kM``.  Release noisy distances only
between the ``|Z|^2`` covering pairs and answer every query
``(u, v)`` with the released ``a_{z(u), z(v)}``.

Two noise regimes:

* **approx** (Theorem 4.5): each pair gets ``Lap(1/eps_q)`` noise where
  ``eps_q`` composes to ``(eps, delta)`` over the ``|Z|^2`` queries via
  Lemma 3.4 — the paper's ``Lap(Z/eps')`` with
  ``eps' = O(eps / sqrt(ln 1/delta))``.
* **pure** (Theorem 4.6): the whole distance vector has L1 sensitivity
  ``|Z|^2``, so ``Lap(Z^2/eps)`` per entry is eps-DP.

Theorem 4.3 picks ``k`` to balance the ``2kM`` covering error against
the noise: ``k = sqrt(V/(M eps))`` (approx) or ``(V^2/(M eps))^{1/3}``
(pure), yielding ``O~(sqrt(V M / eps))`` and ``O((VM)^{2/3}/eps^{1/3})``
error.  Theorem 4.7 instantiates the square grid with its explicit
``2 V^{1/3}``-covering of ``V^{1/3}`` vertices.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Tuple

from ..algorithms.covering import (
    grid_covering,
    is_k_covering,
    meir_moon_k_covering,
    nearest_in_set,
)
from ..algorithms.shortest_paths import all_pairs_dijkstra
from ..algorithms.traversal import is_connected
from ..dp.bounds import (
    bounded_weight_optimal_k_approx,
    bounded_weight_optimal_k_pure,
)
from ..dp.composition import advanced_composition_epsilon_per_query
from ..dp.params import PrivacyParams
from ..exceptions import (
    DisconnectedGraphError,
    GraphError,
    PrivacyError,
    VertexNotFoundError,
)
from ..graphs.graph import Vertex, WeightedGraph
from ..rng import Rng

__all__ = [
    "BoundedWeightRelease",
    "release_bounded_weight",
    "release_grid_bounded_weight",
]


class BoundedWeightRelease:
    """The Algorithm 2 release object.

    Parameters
    ----------
    graph:
        Connected graph with weights in ``[0, weight_bound]``.
    weight_bound:
        The bound ``M`` on edge weights.
    eps, delta:
        The privacy budget.  ``delta = 0`` selects the pure regime of
        Theorem 4.6; ``delta > 0`` the approx regime of Theorem 4.5.
    k:
        The covering radius.  Defaults to the Theorem 4.3 optimum for
        the selected regime.
    covering:
        An explicit k-covering ``Z`` to use (validated).  Defaults to
        the Lemma 4.4 construction.
    backend:
        The :mod:`repro.engine` backend running the exact
        covering-pair distance sweep (default auto-selection).
    """

    def __init__(
        self,
        graph: WeightedGraph,
        weight_bound: float,
        eps: float,
        rng: Rng,
        delta: float = 0.0,
        k: int | None = None,
        covering: List[Vertex] | None = None,
        backend: str | None = None,
    ) -> None:
        if weight_bound <= 0:
            raise PrivacyError(
                f"weight bound M must be positive, got {weight_bound}"
            )
        graph.check_bounded(weight_bound)
        if not is_connected(graph):
            raise DisconnectedGraphError(
                "bounded-weight release requires a connected graph"
            )
        self._graph = graph
        self._weight_bound = float(weight_bound)
        self._params = PrivacyParams(eps, delta)
        v = graph.num_vertices

        if k is None:
            if delta > 0:
                k = bounded_weight_optimal_k_approx(v, weight_bound, eps)
            else:
                k = bounded_weight_optimal_k_pure(v, weight_bound, eps)
            # Lemma 4.4 needs V >= k + 1.
            k = min(k, max(v - 1, 1))
        if k < 0:
            raise GraphError(f"k must be nonnegative, got {k}")
        self._k = k

        if covering is None:
            covering = meir_moon_k_covering(graph, k)
        else:
            covering = list(covering)
            if not is_k_covering(graph, covering, k):
                raise GraphError(
                    f"provided vertex set is not a {k}-covering"
                )
        self._covering = covering
        z = len(covering)

        # Assignment z(v): nearest covering vertex by hops (step 2).
        self._assignment: Dict[Vertex, Vertex] = {
            vert: origin
            for vert, (origin, _) in nearest_in_set(graph, covering).items()
        }

        # Noise scale per released covering-pair distance (step 1).
        num_queries = max(z * (z - 1) // 2, 1)
        if delta > 0:
            eps_q = advanced_composition_epsilon_per_query(
                total_eps=eps, k=num_queries, delta_prime=delta
            )
            self._scale = 1.0 / eps_q
        else:
            # Vector of num_queries sensitivity-1 entries -> L1
            # sensitivity num_queries (the paper's Z^2, unordered).
            self._scale = num_queries / eps

        exact = all_pairs_dijkstra(graph, sources=covering, backend=backend)
        self._released: Dict[Tuple[Vertex, Vertex], float] = {}
        for i, y in enumerate(covering):
            for zv in covering[i + 1 :]:
                self._released[(y, zv)] = exact[y][zv] + rng.laplace(
                    self._scale
                )

    @property
    def params(self) -> PrivacyParams:
        """The privacy guarantee of the release."""
        return self._params

    @property
    def graph(self) -> WeightedGraph:
        """The (public-topology) graph the release was computed on."""
        return self._graph

    @property
    def weight_bound(self) -> float:
        """The public bound ``M`` on edge weights."""
        return self._weight_bound

    @property
    def k(self) -> int:
        """The covering radius in hops."""
        return self._k

    @property
    def covering(self) -> List[Vertex]:
        """The covering set ``Z``."""
        return list(self._covering)

    @property
    def covering_size(self) -> int:
        """``|Z|`` — Lemma 4.4 guarantees ``<= V/(k+1)`` for the default
        construction."""
        return len(self._covering)

    @property
    def noise_scale(self) -> float:
        """The Laplace scale added to each covering-pair distance."""
        return self._scale

    def assigned_covering_vertex(self, v: Vertex) -> Vertex:
        """``z(v)``: the covering vertex assigned to ``v`` (step 2)."""
        if v not in self._assignment:
            raise VertexNotFoundError(v)
        return self._assignment[v]

    def covering_distance(self, y: Vertex, z: Vertex) -> float:
        """The released noisy distance ``a_{y,z}`` between two covering
        vertices."""
        if y == z:
            return 0.0
        if (y, z) in self._released:
            return self._released[(y, z)]
        if (z, y) in self._released:
            return self._released[(z, y)]
        raise GraphError(
            f"({y!r}, {z!r}) is not a covering pair of this release"
        )

    def distance(self, u: Vertex, v: Vertex) -> float:
        """The approximate distance ``a_{z(u), z(v)}`` (step 3).

        Error sources, per Theorem 4.5/4.6: at most ``2kM`` from the
        detour through covering vertices plus the Laplace noise on the
        released pair.
        """
        zu = self.assigned_covering_vertex(u)
        zv = self.assigned_covering_vertex(v)
        return self.covering_distance(zu, zv)

    def all_released(self) -> Dict[Tuple[Vertex, Vertex], float]:
        """All released covering-pair distances."""
        return dict(self._released)


def release_bounded_weight(
    graph: WeightedGraph,
    weight_bound: float,
    eps: float,
    rng: Rng,
    delta: float = 0.0,
    k: int | None = None,
    covering: List[Vertex] | None = None,
    backend: str | None = None,
) -> BoundedWeightRelease:
    """Run Algorithm 2 (Theorems 4.3/4.5/4.6) on a bounded-weight
    graph."""
    return BoundedWeightRelease(
        graph,
        weight_bound,
        eps,
        rng,
        delta=delta,
        k=k,
        covering=covering,
        backend=backend,
    )


def release_grid_bounded_weight(
    graph: WeightedGraph,
    rows: int,
    cols: int,
    weight_bound: float,
    eps: float,
    rng: Rng,
    delta: float = 0.0,
) -> BoundedWeightRelease:
    """Theorem 4.7: Algorithm 2 on the ``rows x cols`` grid with the
    explicit lattice covering of spacing ``V^(1/3)``.

    The covering has size about ``V^(1/3)`` and radius ``2 V^(1/3)``,
    giving per-distance error
    ``V^(1/3) * O(M + (1/eps) log(V/gamma) sqrt(log 1/delta))``.
    """
    v = rows * cols
    if graph.num_vertices != v:
        raise GraphError(
            f"graph has {graph.num_vertices} vertices, expected "
            f"{rows} x {cols} = {v}"
        )
    spacing = max(1, round(v ** (1.0 / 3.0)))
    covering = grid_covering(rows, cols, spacing)
    k = 2 * spacing
    if not is_k_covering(graph, covering, k):
        raise GraphError(
            "lattice covering is not valid for this graph; pass the grid "
            "produced by repro.graphs.generators.grid_graph"
        )
    return BoundedWeightRelease(
        graph,
        weight_bound,
        eps,
        rng,
        delta=delta,
        k=k,
        covering=covering,
    )
