"""Additive-error metrics (Definitions 2.3 and 2.4).

* Distance error (Definition 2.4): ``|released - d_w(x, y)|``.
* Path error (Definition 2.3): ``w(P) - d_w(x, y)`` — the released
  path's true weight minus the true shortest distance; nonnegative by
  optimality of ``d_w``.

Structure errors for Appendix B (spanning tree / matching) follow the
same shape: released structure's true weight minus the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple

import numpy as np

from ..algorithms.shortest_paths import dijkstra_path
from ..graphs.graph import Vertex, WeightedGraph

__all__ = [
    "ErrorSummary",
    "summarize_errors",
    "distance_errors",
    "path_error",
    "path_errors",
]


@dataclass(frozen=True)
class ErrorSummary:
    """Summary statistics of a collection of additive errors."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    maximum: float

    def as_row(self) -> List[float]:
        """The summary as a list (for table rendering)."""
        return [
            self.count,
            self.mean,
            self.median,
            self.p95,
            self.p99,
            self.maximum,
        ]

    @staticmethod
    def headers() -> List[str]:
        """Column headers matching :meth:`as_row`."""
        return ["n", "mean", "median", "p95", "p99", "max"]


def summarize_errors(errors: Iterable[float]) -> ErrorSummary:
    """Summarize a non-empty collection of errors."""
    values = np.asarray(list(errors), dtype=float)
    if values.size == 0:
        raise ValueError("cannot summarize an empty error collection")
    return ErrorSummary(
        count=int(values.size),
        mean=float(values.mean()),
        median=float(np.median(values)),
        p95=float(np.percentile(values, 95)),
        p99=float(np.percentile(values, 99)),
        maximum=float(values.max()),
    )


def distance_errors(
    graph: WeightedGraph,
    pairs: Sequence[Tuple[Vertex, Vertex]],
    released_distance: Callable[[Vertex, Vertex], float],
) -> List[float]:
    """Definition 2.4 errors for a pair workload: the absolute gap
    between each released distance and the exact one."""
    errors = []
    for s, t in pairs:
        _, exact = dijkstra_path(graph, s, t)
        errors.append(abs(released_distance(s, t) - exact))
    return errors


def path_error(
    graph: WeightedGraph, path: Sequence[Vertex]
) -> float:
    """Definition 2.3 error of one released path: its true weight minus
    the true shortest distance between its endpoints."""
    path = list(path)
    true_weight = graph.path_weight(path)
    _, exact = dijkstra_path(graph, path[0], path[-1])
    return true_weight - exact


def path_errors(
    graph: WeightedGraph,
    pairs: Sequence[Tuple[Vertex, Vertex]],
    released_path: Callable[[Vertex, Vertex], Sequence[Vertex]],
) -> List[float]:
    """Definition 2.3 errors for a pair workload."""
    return [path_error(graph, released_path(s, t)) for s, t in pairs]
