"""Plain-text table rendering.

The benchmark harness prints paper-style result tables to stdout (and
EXPERIMENTS.md embeds them); this renderer keeps the output dependency-
free and deterministic.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: object, precision: int = 3) -> str:
    """Format one cell: floats with fixed precision, ints plainly."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6 or (value != 0 and abs(value) < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render a fixed-width table with a separator under the header."""
    string_rows: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    header_row = [str(h) for h in headers]
    for row in string_rows:
        if len(row) != len(header_row):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(header_row)}"
            )
    widths = [
        max(len(header_row[i]), *(len(r[i]) for r in string_rows))
        if string_rows
        else len(header_row[i])
        for i in range(len(header_row))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header_row))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in string_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
