"""Analysis utilities: error metrics, experiment running, and table
rendering for the benchmark harness and EXPERIMENTS.md."""

from .errors import (
    ErrorSummary,
    summarize_errors,
    distance_errors,
    path_error,
)
from .tables import render_table
from .experiments import ExperimentResult, run_trials, sweep

__all__ = [
    "ErrorSummary",
    "summarize_errors",
    "distance_errors",
    "path_error",
    "render_table",
    "ExperimentResult",
    "run_trials",
    "sweep",
]
