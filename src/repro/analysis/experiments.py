"""Experiment running: repeated trials and parameter sweeps.

Every benchmark in ``benchmarks/`` follows the same shape — sweep a
parameter (``V``, ``M``, ``eps``), run several seeded trials per
setting, summarize errors, and print a table next to the paper's
predicted bound.  These helpers implement that shape once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Sequence

from ..rng import Rng
from .errors import ErrorSummary, summarize_errors
from .tables import render_table

__all__ = ["ExperimentResult", "run_trials", "sweep"]


@dataclass
class ExperimentResult:
    """The outcome of one experiment setting."""

    setting: Dict[str, Any]
    summary: ErrorSummary
    predicted_bound: float | None = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def within_bound(self) -> bool | None:
        """Whether the measured max error respects the predicted bound
        (``None`` when no bound was supplied)."""
        if self.predicted_bound is None:
            return None
        return self.summary.maximum <= self.predicted_bound


def run_trials(
    trial: Callable[[Rng], Iterable[float]],
    trials: int,
    seed: int,
) -> List[float]:
    """Run ``trials`` seeded repetitions of a trial function and pool
    the per-trial error collections.

    Each trial receives its own child generator derived from ``seed``,
    so the pooled collection is reproducible yet the trials are
    independent.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    parent = Rng(seed)
    pooled: List[float] = []
    for _ in range(trials):
        pooled.extend(trial(parent.spawn()))
    return pooled


def sweep(
    settings: Sequence[Dict[str, Any]],
    trial_factory: Callable[[Dict[str, Any]], Callable[[Rng], Iterable[float]]],
    trials: int,
    seed: int,
    bound: Callable[[Dict[str, Any]], float] | None = None,
) -> List[ExperimentResult]:
    """Run an experiment across a sequence of parameter settings.

    ``trial_factory(setting)`` builds the per-setting trial function;
    ``bound(setting)`` (optional) computes the paper's predicted error
    bound for that setting.
    """
    results = []
    for setting in settings:
        errors = run_trials(trial_factory(setting), trials, seed)
        results.append(
            ExperimentResult(
                setting=dict(setting),
                summary=summarize_errors(errors),
                predicted_bound=bound(setting) if bound else None,
            )
        )
    return results


def results_table(
    results: Sequence[ExperimentResult],
    setting_keys: Sequence[str],
    title: str | None = None,
) -> str:
    """Render sweep results as a table: one row per setting with the
    error summary and (if present) the predicted bound."""
    headers = list(setting_keys) + ErrorSummary.headers()
    has_bound = any(r.predicted_bound is not None for r in results)
    if has_bound:
        headers += ["bound", "within"]
    rows = []
    for r in results:
        row: List[object] = [r.setting.get(k, "") for k in setting_keys]
        row += r.summary.as_row()
        if has_bound:
            row += [
                r.predicted_bound if r.predicted_bound is not None else "",
                r.within_bound if r.within_bound is not None else "",
            ]
        rows.append(row)
    return render_table(headers, rows, title=title)
