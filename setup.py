"""Setup shim for environments without the wheel package.

``pip install -e .`` requires ``wheel`` for PEP 517 editable installs;
offline environments can instead run ``python setup.py develop``.
"""

from setuptools import setup

setup()
