#!/usr/bin/env python
"""Private distances on hierarchies: a utility-network census.

Scenario: a water utility operates a tree-shaped distribution network
(trees are the natural topology for distribution systems).  Edge
weights are *flow-weighted* maintenance costs derived from per-customer
consumption — private data.  A regulator wants the full matrix of
inter-station "cost distances" published.

This is exactly Section 4.1 of the paper: all-pairs distances on a tree
with polylog error (Theorem 4.2), versus the ~V/eps error any naive
release pays.  The example also shows the Appendix A hub hierarchy on
the trunk line (a path), and validates both against their bounds.

Run with:  python examples/tree_census.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Rng,
    release_path_hierarchy,
    release_synthetic_graph,
    release_tree_all_pairs,
)
from repro.analysis import render_table, summarize_errors
from repro.dp import bounds
from repro.graphs import RootedTree, generators


def main() -> None:
    rng = Rng(seed=2016)
    eps = 1.0

    # ------------------------------------------------------------------
    # The network: a 300-station tree (random topology, costs 1-20).
    # ------------------------------------------------------------------
    n = 300
    tree = generators.random_tree(n, rng)
    tree = generators.assign_random_weights(tree, rng, 1.0, 20.0)
    rooted = RootedTree(tree, 0)
    print(f"network: {n} stations, tree topology, private per-edge costs")

    # ------------------------------------------------------------------
    # Release all-pairs distances two ways and compare.
    # ------------------------------------------------------------------
    smart = release_tree_all_pairs(rooted, eps=eps, rng=rng)
    naive = release_synthetic_graph(tree, eps=eps, rng=rng)

    sample = [(i, j) for i in range(0, n, 23) for j in range(i + 23, n, 23)]
    smart_errors, naive_errors = [], []
    for x, y in sample:
        true = rooted.distance(x, y)
        smart_errors.append(abs(smart.distance(x, y) - true))
        naive_errors.append(
            abs(naive.graph.path_weight(rooted.path(x, y)) - true)
        )
    rows = [
        ["Algorithm 1 + LCA (Thm 4.2)"]
        + [f"{v:.2f}" for v in summarize_errors(smart_errors).as_row()[1:]],
        ["naive noisy graph"]
        + [f"{v:.2f}" for v in summarize_errors(naive_errors).as_row()[1:]],
    ]
    print()
    print(
        render_table(
            ["mechanism", "mean", "median", "p95", "p99", "max"],
            rows,
            title=f"all-pairs cost-distance error over {len(sample)} pairs, eps={eps}",
        )
    )
    print(
        "  guaranteed simultaneous bounds: "
        f"Thm 4.2 = {bounds.tree_all_pairs_error(n, eps, 0.05):.0f}, "
        f"naive = {bounds.synthetic_graph_distance_error(n, n - 1, eps, 0.05):.0f}"
    )

    # ------------------------------------------------------------------
    # The trunk line: the root-to-deepest-station path, released with
    # the Appendix A hub hierarchy.
    # ------------------------------------------------------------------
    deepest = max(tree.vertices(), key=rooted.depth)
    trunk_vertices = rooted.path(0, deepest)
    trunk = tree.subgraph(trunk_vertices)
    hierarchy = release_path_hierarchy(trunk, eps=eps, rng=rng)
    errs = []
    for v in trunk_vertices:
        true = rooted.distance(0, v)
        errs.append(abs(hierarchy.distance(0, v) - true))
    print(
        f"\ntrunk line ({len(trunk_vertices)} stations, Appendix A "
        f"hierarchy): mean error {np.mean(errs):.2f}, "
        f"max {np.max(errs):.2f}, levels {hierarchy.num_levels}"
    )

    print(
        "\nboth releases are eps-DP in the edge-weight model; every "
        "query above is post-processing of a single release."
    )


if __name__ == "__main__":
    main()
