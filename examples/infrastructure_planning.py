#!/usr/bin/env python
"""Appendix B in action: private infrastructure planning.

Scenario: a regional agency plans (a) a backbone fiber network — a
spanning tree over candidate links — and (b) a pairing of depots for a
mutual-backup scheme — a perfect matching.  Link costs derive from
privately negotiated right-of-way prices, so the released *structures*
must be differentially private in the edge-weight model.

This exercises both Appendix B mechanisms end to end:

* Theorem B.3: the released spanning tree costs at most
  ``2(V-1)/eps · log(E/gamma)`` more than the optimum;
* Theorem B.6: the released perfect matching costs at most
  ``(V/eps) · log(E/gamma)`` more than the optimum;

and compares against the Theorem B.1/B.4 lower-bound floors to show
how close the simple Laplace mechanisms sit to what is achievable.

Run with:  python examples/infrastructure_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import Rng, release_private_matching, release_private_mst
from repro.algorithms import (
    hungarian_min_cost_perfect_matching,
    kruskal_mst,
    matching_weight,
    spanning_tree_weight,
)
from repro.analysis import render_table
from repro.dp import bounds
from repro.graphs import WeightedGraph, generators


def main() -> None:
    rng = Rng(seed=11)
    eps, gamma = 1.0, 0.05

    # ------------------------------------------------------------------
    # (a) Backbone: 60 sites, candidate links from a geometric graph,
    #     per-km right-of-way costs are the private weights.
    # ------------------------------------------------------------------
    sites, _ = generators.random_geometric_graph(60, 0.25, rng)
    cost = {
        (u, v): w * rng.uniform(80.0, 120.0)  # cost per km varies privately
        for u, v, w in sites.edges()
    }
    network = sites.with_weights(cost)
    optimum = spanning_tree_weight(network, kruskal_mst(network))

    release = release_private_mst(network, eps=eps, rng=rng)
    released_cost = release.true_weight(network)
    bound = bounds.mst_error(
        network.num_vertices, network.num_edges, eps, gamma
    )
    print("backbone (Theorem B.3):")
    print(f"  candidate links          : {network.num_edges}")
    print(f"  optimal tree cost        : {optimum:10.1f}")
    print(f"  released tree cost       : {released_cost:10.1f}")
    print(f"  overrun                  : {released_cost - optimum:10.1f}"
          f"   (bound {bound:.1f})")

    # ------------------------------------------------------------------
    # (b) Depot pairing: 16 depots, pairwise transfer costs private.
    # ------------------------------------------------------------------
    depots = WeightedGraph()
    for i in range(16):
        for j in range(16):
            if i < j:
                depots.add_edge(("depot", i), ("depot", j), rng.uniform(5, 50))
    left = [("depot", i) for i in range(16) if i % 2 == 0]
    right = [("depot", i) for i in range(16) if i % 2 == 1]
    # Restrict to a bipartite even/odd pairing policy for the example.
    bipartite = WeightedGraph()
    for a in left:
        for b in right:
            bipartite.add_edge(a, b, depots.weight(a, b))
    optimum_matching = matching_weight(
        bipartite, hungarian_min_cost_perfect_matching(bipartite)
    )
    pairing = release_private_matching(
        bipartite, eps=eps, rng=rng, engine="hungarian"
    )
    released_matching = pairing.true_weight(bipartite)
    matching_bound = bounds.matching_error(
        bipartite.num_vertices, bipartite.num_edges, eps, gamma
    )
    print("\ndepot pairing (Theorem B.6):")
    rows = [
        [f"{u[1]}<->{v[1]}", f"{bipartite.weight(u, v):.1f}"]
        for u, v in pairing.matching_edges
    ]
    print(render_table(["pair", "cost"], rows))
    print(f"  optimal pairing cost     : {optimum_matching:10.1f}")
    print(f"  released pairing cost    : {released_matching:10.1f}")
    print(
        f"  overrun                  : "
        f"{released_matching - optimum_matching:10.1f}"
        f"   (bound {matching_bound:.1f})"
    )

    # ------------------------------------------------------------------
    # Context: the lower-bound floors say some overrun is unavoidable.
    # ------------------------------------------------------------------
    mst_floor = bounds.mst_lower_bound(network.num_vertices, eps, 0.0)
    matching_floor = bounds.matching_lower_bound(
        bipartite.num_vertices, eps, 0.0
    )
    print(
        "\nlower bounds (Thms B.1/B.4): any eps=1 mechanism must incur "
        f"expected overrun >= {mst_floor:.1f} (tree, worst case) and "
        f">= {matching_floor:.1f} (matching, worst case) on hard "
        "instances — the Laplace releases above are within a log factor."
    )


if __name__ == "__main__":
    main()
