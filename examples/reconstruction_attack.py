#!/usr/bin/env python
"""The Section 5.1 reconstruction attack, end to end.

Demonstrates *why* the paper's Omega(V) lower bound holds.  On the
Figure 2 gadget (parallel 0/1-weight edges encoding a secret bitstring):

1. an exact shortest-path server leaks the entire secret — every bit is
   read straight off the returned path;
2. Algorithm 3 at small eps resists the attack — the adversary's guess
   is barely better than coin flips (Lemma 5.3's floor) — but, by the
   same coin, the released path must be long: its expected error is the
   Theorem 5.1 floor alpha ~ 0.49 (V-1);
3. sweeping eps traces the privacy/accuracy frontier between these
   extremes.

Run with:  python examples/reconstruction_attack.py
"""

from __future__ import annotations

import numpy as np

from repro import Rng
from repro.analysis import render_table
from repro.core import lower_bounds as lb
from repro.dp import bounds


def main() -> None:
    rng = Rng(seed=7)
    n = 120  # secret bits; the gadget has V = n + 1 vertices
    gadget = lb.parallel_path_gadget(n)
    secret = rng.bits(n)
    weights = lb.path_weights_from_bits(secret)

    # ------------------------------------------------------------------
    # 1. The non-private server: blatant leak.
    # ------------------------------------------------------------------
    exact_path = lb.exact_gadget_path(gadget, weights)
    guess = lb.decode_path_bits(n, exact_path)
    print(
        "exact server: adversary recovers "
        f"{n - lb.hamming_distance(secret, guess)}/{n} bits "
        "(the full secret) from one path query."
    )

    # ------------------------------------------------------------------
    # 2 & 3. The private server across eps.
    # ------------------------------------------------------------------
    rows = []
    for eps in (0.05, 0.2, 0.5, 1.0, 2.0, 5.0):
        hammings, errors = [], []
        for _ in range(25):
            trial_secret = rng.bits(n)
            trial_weights = lb.path_weights_from_bits(trial_secret)
            keys, _ = lb.private_gadget_path(
                gadget, trial_weights, eps=eps, gamma=0.1, rng=rng.spawn()
            )
            decoded = lb.decode_path_bits(n, keys)
            hammings.append(lb.hamming_distance(trial_secret, decoded))
            concrete = gadget.with_weights(trial_weights)
            errors.append(concrete.path_weight(keys))
        alpha = bounds.reconstruction_lower_bound(n + 1, eps, 0.0)
        rows.append(
            [
                eps,
                f"{np.mean(hammings) / n:.3f}",
                f"{np.mean(errors):.1f}",
                f"{alpha:.1f}",
            ]
        )
    print()
    print(
        render_table(
            [
                "eps",
                "adversary error rate",
                "mean path error",
                "alpha floor (Thm 5.1)",
            ],
            rows,
            title=(
                "the privacy/accuracy frontier on the Figure 2 gadget "
                f"(n = {n} secret bits)"
            ),
        )
    )
    print(
        "\nreading the table: small eps -> adversary near 50% (random "
        "guessing) but path error ~ 0.5 n;\nlarge eps -> accurate paths "
        "but the secret leaks.  No mechanism escapes the trade-off "
        "(Theorem 5.1)."
    )


if __name__ == "__main__":
    main()
