#!/usr/bin/env python
"""Quickstart: the private edge-weight model in five minutes.

Walks through the paper's core workflow:

1. build a public topology with private weights,
2. release private shortest paths (Algorithm 3) — one budget, all pairs,
3. release a private distance estimate (Laplace mechanism),
4. release all-pairs distances on a tree (Algorithm 1),
5. check everything against the paper's error bounds.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Rng,
    private_distance,
    release_private_paths,
    release_tree_all_pairs,
)
from repro.algorithms import dijkstra_path
from repro.dp import bounds
from repro.graphs import RootedTree, generators


def main() -> None:
    rng = Rng(seed=0)

    # ------------------------------------------------------------------
    # 1. A city grid.  The *topology* is public (it is just the map);
    #    the *weights* (travel times) are private.
    # ------------------------------------------------------------------
    graph = generators.grid_graph(8, 8)
    graph = generators.assign_random_weights(graph, rng, low=1.0, high=5.0)
    print(f"city: {graph.num_vertices} intersections, {graph.num_edges} roads")

    # ------------------------------------------------------------------
    # 2. Algorithm 3: release private shortest paths.  A single
    #    eps-DP release answers every pair.
    # ------------------------------------------------------------------
    eps, gamma = 1.0, 0.05
    release = release_private_paths(graph, eps=eps, gamma=gamma, rng=rng)
    source, target = (0, 0), (7, 7)
    path = release.path(source, target)
    true_path, true_distance = dijkstra_path(graph, source, target)
    error = graph.path_weight(path) - true_distance
    bound = bounds.shortest_path_error(
        len(true_path) - 1, graph.num_edges, eps, gamma
    )
    print(f"\nprivate route {source} -> {target}: {len(path) - 1} hops")
    print(f"  true shortest distance : {true_distance:.2f}")
    print(f"  released path's length : {graph.path_weight(path):.2f}")
    print(f"  additive error         : {error:.2f}  (Thm 5.5 bound {bound:.1f})")

    # ------------------------------------------------------------------
    # 3. A single private distance estimate: Laplace with scale 1/eps.
    # ------------------------------------------------------------------
    estimate = private_distance(graph, source, target, eps=1.0, rng=rng)
    print(f"\nprivate distance estimate  : {estimate:.2f} (true {true_distance:.2f})")

    # ------------------------------------------------------------------
    # 4. Trees: all-pairs distances with polylog error (Theorem 4.2).
    # ------------------------------------------------------------------
    tree = generators.random_tree(100, rng)
    tree = generators.assign_random_weights(tree, rng, 1.0, 10.0)
    rooted = RootedTree(tree, 0)
    tree_release = release_tree_all_pairs(rooted, eps=1.0, rng=rng)
    x, y = 10, 90
    print(
        f"\ntree distance d({x},{y})     : released "
        f"{tree_release.distance(x, y):.2f}, true {rooted.distance(x, y):.2f}"
    )
    print(
        "  Thm 4.2 simultaneous bound:"
        f" {bounds.tree_all_pairs_error(100, 1.0, 0.05):.1f}"
        "  (polylog in V: overtakes the naive ~(V/eps) log(E) baseline"
        " bound as V grows)"
    )

    print("\nEverything above consumed eps = 1.0 per release, delta = 0.")


if __name__ == "__main__":
    main()
