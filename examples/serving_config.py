#!/usr/bin/env python
"""Declarative serving: one config document, one factory, rich answers.

Walks the redesigned serving API end to end:

1. describe a deployment as a ``ServingConfig`` and round-trip it
   through JSON (it is a public manifest — mechanism names, budgets,
   seeds — never private data),
2. stand the server up with ``serve(graph, config, rng)``,
3. ask for rich ``Estimate`` answers — value, effective noise scale,
   Laplace confidence interval — instead of bare floats,
4. swap the same workload onto a sharded deployment by editing one
   config field (the consumer code does not change: both servers
   speak the ``DistanceServer`` protocol),
5. inspect the mechanism registry the config names come from.

Run with:  python examples/serving_config.py
"""

from __future__ import annotations

from repro import (
    Rng,
    ServingConfig,
    available_mechanisms,
    get_mechanism,
    serve,
)
from repro.workloads import grid_road_network, uniform_pairs


def main() -> None:
    rng = Rng(seed=7)

    # ------------------------------------------------------------------
    # 1. The deployment manifest.  Every field is public; the JSON
    #    round trip is exact, so configs can be shipped and diffed.
    # ------------------------------------------------------------------
    config = ServingConfig(mechanism="auto", eps=1.0, cache_size=10_000)
    config = ServingConfig.from_json(config.to_json())
    print(f"deployment: {config}")

    # ------------------------------------------------------------------
    # 2. A 12x12 city grid with private travel times, served.
    # ------------------------------------------------------------------
    city = grid_road_network(12, 12, rng)
    service = serve(city.graph, config, rng)
    print(
        f"serving with {service.mechanism!r} "
        f"(one {service.epoch_budget} spend per epoch)"
    )

    # ------------------------------------------------------------------
    # 3. Rich estimates: the accuracy story travels with the answer.
    # ------------------------------------------------------------------
    estimate = service.estimate((0, 0), (11, 11))
    lo, hi = estimate.confidence_interval(0.90)
    print(
        f"corner-to-corner ETA: {estimate.value:.1f} min, "
        f"90% interval [{lo:.1f}, {hi:.1f}] "
        f"(Laplace scale {estimate.noise_scale:g})"
    )

    riders = uniform_pairs(city.graph, 5_000, rng)
    report = service.query_batch(riders)
    print(
        f"served {report.num_queries} rider queries "
        f"({report.num_unique} unique) from one synopsis; "
        f"ledger spends: {len(service.ledger.records())}"
    )

    # ------------------------------------------------------------------
    # 4. Scale out by editing the manifest, not the consumer.
    # ------------------------------------------------------------------
    sharded = serve(
        city.graph,
        config.with_overrides(shards=4, mechanism="hub-set"),
        rng,
    )
    estimate = sharded.estimate((0, 0), (11, 11))
    print(
        f"sharded ({sharded.mechanism}): same call surface, "
        f"value {estimate.value:.1f}, "
        f"composed scale {estimate.noise_scale:g}"
    )
    print(
        f"shared stats: {service.stats.num_queries} vs "
        f"{sharded.stats.num_queries} queries served"
    )

    # ------------------------------------------------------------------
    # 5. The registry behind the config's mechanism names.
    # ------------------------------------------------------------------
    print(f"registered mechanisms: {', '.join(available_mechanisms())}")
    hub = get_mechanism("hub-set")
    from repro.mechanisms import MechanismParams

    params = MechanismParams(budget=config.budget)
    print(
        "hub-set predicted per-entry noise scale on this city: "
        f"{hub.predicted_noise_scale(city.graph, params):.0f}"
    )


if __name__ == "__main__":
    main()
