#!/usr/bin/env python
"""A privacy-preserving navigation service (the paper's Section 1.1
motivation).

Scenario: a navigation provider holds a public road map and *private*
congestion data aggregated from user GPS traces (each user shifts the
travel times by at most 1 in L1 — exactly Definition 2.1's neighboring
relation).  A rush-hour hot-spot forms downtown.  The provider must:

* serve routes that avoid the congestion reasonably well,
* answer travel-time estimates,
* never reveal (beyond the DP guarantee) where the hot-spot is,
* account for the total privacy budget across both products.

Run with:  python examples/navigation_service.py
"""

from __future__ import annotations

from repro import (
    Accountant,
    PrivacyParams,
    Rng,
    private_distance,
    release_private_paths,
)
from repro.algorithms import dijkstra_path
from repro.analysis import path_error, render_table, summarize_errors
from repro.workloads import (
    grid_road_network,
    rush_hour_scenario,
    uniform_pairs,
)


def main() -> None:
    rng = Rng(seed=42)

    # ------------------------------------------------------------------
    # The city: a 12x12 street grid, ~2 minutes per block at free flow.
    # Rush hour multiplies travel times ~4x inside a downtown disc.
    # ------------------------------------------------------------------
    network = grid_road_network(12, 12, rng, block_minutes=2.0)
    congested = rush_hour_scenario(
        network, rng, center=(5.5, 5.5), hot_radius=3.0, slowdown=4.0
    )
    print(
        f"city: {congested.num_vertices} intersections, "
        f"{congested.num_edges} road segments; rush hour downtown"
    )

    # ------------------------------------------------------------------
    # Budgeting: the service promises (1.5, 0)-DP per rush-hour window
    # and splits it between the routing product and the ETA product.
    # ------------------------------------------------------------------
    accountant = Accountant(PrivacyParams(1.5))

    routing_budget = PrivacyParams(1.0)
    accountant.spend(routing_budget, label="routing release")
    routes = release_private_paths(
        congested, eps=routing_budget.eps, gamma=0.05, rng=rng
    )

    # The ETA product answers up to 8 fresh travel-time queries per
    # window, each a sensitivity-1 Laplace query (Section 4's opener),
    # under basic composition: 8 x 0.0625 = 0.5 total.
    eta_queries = 8
    eta_budget = PrivacyParams(0.5)
    accountant.spend(eta_budget, label=f"{eta_queries} ETA queries")
    eta_eps_per_query = eta_budget.eps / eta_queries
    print(f"budget after releases: {accountant!r}")

    # ------------------------------------------------------------------
    # Serve 8 rider queries from the two releases (pure
    # post-processing — no further privacy cost, ever).
    # ------------------------------------------------------------------
    riders = uniform_pairs(congested, 8, rng)
    rows = []
    errors = []
    for s, t in riders:
        route = routes.path(s, t)
        _, true_time = dijkstra_path(congested, s, t)
        served_time = congested.path_weight(route)
        eta = private_distance(
            congested, s, t, eps=eta_eps_per_query, rng=rng
        )
        errors.append(served_time - true_time)
        rows.append(
            [
                f"{s}->{t}",
                len(route) - 1,
                f"{true_time:.1f}",
                f"{served_time:.1f}",
                f"{eta:.1f}",
            ]
        )
    print()
    print(
        render_table(
            ["rider", "hops", "optimal min", "served min", "ETA est"],
            rows,
            title="rush-hour queries (served from the private releases)",
        )
    )
    summary = summarize_errors(errors)
    print(
        f"\nrouting regret vs optimum: mean {summary.mean:.2f} min, "
        f"worst {summary.maximum:.2f} min across riders"
    )

    # ------------------------------------------------------------------
    # What an adversary sees: only the noised releases.  Re-running the
    # whole day with a different rider's data (a neighboring weight
    # function) changes each release's distribution by at most e^eps.
    # ------------------------------------------------------------------
    print(
        "\nprivacy: routing is "
        f"{routes.params}; each ETA query is {eta_eps_per_query:g}-DP; "
        f"total {accountant.spent} of {accountant.budget} budget spent."
    )


if __name__ == "__main__":
    main()
