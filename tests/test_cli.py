"""Unit tests for the command-line interface (:mod:`repro.cli`)."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.graphs import generators
from repro.graphs.io import graph_from_json, save_graph


@pytest.fixture
def grid_file(tmp_path):
    graph = generators.grid_graph(4, 4)
    path = tmp_path / "grid.json"
    save_graph(graph, path)
    return path


@pytest.fixture
def tree_file(tmp_path, rng):
    tree = generators.random_tree(12, rng)
    path = tmp_path / "tree.json"
    save_graph(tree, path)
    return path


@pytest.fixture
def edge_list_file(tmp_path):
    path = tmp_path / "graph.txt"
    path.write_text("0 1 2.0\n1 2 3.0\n0 2 9.0\n")
    return path


class TestInfo:
    def test_stats(self, grid_file, capsys):
        assert main(["info", "--graph", str(grid_file)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["vertices"] == 16
        assert stats["edges"] == 24
        assert stats["connected"] is True

    def test_edge_list_input(self, edge_list_file, capsys):
        code = main(
            ["info", "--graph", str(edge_list_file), "--edge-list"]
        )
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["vertices"] == 3

    def test_missing_file(self, tmp_path, capsys):
        code = main(["info", "--graph", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestDistance:
    def test_prints_number(self, edge_list_file, capsys):
        code = main(
            [
                "distance",
                "--graph", str(edge_list_file),
                "--edge-list",
                "--eps", "5.0",
                "--source", "0",
                "--target", "2",
                "--seed", "0",
            ]
        )
        assert code == 0
        value = float(capsys.readouterr().out.strip())
        assert 0.0 < value < 15.0

    def test_seed_reproducible(self, edge_list_file, capsys):
        argv = [
            "distance",
            "--graph", str(edge_list_file),
            "--edge-list",
            "--eps", "1.0",
            "--source", "0",
            "--target", "2",
            "--seed", "7",
        ]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second

    def test_tuple_vertices(self, grid_file, capsys):
        code = main(
            [
                "distance",
                "--graph", str(grid_file),
                "--eps", "5.0",
                "--source", "0,0",
                "--target", "3,3",
                "--seed", "1",
            ]
        )
        assert code == 0

    def test_bad_vertex_is_error(self, grid_file, capsys):
        code = main(
            [
                "distance",
                "--graph", str(grid_file),
                "--eps", "1.0",
                "--source", "99,99",
                "--target", "0,0",
            ]
        )
        assert code == 2

    def test_backend_flag_is_bit_reproducible(self, grid_file, capsys):
        # Backends compute bit-identical exact distances, so a fixed
        # seed must print the same released value on each of them.
        outputs = []
        for backend in ("python", "numpy"):
            main(
                [
                    "distance",
                    "--graph", str(grid_file),
                    "--eps", "1.0",
                    "--source", "0,0",
                    "--target", "3,3",
                    "--seed", "3",
                    "--backend", backend,
                ]
            )
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]


class TestPaths:
    def test_writes_released_graph(self, grid_file, tmp_path, capsys):
        out = tmp_path / "released.json"
        code = main(
            [
                "paths",
                "--graph", str(grid_file),
                "--eps", "1.0",
                "--seed", "3",
                "--out", str(out),
                "--source", "0,0",
                "--target", "3,3",
            ]
        )
        assert code == 0
        released = graph_from_json(out.read_text())
        assert released.num_edges == 24
        printed = json.loads(capsys.readouterr().out)
        assert printed["path"][0] == "(0, 0)"
        assert printed["path"][-1] == "(3, 3)"

    def test_stdout_graph_without_out(self, edge_list_file, capsys):
        code = main(
            [
                "paths",
                "--graph", str(edge_list_file),
                "--edge-list",
                "--eps", "1.0",
                "--seed", "3",
            ]
        )
        assert code == 0
        released = graph_from_json(capsys.readouterr().out)
        assert released.num_edges == 3

    def test_no_hop_bias_flag(self, edge_list_file, capsys):
        code = main(
            [
                "paths",
                "--graph", str(edge_list_file),
                "--edge-list",
                "--eps", "1.0",
                "--seed", "3",
                "--no-hop-bias",
            ]
        )
        assert code == 0


class TestSynthetic:
    def test_release(self, grid_file, capsys):
        code = main(
            ["synthetic", "--graph", str(grid_file), "--eps", "1.0", "--seed", "0"]
        )
        assert code == 0
        released = graph_from_json(capsys.readouterr().out)
        assert released.num_vertices == 16


class TestTreeDistances:
    def test_all_from_root(self, tree_file, capsys):
        code = main(
            [
                "tree-distances",
                "--graph", str(tree_file),
                "--eps", "1.0",
                "--root", "0",
                "--seed", "0",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 12

    def test_specific_pairs(self, tree_file, capsys):
        code = main(
            [
                "tree-distances",
                "--graph", str(tree_file),
                "--eps", "1.0",
                "--root", "0",
                "--pairs", "3:7", "1:11",
                "--seed", "0",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("3:7\t")

    def test_non_tree_is_error(self, grid_file, capsys):
        code = main(
            [
                "tree-distances",
                "--graph", str(grid_file),
                "--eps", "1.0",
                "--root", "0,0",
            ]
        )
        assert code == 2


class TestServe:
    def test_answers_and_synopsis(self, grid_file, tmp_path, capsys):
        out = tmp_path / "synopsis.json"
        code = main(
            [
                "serve",
                "--graph", str(grid_file),
                "--eps", "1.0",
                "--seed", "0",
                "--pairs", "0,0:3,3", "1,1:2,2",
                "--synopsis-out", str(out),
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("# mechanism: all-pairs-basic")
        assert len(lines) == 3
        assert lines[1].startswith("0,0:3,3\t")
        from repro.serving import synopsis_from_json

        synopsis = synopsis_from_json(out.read_text())
        served = float(lines[1].split("\t")[1])
        assert synopsis.distance((0, 0), (3, 3)) == pytest.approx(
            served, abs=1e-6
        )

    def test_tree_auto_selected(self, tree_file, capsys):
        code = main(
            [
                "serve",
                "--graph", str(tree_file),
                "--eps", "1.0",
                "--seed", "0",
                "--pairs", "0:5",
            ]
        )
        assert code == 0
        assert "mechanism: tree" in capsys.readouterr().out

    def test_weight_bound_selects_covering(self, grid_file, capsys):
        code = main(
            [
                "serve",
                "--graph", str(grid_file),
                "--eps", "1.0",
                "--weight-bound", "1.0",
                "--seed", "0",
                "--pairs", "0,0:3,3",
            ]
        )
        assert code == 0
        assert "mechanism: bounded-weight" in capsys.readouterr().out

    def test_hub_set_override_and_synopsis(self, grid_file, tmp_path, capsys):
        out = tmp_path / "hub.json"
        code = main(
            [
                "serve",
                "--graph", str(grid_file),
                "--eps", "1.0",
                "--seed", "0",
                "--mechanism", "hub-set",
                "--pairs", "0,0:3,3",
                "--synopsis-out", str(out),
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("# mechanism: hub-set")
        from repro.serving import HubSetSynopsis, synopsis_from_json

        synopsis = synopsis_from_json(out.read_text())
        assert isinstance(synopsis, HubSetSynopsis)
        served = float(lines[1].split("\t")[1])
        assert synopsis.distance((0, 0), (3, 3)) == pytest.approx(
            served, abs=1e-6
        )

    def test_backend_flag_is_bit_reproducible(self, grid_file, capsys):
        # Same seed, different engine backends: the exact sweeps agree
        # bit for bit, so the served answers must be identical.
        outputs = []
        for backend in ("python", "numpy"):
            code = main(
                [
                    "serve",
                    "--graph", str(grid_file),
                    "--eps", "1.0",
                    "--seed", "0",
                    "--pairs", "0,0:3,3",
                    "--backend", backend,
                ]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_unknown_backend_rejected(self, grid_file, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "serve",
                    "--graph", str(grid_file),
                    "--eps", "1.0",
                    "--pairs", "0,0:3,3",
                    "--backend", "cuda",
                ]
            )

    def test_sharded_serving(self, grid_file, capsys):
        code = main(
            [
                "serve",
                "--graph", str(grid_file),
                "--eps", "1.0",
                "--seed", "0",
                "--shards", "2",
                "--pairs", "0,0:3,3", "1,1:2,2",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("# mechanism: sharded(2x")
        assert len(lines) == 3
        assert float(lines[1].split("\t")[1]) >= 0.0

    def test_zero_shards_rejected(self, grid_file, capsys):
        code = main(
            [
                "serve",
                "--graph", str(grid_file),
                "--eps", "1.0",
                "--shards", "0",
                "--pairs", "0,0:3,3",
            ]
        )
        assert code == 2
        assert "at least 1 shard" in capsys.readouterr().err

    def test_sharded_rejects_synopsis_out(self, grid_file, tmp_path, capsys):
        code = main(
            [
                "serve",
                "--graph", str(grid_file),
                "--eps", "1.0",
                "--shards", "2",
                "--pairs", "0,0:3,3",
                "--synopsis-out", str(tmp_path / "s.json"),
            ]
        )
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_config_without_eps_rejected(
        self, grid_file, tmp_path, capsys
    ):
        cfg = tmp_path / "serving.json"
        cfg.write_text(
            json.dumps(
                {"format": "repro-serving-config", "version": 1}
            )
        )
        code = main(
            [
                "serve",
                "--graph", str(grid_file),
                "--config", str(cfg),
                "--pairs", "0,0:3,3",
            ]
        )
        assert code == 2
        assert "--eps" in capsys.readouterr().err


class TestSimulate:
    def test_report_json(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "5",
                "--cols", "5",
                "--eps", "1.0",
                "--epochs", "2",
                "--queries", "50",
                "--seed", "0",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["total_queries"] == 100
        assert report["ledger_spends"] == 2
        assert report["queries_per_second"] > 0

    def test_backend_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "5",
                "--cols", "5",
                "--eps", "1.0",
                "--queries", "25",
                "--seed", "1",
                "--backend", "numpy",
            ]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["total_queries"] == 25

    def test_mechanism_override(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "5",
                "--cols", "5",
                "--eps", "1.0",
                "--queries", "25",
                "--seed", "2",
                "--mechanism", "hub-set",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["mechanism"] == "hub-set"
        assert report["total_queries"] == 25

    def test_unknown_mechanism_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate",
                    "--rows", "4",
                    "--cols", "4",
                    "--eps", "1.0",
                    "--mechanism", "quantum",
                ]
            )

    def test_shards_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "6",
                "--cols", "6",
                "--eps", "1.0",
                "--epochs", "1",
                "--queries", "40",
                "--seed", "3",
                "--shards", "2",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["mechanism"].startswith("sharded(2x")
        assert report["total_queries"] == 40
        # One epoch spends 2 shard tenants + the boundary relay.
        assert report["ledger_spends"] == 3

    def test_config_document(self, tmp_path, capsys):
        from repro import ServingConfig

        cfg = tmp_path / "serving.json"
        cfg.write_text(ServingConfig(eps=1.0).to_json())
        code = main(
            [
                "simulate",
                "--rows", "5",
                "--cols", "5",
                "--config", str(cfg),
                "--queries", "25",
                "--seed", "4",
            ]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["total_queries"] == 25

    def test_config_clashes_with_serving_flags(self, tmp_path, capsys):
        """Regression: flags the config already decides are refused,
        not silently dropped."""
        from repro import ServingConfig

        cfg = tmp_path / "serving.json"
        cfg.write_text(ServingConfig(eps=1.0).to_json())
        code = main(
            [
                "simulate",
                "--rows", "5",
                "--cols", "5",
                "--config", str(cfg),
                "--mechanism", "hub-set",
                "--shards", "2",
                "--seed", "4",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--mechanism" in err and "--shards" in err

    def test_config_without_eps_rejected(self, tmp_path, capsys):
        """Regression: a DP budget is never silently defaulted — a
        config document that omits eps needs an explicit --eps."""
        cfg = tmp_path / "serving.json"
        cfg.write_text(
            json.dumps(
                {
                    "format": "repro-serving-config",
                    "version": 1,
                    "mechanism": "hub-set",
                }
            )
        )
        code = main(
            [
                "simulate",
                "--rows", "5",
                "--cols", "5",
                "--config", str(cfg),
                "--seed", "4",
            ]
        )
        assert code == 2
        assert "--eps" in capsys.readouterr().err


class TestMst:
    def test_release(self, grid_file, tmp_path):
        out = tmp_path / "tree.json"
        code = main(
            [
                "mst",
                "--graph", str(grid_file),
                "--eps", "1.0",
                "--seed", "0",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert len(payload["tree_edges"]) == 15


class TestMetrics:
    def _simulate_snapshot(self, tmp_path, capsys, fmt="json"):
        out = tmp_path / ("metrics." + fmt)
        code = main(
            [
                "simulate",
                "--rows", "5",
                "--cols", "5",
                "--eps", "1.0",
                "--queries", "30",
                "--seed", "0",
                "--metrics-out", str(out),
                "--metrics-format", fmt,
            ]
        )
        assert code == 0
        capsys.readouterr()  # drop the report JSON
        return out

    def test_simulate_reports_latency_quantiles(self, capsys):
        code = main(
            [
                "simulate",
                "--rows", "5",
                "--cols", "5",
                "--eps", "1.0",
                "--queries", "30",
                "--seed", "0",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        latency = report["latency_seconds"]
        assert latency["count"] == 30
        assert 0.0 <= latency["p50"] <= latency["p95"] <= latency["p99"]

    def test_simulate_metrics_out_json(self, tmp_path, capsys):
        out = self._simulate_snapshot(tmp_path, capsys)
        document = json.loads(out.read_text())
        assert document["format"] == "repro-telemetry"
        names = {m["name"] for m in document["metrics"]}
        assert "serving.query.latency" in names
        assert "budget.eps.remaining" in names

    def test_simulate_metrics_out_prometheus(self, tmp_path, capsys):
        out = self._simulate_snapshot(tmp_path, capsys, fmt="prom")
        text = out.read_text()
        assert "# TYPE serving_query_latency summary" in text
        assert 'quantile="0.99"' in text

    def test_metrics_subcommand_round_trip(self, tmp_path, capsys):
        out = self._simulate_snapshot(tmp_path, capsys)
        code = main(["metrics", "--in", str(out), "--format", "prom"])
        assert code == 0
        text = capsys.readouterr().out
        assert "# TYPE budget_eps_remaining gauge" in text

    def test_metrics_tenant_budget_view(self, tmp_path, capsys):
        out = self._simulate_snapshot(tmp_path, capsys)
        code = main(
            ["metrics", "--in", str(out), "--tenant", "distance-service"]
        )
        assert code == 0
        budget = json.loads(capsys.readouterr().out)
        assert budget["tenant"] == "distance-service"
        assert budget["eps_spent"] == pytest.approx(1.0)
        assert budget["eps_remaining"] == pytest.approx(0.0)

    def test_metrics_unknown_tenant_rejected(self, tmp_path, capsys):
        out = self._simulate_snapshot(tmp_path, capsys)
        code = main(["metrics", "--in", str(out), "--tenant", "nope"])
        assert code != 0
        err = capsys.readouterr().err
        assert "nope" in err
        assert "distance-service" in err

    def test_metrics_rejects_non_snapshot_json(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"format": "something-else"}')
        code = main(["metrics", "--in", str(bogus)])
        assert code != 0

    def test_serve_metrics_out(self, grid_file, tmp_path, capsys):
        out = tmp_path / "serve.json"
        code = main(
            [
                "serve",
                "--graph", str(grid_file),
                "--eps", "1.0",
                "--seed", "0",
                "--pairs", "0,0:3,3",
                "--metrics-out", str(out),
            ]
        )
        assert code == 0
        document = json.loads(out.read_text())
        names = {m["name"] for m in document["metrics"]}
        assert "serving.query.latency" in names


class TestAuditCli:
    def _simulate_with_audit(self, tmp_path, capsys, epochs="2"):
        log = tmp_path / "audit.jsonl"
        snap = tmp_path / "metrics.json"
        code = main(
            [
                "simulate",
                "--rows", "5",
                "--cols", "5",
                "--eps", "1.0",
                "--epochs", epochs,
                "--queries", "30",
                "--seed", "0",
                "--audit-log", str(log),
                "--metrics-out", str(snap),
            ]
        )
        assert code == 0
        capsys.readouterr()
        return log, snap

    def test_simulate_writes_verifiable_log(self, tmp_path, capsys):
        log, snap = self._simulate_with_audit(tmp_path, capsys)
        code = main(
            ["audit", "verify", "--log", str(log), "--metrics", str(snap)]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["verified"] is True
        assert summary["gauges_checked"] >= 3
        assert "distance-service" in summary["tenants"]

    def test_audit_tail_prints_json_records(self, tmp_path, capsys):
        log, _ = self._simulate_with_audit(tmp_path, capsys)
        assert main(["audit", "tail", "--log", str(log), "-n", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            record = json.loads(line)
            assert {"seq", "kind", "hash"} <= set(record)

    def test_audit_replay_prints_odometer(self, tmp_path, capsys):
        log, _ = self._simulate_with_audit(tmp_path, capsys)
        assert main(["audit", "replay", "--log", str(log)]) == 0
        odometer = json.loads(capsys.readouterr().out)
        assert odometer["format"] == "repro-audit-odometer"
        state = odometer["tenants"]["distance-service"]
        assert state["lifetime_spends"] == 2  # one build per epoch

    def test_audit_verify_tampered_log_exits_2(self, tmp_path, capsys):
        log, _ = self._simulate_with_audit(tmp_path, capsys)
        lines = log.read_text().splitlines()
        target = next(
            i for i, line in enumerate(lines) if "budget.spend" in line
        )
        lines[target] = lines[target].replace('"eps":1.0', '"eps":0.5')
        log.write_text("\n".join(lines) + "\n")
        assert main(["audit", "verify", "--log", str(log)]) == 2
        assert "hash chain" in capsys.readouterr().err

    def test_audit_verify_missing_file_exits_2(self, tmp_path, capsys):
        code = main(
            ["audit", "verify", "--log", str(tmp_path / "nope.jsonl")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_serve_audit_log_flag(self, grid_file, tmp_path, capsys):
        log = tmp_path / "serve-audit.jsonl"
        code = main(
            [
                "serve",
                "--graph", str(grid_file),
                "--eps", "1.0",
                "--seed", "0",
                "--pairs", "0,0:3,3",
                "--audit-log", str(log),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["audit", "verify", "--log", str(log)]) == 0
        assert json.loads(capsys.readouterr().out)["verified"] is True

    def test_audit_log_allowed_alongside_config(self, tmp_path, capsys):
        config = tmp_path / "serving.json"
        config.write_text(
            json.dumps(
                {
                    "format": "repro-serving-config",
                    "version": 1,
                    "eps": 1.0,
                }
            )
        )
        log = tmp_path / "audit.jsonl"
        code = main(
            [
                "simulate",
                "--rows", "5",
                "--cols", "5",
                "--queries", "20",
                "--seed", "0",
                "--config", str(config),
                "--audit-log", str(log),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["audit", "verify", "--log", str(log)]) == 0
        capsys.readouterr()

    def test_simulate_report_identical_with_audit(self, tmp_path, capsys):
        args = [
            "simulate",
            "--rows", "5",
            "--cols", "5",
            "--eps", "1.0",
            "--queries", "30",
            "--seed", "0",
        ]
        assert main(args) == 0
        plain = json.loads(capsys.readouterr().out)
        log = tmp_path / "audit.jsonl"
        assert main(args + ["--audit-log", str(log)]) == 0
        audited = json.loads(capsys.readouterr().out)
        # Auditing never touches the Rng: every noise-dependent figure
        # is bit-identical.  Wall-clock fields (throughput, latency)
        # legitimately differ between the two runs.
        for key in ("mechanism", "mean_abs_error", "max_abs_error",
                    "ledger_spends", "total_queries"):
            assert audited[key] == plain[key]


class TestReportCli:
    def _snapshot(self, tmp_path, capsys):
        snap = tmp_path / "metrics.json"
        code = main(
            [
                "simulate",
                "--rows", "5",
                "--cols", "5",
                "--eps", "1.0",
                "--queries", "30",
                "--seed", "0",
                "--metrics-out", str(snap),
            ]
        )
        assert code == 0
        capsys.readouterr()
        return snap

    def test_text_report(self, tmp_path, capsys):
        snap = self._snapshot(tmp_path, capsys)
        assert main(["report", "--in", str(snap)]) == 0
        out = capsys.readouterr().out
        assert "== budgets ==" in out
        assert "distance-service" in out
        assert "== query latency ==" in out
        assert "(no rules given)" in out

    def test_json_report(self, tmp_path, capsys):
        snap = self._snapshot(tmp_path, capsys)
        code = main(["report", "--in", str(snap), "--format", "json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert "distance-service" in report["budgets"]
        assert report["budgets"]["distance-service"]["eps_spent"] == 1.0
        assert report["latency"]
        assert report["alerts"] == []

    def test_fired_alert_exits_1(self, tmp_path, capsys):
        snap = self._snapshot(tmp_path, capsys)
        rules = tmp_path / "rules.json"
        rules.write_text(
            json.dumps(
                {
                    "format": "repro-alert-rules",
                    "version": 1,
                    "rules": [
                        {
                            "name": "budget-burn",
                            "kind": "burn-rate",
                            "op": ">=",
                            "value": 0.9,
                            "severity": "critical",
                        }
                    ],
                }
            )
        )
        code = main(
            ["report", "--in", str(snap), "--rules", str(rules)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "[critical] budget-burn" in out

    def test_quiet_rules_exit_0(self, tmp_path, capsys):
        snap = self._snapshot(tmp_path, capsys)
        rules = tmp_path / "rules.json"
        rules.write_text(
            json.dumps(
                {
                    "format": "repro-alert-rules",
                    "version": 1,
                    "rules": [
                        {
                            "name": "impossible",
                            "metric": "serving.queries",
                            "op": ">",
                            "value": 1e12,
                        }
                    ],
                }
            )
        )
        code = main(
            ["report", "--in", str(snap), "--rules", str(rules)]
        )
        assert code == 0
        assert "(none fired)" in capsys.readouterr().out

    def test_bad_rules_document_exits_2(self, tmp_path, capsys):
        snap = self._snapshot(tmp_path, capsys)
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps({"format": "nope"}))
        code = main(
            ["report", "--in", str(snap), "--rules", str(rules)]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestMetricsIo:
    def _snapshot(self, tmp_path, capsys):
        snap = tmp_path / "metrics.json"
        code = main(
            [
                "simulate",
                "--rows", "5",
                "--cols", "5",
                "--eps", "1.0",
                "--queries", "30",
                "--seed", "0",
                "--metrics-out", str(snap),
            ]
        )
        assert code == 0
        capsys.readouterr()
        return snap

    def test_stdin_dash_reads_snapshot(
        self, tmp_path, capsys, monkeypatch
    ):
        snap = self._snapshot(tmp_path, capsys)
        monkeypatch.setattr("sys.stdin", io.StringIO(snap.read_text()))
        code = main(["metrics", "--in", "-", "--format", "prom"])
        assert code == 0
        assert "# TYPE" in capsys.readouterr().out

    def test_stdin_bad_json_names_stdin(self, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("{broken"))
        code = main(["metrics", "--in", "-"])
        assert code == 2
        assert "stdin" in capsys.readouterr().err

    def test_out_writes_file_not_stdout(self, tmp_path, capsys):
        snap = self._snapshot(tmp_path, capsys)
        out = tmp_path / "rendered.prom"
        code = main(
            [
                "metrics",
                "--in", str(snap),
                "--format", "prom",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == ""
        assert "# TYPE serving_query_latency summary" in out.read_text()

    def test_out_json_is_parseable(self, tmp_path, capsys):
        snap = self._snapshot(tmp_path, capsys)
        out = tmp_path / "rendered.json"
        code = main(["metrics", "--in", str(snap), "--out", str(out)])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["format"] == "repro-telemetry"


class TestObservabilityFlags:
    def _simulate(self, extra, capsys):
        args = [
            "simulate",
            "--rows", "5",
            "--cols", "5",
            "--eps", "1.0",
            "--queries", "30",
            "--seed", "0",
        ] + extra
        assert main(args) == 0
        return json.loads(capsys.readouterr().out)

    def test_simulate_writes_all_artifacts(self, tmp_path, capsys):
        profile = tmp_path / "profile.json"
        flight = tmp_path / "flight.json"
        events = tmp_path / "events.jsonl"
        self._simulate(
            [
                "--profile-out", str(profile),
                "--flight-out", str(flight),
                "--flight-threshold", "0.00001",
                "--event-log", str(events),
            ],
            capsys,
        )
        document = json.loads(profile.read_text())
        assert document["format"] == "repro-profile"
        phases = {row["phase"] for row in document["phases"]}
        assert "simulate.run" in phases
        assert "synopsis.build" in phases
        assert document["collapsed"]
        dump = json.loads(flight.read_text())
        assert dump["format"] == "repro-flight"
        assert dump["captured"] >= 1
        from repro.telemetry import read_event_log

        names = {r["event"] for r in read_event_log(events)}
        assert "synopsis.build" in names
        assert "batch.serve" in names

    def test_simulate_report_identical_with_observability(
        self, tmp_path, capsys
    ):
        plain = self._simulate([], capsys)
        observed = self._simulate(
            [
                "--profile-out", str(tmp_path / "p.json"),
                "--flight-out", str(tmp_path / "f.json"),
                "--flight-threshold", "0.00001",
                "--event-log", str(tmp_path / "e.jsonl"),
            ],
            capsys,
        )
        for key in ("mechanism", "mean_abs_error", "max_abs_error",
                    "ledger_spends", "total_queries"):
            assert observed[key] == plain[key]

    def test_serve_profile_and_flight_out(
        self, grid_file, tmp_path, capsys
    ):
        profile = tmp_path / "profile.json"
        flight = tmp_path / "flight.json"
        code = main(
            [
                "serve",
                "--graph", str(grid_file),
                "--eps", "1.0",
                "--seed", "0",
                "--pairs", "0,0:3,3",
                "--profile-out", str(profile),
                "--flight-out", str(flight),
                "--flight-threshold", "0.00001",
            ]
        )
        assert code == 0
        capsys.readouterr()
        phases = {
            row["phase"]
            for row in json.loads(profile.read_text())["phases"]
        }
        assert "serve.run" in phases
        assert "synopsis.build" in phases
        assert json.loads(flight.read_text())["captured"] >= 1


class TestProfileCli:
    def _profile_file(self, tmp_path, capsys):
        profile = tmp_path / "profile.json"
        code = main(
            [
                "simulate",
                "--rows", "5",
                "--cols", "5",
                "--eps", "1.0",
                "--queries", "30",
                "--seed", "0",
                "--profile-out", str(profile),
            ]
        )
        assert code == 0
        capsys.readouterr()
        return profile

    def test_phases_table(self, tmp_path, capsys):
        profile = self._profile_file(tmp_path, capsys)
        assert main(["profile", "--in", str(profile)]) == 0
        out = capsys.readouterr().out
        assert "# profiled wall time" in out
        assert "simulate.run" in out

    def test_check_passes_on_real_run(self, tmp_path, capsys):
        profile = self._profile_file(tmp_path, capsys)
        assert main(["profile", "--in", str(profile), "--check"]) == 0
        capsys.readouterr()

    def test_check_fails_on_inconsistent_attribution(
        self, tmp_path, capsys
    ):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(
            json.dumps(
                {
                    "format": "repro-profile",
                    "version": 1,
                    "total_wall_seconds": 1.0,
                    "phases": [
                        {
                            "phase": "x",
                            "count": 1,
                            "wall_seconds": 1.0,
                            "wall_self_seconds": 2.0,
                            "cpu_seconds": 0.0,
                            "alloc_net_bytes": 0,
                        }
                    ],
                    "samples": 0,
                    "collapsed": "",
                }
            )
        )
        assert main(["profile", "--in", str(bogus), "--check"]) == 1
        assert "profile check failed" in capsys.readouterr().err

    def test_collapsed_output(self, tmp_path, capsys):
        profile = self._profile_file(tmp_path, capsys)
        code = main(
            ["profile", "--in", str(profile), "--format", "collapsed"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out  # non-empty collapsed stacks
        stack, _, count = out.splitlines()[0].rpartition(" ")
        assert int(count) >= 1

    def test_json_round_trip(self, tmp_path, capsys):
        profile = self._profile_file(tmp_path, capsys)
        code = main(
            ["profile", "--in", str(profile), "--format", "json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document == json.loads(profile.read_text())

    def test_rejects_non_profile_document(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"format": "nope"}')
        assert main(["profile", "--in", str(bogus)]) == 2
        assert "error" in capsys.readouterr().err


class TestFlightCli:
    def _flight_file(self, tmp_path, capsys):
        flight = tmp_path / "flight.json"
        code = main(
            [
                "simulate",
                "--rows", "5",
                "--cols", "5",
                "--eps", "1.0",
                "--queries", "30",
                "--seed", "0",
                "--flight-out", str(flight),
                "--flight-threshold", "0.00001",
            ]
        )
        assert code == 0
        capsys.readouterr()
        return flight

    def test_text_summary(self, tmp_path, capsys):
        flight = self._flight_file(tmp_path, capsys)
        assert main(["flight", "--in", str(flight)]) == 0
        out = capsys.readouterr().out
        assert "# considered" in out
        assert "threshold" in out

    def test_record_limit(self, tmp_path, capsys):
        flight = self._flight_file(tmp_path, capsys)
        assert main(["flight", "--in", str(flight), "-n", "1"]) == 0
        out = capsys.readouterr().out
        # One header line plus at most one record line.
        assert len(out.strip().splitlines()) <= 2

    def test_json_format(self, tmp_path, capsys):
        flight = self._flight_file(tmp_path, capsys)
        code = main(
            ["flight", "--in", str(flight), "--format", "json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["format"] == "repro-flight"

    def test_rejects_non_flight_document(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"format": "nope"}')
        assert main(["flight", "--in", str(bogus)]) == 2
        assert "error" in capsys.readouterr().err
