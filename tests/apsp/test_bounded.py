"""Unit tests for :mod:`repro.apsp.bounded` — the hub structure
layered over Algorithm 2's covering."""

from __future__ import annotations

import pytest

from repro import (
    DisconnectedGraphError,
    GraphError,
    Rng,
    VertexNotFoundError,
    WeightError,
)
from repro.algorithms.covering import is_k_covering, nearest_in_set
from repro.algorithms.shortest_paths import all_pairs_dijkstra
from repro.apsp import HubSetBoundedRelease, hub_bounded_optimal_k
from repro.exceptions import PrivacyError
from repro.graphs import generators


class TestOptimalK:
    def test_smaller_than_algorithm2_pure_optimum(self):
        # Algorithm 2's pure optimum is (V^2/(M eps))^{1/3}; the hub
        # inner mechanism's cheaper noise tips the balance to a
        # smaller radius for large V.
        from repro.dp.bounds import bounded_weight_optimal_k_pure

        v, m, eps = 100_000, 1.0, 1.0
        assert hub_bounded_optimal_k(v, m, eps) < (
            bounded_weight_optimal_k_pure(v, m, eps)
        )

    def test_approx_radius_below_pure(self):
        assert hub_bounded_optimal_k(10_000, 1.0, 1.0, delta=1e-6) < (
            hub_bounded_optimal_k(10_000, 1.0, 1.0)
        )

    def test_validation(self):
        with pytest.raises(GraphError):
            hub_bounded_optimal_k(0, 1.0, 1.0)
        with pytest.raises(PrivacyError):
            hub_bounded_optimal_k(10, -1.0, 1.0)
        with pytest.raises(PrivacyError):
            hub_bounded_optimal_k(10, 1.0, 0.0)


class TestRelease:
    def test_preconditions(self, rng):
        graph = generators.grid_graph(4, 4)
        with pytest.raises(PrivacyError):
            HubSetBoundedRelease(graph, -1.0, 1.0, rng)
        heavy = graph.with_weights([5.0] * graph.num_edges)
        with pytest.raises(WeightError):
            HubSetBoundedRelease(heavy, 1.0, 1.0, rng)
        island = generators.grid_graph(3, 3)
        island.add_vertex("island")
        with pytest.raises(DisconnectedGraphError):
            HubSetBoundedRelease(island, 1.0, 1.0, rng)

    def test_assignment_within_k_hops(self, rng):
        graph = generators.grid_graph(6, 6)
        release = HubSetBoundedRelease(graph, 1.0, 1.0, rng, k=3)
        assert is_k_covering(graph, release.covering, release.k)
        hops = nearest_in_set(graph, release.covering)
        for v in graph.vertices():
            z = release.assigned_covering_vertex(v)
            assert hops[v][1] <= release.k
            assert z in release.covering

    def test_same_covering_vertex_answers_zero(self, rng):
        graph = generators.grid_graph(6, 6)
        release = HubSetBoundedRelease(graph, 1.0, 1.0, rng, k=10)
        # Radius 10 covers the whole 6x6 grid with one vertex.
        assert release.covering_size == 1
        assert release.distance((0, 0), (5, 5)) == 0.0

    def test_explicit_covering_validated(self, rng):
        graph = generators.grid_graph(5, 5)
        with pytest.raises(GraphError):
            HubSetBoundedRelease(
                graph, 1.0, 1.0, rng, k=1, covering=[(0, 0)]
            )

    def test_unknown_vertex_raises(self, rng):
        graph = generators.grid_graph(4, 4)
        release = HubSetBoundedRelease(graph, 1.0, 1.0, rng)
        with pytest.raises(VertexNotFoundError):
            release.distance((7, 7), (0, 0))

    def test_non_covering_vertex_rejected_by_exact_accessor(self, rng):
        graph = generators.grid_graph(5, 5)
        release = HubSetBoundedRelease(graph, 1.0, 1.0, rng, k=1)
        z = release.covering[0]
        outside = next(
            v for v in graph.vertices() if v not in release.covering
        )
        with pytest.raises(GraphError):
            release.exact_covering_distance(outside, z)
        with pytest.raises(GraphError):
            release.exact_covering_distance(z, (9, 9))

    def test_deterministic_under_seed(self):
        graph = generators.grid_graph(6, 6)
        a = HubSetBoundedRelease(graph, 1.0, 1.0, Rng(5), k=2)
        b = HubSetBoundedRelease(graph, 1.0, 1.0, Rng(5), k=2)
        assert a.distance((0, 0), (5, 5)) == b.distance((0, 0), (5, 5))
        assert a.hubs == b.hubs

    def test_detour_bounded_by_2km_at_negligible_noise(self):
        # With every covering vertex a hub, the inner structure holds
        # the full covering table, so at eps ~ inf the answer is
        # d(z(u), z(v)) exactly — within 2kM of the truth (Thm 4.5).
        graph = generators.grid_graph(6, 6)
        k, bound = 2, 1.0
        release = HubSetBoundedRelease(
            graph, bound, 1e9, Rng(6), k=k, hub_count=None, ball_size=None
        )
        full = HubSetBoundedRelease(
            graph,
            bound,
            1e9,
            Rng(6),
            k=k,
            hub_count=release.covering_size,
            ball_size=0,
        )
        sweep = all_pairs_dijkstra(graph)
        for s, t in [((0, 0), (5, 5)), ((0, 3), (4, 1)), ((2, 2), (3, 4))]:
            assert abs(full.distance(s, t) - sweep[s][t]) <= (
                2 * k * bound + 1e-3
            )
            # The sampled-hub estimate never undercuts the covering
            # distance by more than the (negligible) noise.
            zu = release.assigned_covering_vertex(s)
            zv = release.assigned_covering_vertex(t)
            if zu != zv:
                assert release.distance(s, t) >= (
                    release.exact_covering_distance(zu, zv) - 1e-3
                )

    def test_released_pair_count_subquadratic_in_covering(self, rng):
        graph = generators.grid_graph(8, 8)
        release = HubSetBoundedRelease(graph, 1.0, 1.0, rng, k=1)
        z = release.covering_size
        assert z > 4  # k=1 forces a real covering
        assert release.released_pair_count <= z * (z - 1) // 2
