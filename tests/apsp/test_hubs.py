"""Unit tests for :mod:`repro.apsp.hubs` — the improved hub-set
all-pairs release."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    DisconnectedGraphError,
    GraphError,
    Rng,
    VertexNotFoundError,
)
from repro.algorithms.shortest_paths import all_pairs_dijkstra
from repro.apsp import (
    HubSetRelease,
    default_ball_size,
    default_hub_count,
    hub_noise_scale,
    hub_pair_count_bound,
    predicted_hub_scale,
)
from repro.graphs import generators


class TestDefaults:
    def test_sqrt_sizing(self):
        assert default_hub_count(1024) == 32
        assert default_ball_size(1024) == 32
        assert default_hub_count(1) == 1
        assert default_ball_size(1) == 0

    def test_ball_never_exceeds_other_sites(self):
        assert default_ball_size(2) == 1
        assert default_hub_count(2) <= 2

    def test_invalid_site_count_rejected(self):
        with pytest.raises(GraphError):
            default_hub_count(0)
        with pytest.raises(GraphError):
            default_ball_size(0)

    def test_pair_count_bound_is_subquadratic(self):
        n = 4096
        assert hub_pair_count_bound(n) < n * (n - 1) // 2
        # ~2 V^{3/2} for the sqrt defaults.
        assert hub_pair_count_bound(n) < 3 * n * math.sqrt(n)


class TestAccounting:
    def test_pure_scale_is_pairs_over_eps(self):
        assert hub_noise_scale(100, eps=0.5) == 200.0

    def test_advanced_scale_beats_pure_on_large_counts(self):
        q = 50_000
        assert hub_noise_scale(q, 1.0, delta=1e-6) < hub_noise_scale(q, 1.0)

    def test_release_pair_count_within_bound(self, rng):
        graph = generators.grid_graph(8, 8)
        release = HubSetRelease(graph, 1.0, rng)
        assert 0 < release.released_pair_count <= hub_pair_count_bound(64)
        assert release.noise_scale == release.released_pair_count / 1.0

    def test_predicted_scale_matches_released_regime(self):
        # The selection-time prediction is an upper bound on what a
        # release actually pays (ball pairs deduplicate).
        graph = generators.grid_graph(8, 8)
        release = HubSetRelease(graph, 1.0, Rng(0))
        assert release.noise_scale <= predicted_hub_scale(64, 1.0)


class TestRelease:
    def test_symmetric_and_zero_on_diagonal(self, rng):
        graph = generators.grid_graph(6, 6)
        release = HubSetRelease(graph, 1.0, rng)
        assert release.distance((0, 0), (5, 5)) == release.distance(
            (5, 5), (0, 0)
        )
        assert release.distance((2, 3), (2, 3)) == 0.0

    def test_estimates_clamped_at_zero(self, rng):
        # Tiny eps drives the noise far negative; post-processing
        # clamps the released estimate at 0.
        graph = generators.grid_graph(5, 5)
        release = HubSetRelease(graph, 1e-3, rng)
        for target in [(4, 4), (0, 3), (2, 2)]:
            assert release.distance((0, 0), target) >= 0.0

    def test_deterministic_under_seed(self):
        graph = generators.grid_graph(6, 6)
        a = HubSetRelease(graph, 1.0, Rng(9))
        b = HubSetRelease(graph, 1.0, Rng(9))
        for pair in [((0, 0), (5, 5)), ((1, 2), (4, 0))]:
            assert a.distance(*pair) == b.distance(*pair)
        assert a.hubs == b.hubs

    def test_unknown_vertex_raises(self, rng):
        graph = generators.grid_graph(4, 4)
        release = HubSetRelease(graph, 1.0, rng)
        with pytest.raises(VertexNotFoundError):
            release.distance((9, 9), (0, 0))

    def test_disconnected_rejected(self, rng):
        graph = generators.grid_graph(3, 3)
        graph.add_vertex("island")
        with pytest.raises(DisconnectedGraphError):
            HubSetRelease(graph, 1.0, rng)

    def test_exact_distance_matches_dijkstra(self, rng):
        graph = generators.assign_random_weights(
            generators.grid_graph(5, 5), rng, low=0.5, high=2.0
        )
        release = HubSetRelease(graph, 1.0, rng)
        sweep = all_pairs_dijkstra(graph)
        for s, t in [((0, 0), (4, 4)), ((1, 3), (3, 0))]:
            assert release.exact_distance(s, t) == sweep[s][t]

    def test_hub_and_ball_overrides(self, rng):
        graph = generators.grid_graph(5, 5)
        release = HubSetRelease(graph, 1.0, rng, hub_count=5, ball_size=3)
        assert release.hub_count == 5
        with pytest.raises(GraphError):
            HubSetRelease(graph, 1.0, rng, hub_count=0)
        with pytest.raises(GraphError):
            HubSetRelease(graph, 1.0, rng, ball_size=25)

    def test_hub_self_distance_released_as_zero(self, rng):
        graph = generators.grid_graph(5, 5)
        release = HubSetRelease(graph, 1.0, rng)
        structure = release.structure
        for row, pos in enumerate(structure.hub_positions):
            assert structure.matrix[row, int(pos)] == 0.0

    def test_hub_hub_entries_symmetrized(self, rng):
        # One released value per hub pair: mirror cells are copies.
        graph = generators.grid_graph(6, 6)
        release = HubSetRelease(graph, 1.0, rng)
        structure = release.structure
        hubs = structure.hub_positions
        for i in range(len(hubs)):
            for j in range(i + 1, len(hubs)):
                assert (
                    structure.matrix[i, int(hubs[j])]
                    == structure.matrix[j, int(hubs[i])]
                )


class TestLowNoiseFidelity:
    """With eps enormous the noise vanishes, exposing the covering
    structure: relays never undercut the truth, and pairs inside a
    local ball (or with a hub on the path) are answered exactly."""

    EPS = 1e9
    TOL = 1e-3

    def test_estimates_never_far_below_truth(self):
        graph = generators.grid_graph(6, 6)
        release = HubSetRelease(graph, self.EPS, Rng(1))
        sweep = all_pairs_dijkstra(graph)
        for s in graph.vertices():
            for t in graph.vertices():
                if s == t:
                    continue
                # Every relay sum and ball entry is >= the true
                # distance up to the (negligible) noise.
                assert release.distance(s, t) >= sweep[s][t] - self.TOL

    def test_path_graph_answers_exactly(self):
        # On a path, every hub between the endpoints lies on the
        # shortest path, and adjacent pairs fall in each other's ball,
        # so the hub estimate recovers the truth for covered pairs.
        graph = generators.path_graph(30)
        release = HubSetRelease(graph, self.EPS, Rng(2))
        for i in range(29):
            assert release.distance(i, i + 1) == pytest.approx(
                1.0, abs=self.TOL
            )
        lo, hi = min(release.hubs), max(release.hubs)
        # Endpoints bracketing all hubs relay through one exactly.
        assert release.distance(lo, hi) == pytest.approx(
            float(hi - lo), abs=self.TOL
        )

    def test_ball_refinement_beats_relay_for_near_pairs(self):
        # A 2x20 ladder: the sampled hubs are far from most rungs, so
        # nearby pairs would pay a large relay detour; the local ball
        # answers them (near-)exactly instead.
        graph = generators.grid_graph(2, 20)
        release = HubSetRelease(
            graph, self.EPS, Rng(3), hub_count=2, ball_size=6
        )
        errors = [
            abs(release.distance((0, c), (1, c)) - 1.0)
            for c in range(20)
        ]
        assert np.median(errors) < self.TOL
