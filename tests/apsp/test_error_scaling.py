"""Empirical error-scaling regression: the hub-set mechanism's error
must grow sublinearly in V while the basic baseline's grows (at least)
linearly.

This is the ISSUE's ladder test: on sparse graphs of V in
{64, 256, 1024} at eps = 1, the basic all-pairs release pays noise
scale ``V(V-1)/2 / eps`` (superlinear growth), while the hub-set
release with advanced composition pays ``~V^{3/4} polylog`` — so the
ratio of mean absolute errors across a 16x vertex-count spread must
stay below 16x for hubs and reach at least 16x for the baseline.
"""

from __future__ import annotations

import pytest

from repro import AllPairsBasicRelease, Rng
from repro.apsp import HubSetRelease
from repro.graphs import generators
from repro.workloads import uniform_pairs

LADDER = [64, 256, 1024]
EPS = 1.0
DELTA = 1e-6  # hub release uses the advanced-composition regime
SAMPLES = 250
SEED = 20220406  # arXiv:2204.02335 v1 submission date


def _sparse_graph(n: int, rng: Rng):
    return generators.erdos_renyi_graph(n, 2.0 / n, rng)


def _mean_abs_error(release, exact, pairs) -> float:
    errors = [
        abs(release.distance(s, t) - exact(s, t)) for s, t in pairs
    ]
    return sum(errors) / len(errors)


@pytest.fixture(scope="module")
def ladder_errors():
    basic, hub = {}, {}
    for i, n in enumerate(LADDER):
        rng = Rng(SEED + i)
        graph = _sparse_graph(n, rng)
        pairs = uniform_pairs(graph, SAMPLES, rng)
        basic_release = AllPairsBasicRelease(graph, EPS, rng)
        hub_release = HubSetRelease(graph, EPS, rng, delta=DELTA)
        basic[n] = _mean_abs_error(
            basic_release, basic_release.exact_distance, pairs
        )
        hub[n] = _mean_abs_error(
            hub_release, hub_release.exact_distance, pairs
        )
    return basic, hub


def test_hub_beats_basic_on_every_rung(ladder_errors):
    basic, hub = ladder_errors
    for n in LADDER:
        assert hub[n] < basic[n], (
            f"hub-set MAE {hub[n]:.1f} not below basic {basic[n]:.1f} "
            f"at V={n}"
        )


def test_basic_error_grows_at_least_linearly(ladder_errors):
    basic, _ = ladder_errors
    spread = LADDER[-1] / LADDER[0]
    assert basic[LADDER[-1]] / basic[LADDER[0]] >= spread


def test_hub_error_grows_sublinearly(ladder_errors):
    _, hub = ladder_errors
    spread = LADDER[-1] / LADDER[0]
    assert hub[LADDER[-1]] / hub[LADDER[0]] < spread


def test_intermediate_rung_is_monotone_in_mechanism_gap(ladder_errors):
    # The hub advantage must widen as V grows: the MAE ratio
    # basic/hub at V=1024 exceeds the ratio at V=64.
    basic, hub = ladder_errors
    assert (
        basic[LADDER[-1]] / hub[LADDER[-1]]
        > basic[LADDER[0]] / hub[LADDER[0]]
    )
