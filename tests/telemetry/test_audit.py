"""Unit tests for :mod:`repro.telemetry.audit` — the hash-chained,
fail-closed privacy audit log and its replay/verification surface."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import AuditError, ReproError, TelemetryError
from repro.telemetry import Telemetry
from repro.telemetry.audit import (
    AUDIT_FORMAT,
    AUDIT_VERSION,
    GENESIS_HASH,
    AuditLog,
    NULL_AUDIT,
    NullAuditLog,
    _chain_hash,
    read_audit_log,
    replay_odometer,
    validate_records,
    verify_against_snapshot,
    verify_audit_log,
)


def _rechain(records: list) -> list:
    """Rebuild a record list's hash chain (simulates a *clever*
    tamperer who fixes the hashes after editing)."""
    prev = GENESIS_HASH
    out = []
    for rec in records:
        rec = dict(rec)
        rec["hash"] = _chain_hash(prev, rec)
        prev = rec["hash"]
        out.append(rec)
    return out


def _spend(
    log: AuditLog,
    tenant: str = "t",
    epoch: int = 0,
    eps: float = 0.25,
    spent_eps: float = 0.25,
    budget_eps: float = 1.0,
) -> None:
    log.record(
        "budget.spend",
        epoch=epoch,
        tenant=tenant,
        label="test spend",
        eps=eps,
        delta=0.0,
        spent_eps=spent_eps,
        spent_delta=0.0,
        remaining_eps=budget_eps - spent_eps,
        remaining_delta=0.0,
        budget_eps=budget_eps,
        budget_delta=0.0,
    )


class TestAuditLog:
    def test_header_record_first(self):
        log = AuditLog()
        records = log.records()
        assert len(records) == 1
        head = records[0]
        assert head["kind"] == "audit.open"
        assert head["seq"] == 0
        assert head["payload"] == {
            "format": AUDIT_FORMAT,
            "version": AUDIT_VERSION,
        }

    def test_chain_and_monotonic_seq(self):
        log = AuditLog()
        log.record("a", epoch=0, tenant="x", value=1)
        log.record("b", epoch=1, tenant="y", value=2)
        records = log.records()
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert validate_records(records) == records
        assert log.head_hash == records[-1]["hash"]
        assert log.seq == 3

    def test_payloads_coerced_json_safe(self):
        log = AuditLog()
        rec = log.record("k", pairs=[(0, 1)], vertex=(2, 3))
        assert rec["payload"] == {"pairs": [[0, 1]], "vertex": [2, 3]}
        # Canonical JSON round-trips the whole record losslessly.
        assert json.loads(json.dumps(rec)) == rec

    def test_tracer_correlation(self):
        telemetry = Telemetry().with_audit(AuditLog())
        outside = telemetry.audit.record("outside")
        assert (outside["trace_id"], outside["span_id"]) == (None, None)
        with telemetry.span("root"):
            with telemetry.span("inner"):
                inside = telemetry.audit.record("inside")
        assert inside["trace_id"] is not None
        assert inside["span_id"] is not None
        assert inside["span_id"] != inside["trace_id"]

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(path) as log:
            _spend(log)
            log.record("epoch.refresh", epoch=0, tenant="t")
            written = log.records()
        assert read_audit_log(path) == written

    def test_resume_continues_chain(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(path) as log:
            _spend(log)
            first_head = log.head_hash
        with AuditLog(path) as log:
            assert log.records()[2]["kind"] == "audit.open"
            assert log.records()[2]["payload"]["resumed"] is True
            _spend(log, epoch=1, spent_eps=0.25)
        records = read_audit_log(path)
        assert [r["seq"] for r in records] == list(range(4))
        assert records[1]["hash"] == first_head

    def test_tail(self):
        log = AuditLog()
        for i in range(5):
            log.record("k", value=i)
        assert [r["seq"] for r in log.tail(2)] == [4, 5]
        assert log.tail(0) == []

    def test_null_audit_records_nothing(self):
        assert NULL_AUDIT.enabled is False
        assert NULL_AUDIT.record("k", value=1) == {}
        assert len(NULL_AUDIT) == 0
        assert isinstance(NULL_AUDIT, NullAuditLog)

    def test_audit_error_is_repro_and_telemetry_error(self):
        assert issubclass(AuditError, TelemetryError)
        assert issubclass(AuditError, ReproError)


class TestValidation:
    def test_empty_log_rejected(self):
        with pytest.raises(AuditError, match="empty log"):
            validate_records([])

    def test_tampered_value_breaks_chain(self):
        log = AuditLog()
        _spend(log)
        records = log.records()
        records[1] = dict(records[1])
        records[1]["payload"] = dict(records[1]["payload"], eps=0.5)
        with pytest.raises(AuditError, match="hash chain broken"):
            validate_records(records)

    def test_reordered_records_break_chain(self):
        log = AuditLog()
        log.record("a")
        log.record("b")
        records = log.records()
        records[1], records[2] = records[2], records[1]
        with pytest.raises(AuditError):
            validate_records(records)

    def test_dropped_record_is_a_sequence_gap(self):
        log = AuditLog()
        log.record("a")
        log.record("b")
        records = log.records()
        del records[1]
        with pytest.raises(AuditError, match="sequence gap|hash chain"):
            validate_records(records)

    def test_missing_header_rejected_even_with_valid_chain(self):
        log = AuditLog()
        log.record("a")
        # A clever tamperer drops the header and re-chains everything.
        doctored = _rechain(
            [dict(r, seq=i) for i, r in enumerate(log.records()[1:])]
        )
        with pytest.raises(AuditError, match="audit.open"):
            validate_records(doctored)

    def test_foreign_format_and_version_rejected(self):
        log = AuditLog()
        records = log.records()
        wrong_format = [dict(records[0])]
        wrong_format[0]["payload"] = {"format": "other", "version": 1}
        with pytest.raises(AuditError, match="not an audit log"):
            validate_records(_rechain(wrong_format))
        wrong_version = [dict(records[0])]
        wrong_version[0]["payload"] = {
            "format": AUDIT_FORMAT,
            "version": AUDIT_VERSION + 1,
        }
        with pytest.raises(AuditError, match="version"):
            validate_records(_rechain(wrong_version))

    def test_truncated_file_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(path) as log:
            _spend(log)
        text = path.read_text()
        path.write_text(text[:-20])
        with pytest.raises(AuditError, match=r"line 2.*truncated"):
            read_audit_log(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(path) as log:
            log.record("a")
        with path.open("a") as fh:
            fh.write("not json\n")
        with pytest.raises(AuditError, match="malformed JSON"):
            read_audit_log(path)

    def test_resume_of_corrupt_file_fails_closed(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(path) as log:
            _spend(log)
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"eps":0.25', '"eps":0.75')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(AuditError):
            AuditLog(path)


class TestOdometer:
    def test_accumulates_per_tenant(self):
        log = AuditLog()
        _spend(log, tenant="a", spent_eps=0.25)
        _spend(log, tenant="a", spent_eps=0.5)
        _spend(log, tenant="b", spent_eps=0.25)
        odometer = replay_odometer(log.records())
        assert odometer["spend_records"] == 3
        assert odometer["tenants"]["a"]["spent_eps"] == 0.5
        assert odometer["tenants"]["a"]["spends"] == 2
        assert odometer["tenants"]["b"]["spent_eps"] == 0.25

    def test_rotation_resets_epoch_but_not_lifetime(self):
        log = AuditLog()
        _spend(log, tenant="a", epoch=0)
        log.record(
            "ledger.rotate",
            epoch=1,
            closed_epoch=0,
            tenants=["a"],
            budget_eps=1.0,
            budget_delta=0.0,
        )
        _spend(log, tenant="a", epoch=1)
        odometer = replay_odometer(log.records())
        state = odometer["tenants"]["a"]
        assert state["epoch"] == 1
        assert state["spent_eps"] == 0.25
        assert state["lifetime_eps"] == 0.5
        assert state["lifetime_spends"] == 2
        assert state["by_epoch"] == {
            "0": {"eps": 0.25, "delta": 0.0, "spends": 1},
            "1": {"eps": 0.25, "delta": 0.0, "spends": 1},
        }

    def test_verify_passes_consistent_log(self):
        log = AuditLog()
        _spend(log, spent_eps=0.25)
        _spend(log, spent_eps=0.5)
        summary = verify_audit_log(log.records())
        assert summary["verified"] is True
        assert summary["spend_records"] == 2

    def test_verify_catches_rechained_arithmetic_lie(self):
        # The chain is intact (the tamperer fixed every hash) but the
        # recorded cumulative figure no longer matches the replay.
        log = AuditLog()
        _spend(log, spent_eps=0.25)
        records = [dict(r) for r in log.records()]
        records[1]["payload"] = dict(
            records[1]["payload"], spent_eps=0.125
        )
        doctored = _rechain(records)
        validate_records(doctored)  # chain itself is fine
        with pytest.raises(AuditError, match="replay mismatch"):
            verify_audit_log(doctored)


class TestSnapshotVerify:
    def _snapshot(self, spent=0.25, remaining=0.75, tenant="t"):
        return {
            "metrics": [
                {
                    "kind": "gauge",
                    "name": "budget.eps.spent",
                    "labels": {"tenant": tenant},
                    "value": spent,
                },
                {
                    "kind": "gauge",
                    "name": "budget.eps.remaining",
                    "labels": {"tenant": tenant},
                    "value": remaining,
                },
            ]
        }

    def test_matching_gauges_pass(self):
        log = AuditLog()
        _spend(log)
        assert verify_against_snapshot(log.records(), self._snapshot()) == 2

    def test_mismatched_gauge_fails(self):
        log = AuditLog()
        _spend(log)
        with pytest.raises(AuditError, match="disagrees with snapshot"):
            verify_against_snapshot(
                log.records(), self._snapshot(spent=0.5, remaining=0.5)
            )

    def test_unknown_gauge_tenant_fails(self):
        log = AuditLog()
        _spend(log, tenant="a")
        with pytest.raises(AuditError, match="never saw it spend"):
            verify_against_snapshot(
                log.records(), self._snapshot(tenant="ghost")
            )

    def test_rotated_tenant_expects_full_budget(self):
        log = AuditLog()
        _spend(log, tenant="t", epoch=0)
        log.record(
            "ledger.rotate",
            epoch=1,
            closed_epoch=0,
            tenants=["t"],
            budget_eps=1.0,
            budget_delta=0.0,
        )
        snapshot = self._snapshot(spent=0.0, remaining=1.0)
        assert verify_against_snapshot(log.records(), snapshot) == 2
