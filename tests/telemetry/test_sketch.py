"""Accuracy and merge tests for the streaming quantile sketch
(:mod:`repro.telemetry.sketch`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry import QuantileSketch

QUANTILES = (0.01, 0.05, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999)


class TestAccuracy:
    @pytest.mark.parametrize("n", [10**2, 10**4, 10**6])
    def test_within_one_rank_percentile_of_numpy(self, n):
        # The acceptance bar: every reported quantile sits within +-1
        # rank percentile of numpy.percentile on the same data (with
        # the sketch's own 0.1% value rounding as slack on top).
        rng = np.random.default_rng(20160626)
        values = rng.lognormal(mean=0.0, sigma=2.0, size=n)
        sketch = QuantileSketch()
        sketch.observe_many(values)
        slack = 2.0 * sketch.relative_accuracy
        for q in QUANTILES:
            estimate = sketch.quantile(q)
            lo = float(np.percentile(values, max(q - 0.01, 0.0) * 100.0))
            hi = float(np.percentile(values, min(q + 0.01, 1.0) * 100.0))
            assert lo * (1.0 - slack) <= estimate <= hi * (1.0 + slack), (
                f"q={q}: sketch={estimate}, "
                f"numpy band=[{lo}, {hi}] at +-1 rank percentile"
            )

    def test_scalar_and_vector_ingest_agree(self):
        rng = np.random.default_rng(7)
        values = rng.exponential(scale=3.0, size=500)
        one_by_one = QuantileSketch()
        for v in values:
            one_by_one.observe(float(v))
        bulk = QuantileSketch()
        bulk.observe_many(values)
        for q in QUANTILES:
            assert one_by_one.quantile(q) == bulk.quantile(q)
        assert one_by_one.count == bulk.count == 500
        assert one_by_one.sum == pytest.approx(bulk.sum)

    def test_relative_error_bound_on_values(self):
        # Beyond rank accuracy, each estimate is within the configured
        # relative accuracy of *some* observed value's bucket.
        values = [0.001, 0.5, 1.0, 12.0, 4000.0]
        sketch = QuantileSketch(relative_accuracy=0.01)
        for v in values:
            sketch.observe(v)
        assert sketch.quantile(0.0) == pytest.approx(0.001, rel=0.02)
        assert sketch.quantile(1.0) == pytest.approx(4000.0, rel=0.02)

    def test_min_max_exact(self):
        sketch = QuantileSketch()
        sketch.observe_many([3.0, 1.0, 2.0])
        assert sketch.min == 1.0
        assert sketch.max == 3.0
        assert sketch.quantile(0.0) == 1.0
        # The top quantile falls through to the exact max.
        assert sketch.quantile(1.0) == 3.0


class TestEdgeCases:
    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert len(sketch) == 0
        assert sketch.count == 0
        assert np.isnan(sketch.quantile(0.5))

    def test_zeros_and_negatives_collapse_to_zero(self):
        sketch = QuantileSketch()
        sketch.observe(0.0)
        sketch.observe(-5.0)  # durations cannot be negative; clamp
        sketch.observe(1e-15)
        assert sketch.count == 3
        assert sketch.quantile(0.5) == 0.0

    def test_invalid_quantile_rejected(self):
        from repro.exceptions import TelemetryError

        sketch = QuantileSketch()
        sketch.observe(1.0)
        with pytest.raises(TelemetryError):
            sketch.quantile(1.5)
        with pytest.raises(TelemetryError):
            sketch.quantile(-0.1)

    def test_invalid_accuracy_rejected(self):
        from repro.exceptions import TelemetryError

        with pytest.raises(TelemetryError):
            QuantileSketch(relative_accuracy=0.0)
        with pytest.raises(TelemetryError):
            QuantileSketch(relative_accuracy=1.0)


class TestMerge:
    def test_merge_is_exact(self):
        # Merging sketches is lossless: the merged sketch equals one
        # built from the concatenated stream.
        rng = np.random.default_rng(99)
        a_vals = rng.lognormal(size=1000)
        b_vals = rng.exponential(size=1000)
        a = QuantileSketch()
        a.observe_many(a_vals)
        b = QuantileSketch()
        b.observe_many(b_vals)
        combined = QuantileSketch()
        combined.observe_many(np.concatenate([a_vals, b_vals]))
        a.merge(b)
        assert a.count == combined.count
        for q in QUANTILES:
            assert a.quantile(q) == combined.quantile(q)

    def test_merged_copy_leaves_inputs_alone(self):
        a = QuantileSketch()
        a.observe(1.0)
        b = QuantileSketch()
        b.observe(2.0)
        c = a.merged(b)
        assert c.count == 2
        assert a.count == 1
        assert b.count == 1

    def test_mismatched_accuracy_rejected(self):
        from repro.exceptions import TelemetryError

        a = QuantileSketch(relative_accuracy=0.001)
        b = QuantileSketch(relative_accuracy=0.01)
        with pytest.raises(TelemetryError):
            a.merge(b)
