"""Tests for the span tracer (:mod:`repro.telemetry.tracer`)."""

from __future__ import annotations

import pytest

from repro.telemetry import NullTracer, Tracer
from repro.telemetry.tracer import NULL_SPAN


class TestSpans:
    def test_nesting_parent_child(self):
        tracer = Tracer()
        with tracer.span("epoch.refresh") as parent:
            with tracer.span("synopsis.build") as child:
                assert tracer.current() is child
            assert tracer.current() is parent
        assert tracer.current() is None
        roots = tracer.finished_roots()
        assert [s.name for s in roots] == ["epoch.refresh"]
        assert [c.name for c in roots[0].children] == ["synopsis.build"]

    def test_attributes_at_open_and_set_attribute(self):
        tracer = Tracer()
        with tracer.span("build", mechanism="hub-set") as span:
            span.set_attribute("hubs", 12)
        (root,) = tracer.finished_roots()
        assert root.attributes == {"mechanism": "hub-set", "hubs": 12}

    def test_duration_measured(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        (root,) = tracer.finished_roots()
        assert root.duration_seconds >= 0.0

    def test_events_are_zero_duration_children(self):
        tracer = Tracer()
        with tracer.span("epoch"):
            tracer.event("budget.spend", tenant="west", eps=0.5)
        (root,) = tracer.finished_roots()
        (event,) = root.children
        assert event.name == "budget.spend"
        assert event.attributes == {"tenant": "west", "eps": 0.5}
        assert event.duration_seconds == 0.0

    def test_root_event_without_open_span(self):
        tracer = Tracer()
        tracer.event("standalone")
        assert [s.name for s in tracer.finished_roots()] == ["standalone"]

    def test_span_closed_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.current() is None
        (root,) = tracer.finished_roots()
        assert [c.name for c in root.children] == ["inner"]

    def test_to_dict_structure(self):
        tracer = Tracer()
        with tracer.span("a", k="v"):
            with tracer.span("b"):
                pass
        (root,) = tracer.finished_roots()
        doc = root.to_dict()
        assert doc["name"] == "a"
        assert doc["attributes"] == {"k": "v"}
        assert doc["children"][0]["name"] == "b"
        assert doc["duration_seconds"] >= 0.0

    def test_finished_roots_bounded(self):
        tracer = Tracer(max_finished_roots=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        names = [s.name for s in tracer.finished_roots()]
        assert names == ["s2", "s3", "s4"]

    def test_evictions_counted_and_reported(self):
        dropped = []
        tracer = Tracer(
            max_finished_roots=3, on_drop=lambda: dropped.append(1)
        )
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.dropped == 2
        assert len(dropped) == 2

    def test_no_drops_below_capacity(self):
        tracer = Tracer(max_finished_roots=3, on_drop=lambda: 1 / 0)
        for i in range(3):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.dropped == 0  # callback never invoked

    def test_bundle_drop_counter_interned_lazily(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry(tracer=None)
        telemetry.tracer._finished.maxlen  # live tracer with history
        names = {m["name"] for m in telemetry.registry.snapshot()}
        assert "trace.dropped" not in names  # nothing dropped yet
        for i in range(telemetry.tracer._finished.maxlen + 2):
            with telemetry.span(f"s{i}"):
                pass
        counters = {
            m["name"]: m["value"]
            for m in telemetry.registry.snapshot()
            if m["kind"] == "counter"
        }
        assert counters["trace.dropped"] == 2

    def test_span_ids_and_current_ids(self):
        tracer = Tracer()
        assert tracer.current_ids() == (None, None)
        with tracer.span("root"):
            root_id, inner_id = tracer.current_ids()
            assert root_id == inner_id
            with tracer.span("inner"):
                trace_id, span_id = tracer.current_ids()
                assert trace_id == root_id
                assert span_id != trace_id
        assert tracer.current_ids() == (None, None)
        (root,) = tracer.finished_roots()
        assert root.to_dict()["span_id"] == root.span_id

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.finished_roots() == []
        assert tracer.snapshot() == []


class TestNullTracer:
    def test_noop_and_reentrant(self):
        tracer = NullTracer()
        with tracer.span("outer", k=1) as outer:
            with tracer.span("inner") as inner:
                assert outer is NULL_SPAN
                assert inner is NULL_SPAN
                inner.set_attribute("ignored", True)
        assert tracer.finished_roots() == []
        assert tracer.snapshot() == []
