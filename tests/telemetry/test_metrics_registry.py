"""Tests for the metrics registry and its exporters
(:mod:`repro.telemetry.registry`, :mod:`repro.telemetry.export`)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.exceptions import TelemetryError
from repro.telemetry import (
    MetricsRegistry,
    NullRegistry,
    QuantileSketch,
    Telemetry,
)
from repro.telemetry.export import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    prometheus_label_name,
    prometheus_name,
    snapshot_to_prometheus,
    validate_snapshot,
)
from repro.telemetry.registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)

DATA = Path(__file__).parent / "data"


def _golden_registry() -> MetricsRegistry:
    """The fixed registry behind the committed golden files."""
    reg = MetricsRegistry()
    reg.counter("demo.requests", route="intra").inc(3)
    reg.counter("demo.requests", route="cross").inc()
    reg.gauge("budget.eps.remaining", tenant="west").set(0.75)
    reg.gauge("budget.eps.remaining", tenant="east").set(0.25)
    # A hostile tenant name: backslash, double quote, and newline all
    # need escaping in the Prometheus exposition (in that order —
    # escaping the backslash last would corrupt the other escapes).
    reg.gauge(
        "budget.eps.remaining", tenant='we"st\\prod\nstaging'
    ).set(0.5)
    h = reg.histogram("demo.latency", service="distance")
    h.observe_many([0.001 * (i + 1) for i in range(100)])
    reg.histogram("demo.empty", service="distance")
    return reg


def _golden_document() -> dict:
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "metrics": _golden_registry().snapshot(),
        "spans": [],
    }


class TestRegistry:
    def test_interning_same_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", route="x")
        b = reg.counter("hits", route="x")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_distinct_labels_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", route="x").inc()
        reg.counter("hits", route="y").inc(2)
        values = {m.labels: m.value for m in reg.metrics()}
        assert values == {
            (("route", "x"),): 1,
            (("route", "y"),): 2,
        }

    def test_type_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(TelemetryError):
            reg.gauge("thing")

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError):
            reg.counter("hits").inc(-1)

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("level")
        g.set(5.0)
        g.add(-2.0)
        assert g.value == 3.0

    def test_instance_labels_ordinal_per_base_set(self):
        reg = MetricsRegistry()
        first = reg.instance_labels(tenant="a")
        second = reg.instance_labels(tenant="a")
        other = reg.instance_labels(tenant="b")
        assert first == {"tenant": "a", "instance": "0"}
        assert second == {"tenant": "a", "instance": "1"}
        assert other == {"tenant": "b", "instance": "0"}

    def test_merged_histogram_across_label_sets(self):
        reg = MetricsRegistry()
        reg.histogram("lat", route="x").observe(1.0)
        reg.histogram("lat", route="y").observe(3.0)
        merged = reg.merged_histogram("lat")
        assert merged.count == 2
        assert reg.merged_histogram("absent") is None

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.clear()
        assert reg.metrics() == []


class TestNullRegistry:
    def test_null_singletons_and_noop(self):
        reg = NullRegistry()
        assert not reg.enabled
        assert reg.counter("x") is NULL_COUNTER
        assert reg.gauge("x") is NULL_GAUGE
        assert reg.histogram("x") is NULL_HISTOGRAM
        reg.counter("x").inc(5)
        reg.histogram("x").observe(1.0)
        assert reg.metrics() == []
        assert reg.snapshot() == []

    def test_disabled_telemetry_uses_nulls(self):
        t = Telemetry(enabled=False)
        assert not t.enabled
        assert t.registry.counter("x") is NULL_COUNTER


class TestGoldenFiles:
    def test_json_snapshot_matches_golden(self):
        produced = json.dumps(_golden_document(), indent=2) + "\n"
        expected = (DATA / "golden_snapshot.json").read_text()
        assert produced == expected

    def test_prometheus_exposition_matches_golden(self):
        produced = snapshot_to_prometheus(_golden_document())
        expected = (DATA / "golden_snapshot.prom").read_text()
        assert produced == expected

    def test_golden_json_round_trips_through_validate(self):
        document = json.loads((DATA / "golden_snapshot.json").read_text())
        validate_snapshot(document)  # should not raise
        text = snapshot_to_prometheus(document)
        assert 'demo_requests{route="intra"} 3' in text


class TestExport:
    def test_prometheus_name_sanitization(self):
        assert prometheus_name("serving.query.latency") == (
            "serving_query_latency"
        )
        assert prometheus_name("9lives") == "_9lives"
        assert prometheus_name("a-b c") == "a_b_c"

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", label='va"l\\ue\n').inc()
        doc = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "metrics": reg.snapshot(),
            "spans": [],
        }
        text = snapshot_to_prometheus(doc)
        assert 'label="va\\"l\\\\ue\\n"' in text

    def test_label_names_sanitized(self):
        # Label NAMES have a stricter charset than metric names: no
        # colons.  Names arriving from a snapshot document (not only
        # from Python kwargs) must be sanitized too.
        assert prometheus_label_name("route") == "route"
        assert prometheus_label_name("shard:id") == "shard_id"
        assert prometheus_label_name("9th") == "_9th"
        doc = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "metrics": [
                {
                    "name": "c",
                    "kind": "counter",
                    "labels": {"shard:id": "0"},
                    "value": 1,
                }
            ],
            "spans": [],
        }
        text = snapshot_to_prometheus(doc)
        assert 'shard_id="0"' in text
        assert "shard:id" not in text

    def test_validate_rejects_malformed(self):
        with pytest.raises(TelemetryError):
            validate_snapshot({"format": "something-else"})
        with pytest.raises(TelemetryError):
            validate_snapshot(
                {"format": SNAPSHOT_FORMAT, "version": 999}
            )
        with pytest.raises(TelemetryError):
            validate_snapshot(
                {"format": SNAPSHOT_FORMAT, "version": SNAPSHOT_VERSION}
            )


class TestTelemetryBundle:
    def test_snapshot_document_shape(self):
        t = Telemetry()
        t.registry.counter("hits").inc()
        with t.span("work"):
            pass
        doc = t.snapshot()
        assert doc["format"] == SNAPSHOT_FORMAT
        assert doc["version"] == SNAPSHOT_VERSION
        assert len(doc["metrics"]) == 1
        assert len(doc["spans"]) == 1
        validate_snapshot(doc)

    def test_prometheus_text_shorthand(self):
        t = Telemetry()
        t.registry.counter("hits").inc(2)
        assert "hits 2" in t.prometheus_text()

    def test_clear_resets_both_halves(self):
        t = Telemetry()
        t.registry.counter("hits").inc()
        with t.span("work"):
            pass
        t.clear()
        doc = t.snapshot()
        assert doc["metrics"] == []
        assert doc["spans"] == []

    def test_histogram_quantile_passthrough(self):
        t = Telemetry()
        h = t.registry.histogram("lat")
        h.observe_many([1.0, 2.0, 3.0, 4.0])
        assert isinstance(h.sketch, QuantileSketch)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 4.0
