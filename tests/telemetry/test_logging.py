"""Unit tests for the structured JSON-line event log
(:mod:`repro.telemetry.logging`)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import TelemetryError
from repro.telemetry import (
    EVENT_LOG_FORMAT,
    EVENT_LOG_VERSION,
    EventLog,
    NULL_LOG,
    Telemetry,
    read_event_log,
)


class TestEventLog:
    def test_header_is_first_record(self):
        log = EventLog()
        head = log.records()[0]
        assert head["event"] == "log.open"
        assert head["fields"] == {
            "format": EVENT_LOG_FORMAT,
            "version": EVENT_LOG_VERSION,
        }
        assert head["seq"] == 0

    def test_emit_schema_and_sequencing(self):
        log = EventLog()
        record = log.emit(
            "epoch.refresh", tenant="west", epoch=3, rotated=True
        )
        assert record["seq"] == 1
        assert record["tenant"] == "west"
        assert record["epoch"] == 3
        assert record["fields"] == {"rotated": True}
        assert record["trace_id"] is None  # no tracer bound
        assert len(log) == 2
        assert log.tail(1) == [record]
        assert log.tail(0) == []

    def test_non_json_field_values_stringified(self):
        log = EventLog()
        record = log.emit("x", pair=((0, 1), (2, 3)), obj=object())
        assert record["fields"]["pair"] == [[0, 1], [2, 3]]
        assert isinstance(record["fields"]["obj"], str)

    def test_span_ids_from_bound_tracer(self):
        telemetry = Telemetry()
        bundle = telemetry.with_log(EventLog())
        with bundle.span("outer"):
            with bundle.span("inner") as span:
                record = bundle.log.emit("evt")
        assert record["span_id"] == span.span_id
        assert record["trace_id"] != record["span_id"]

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("service.start", tenant="t", shards=2)
            log.emit("batch.serve", queries=10)
        records = read_event_log(path)
        assert [r["event"] for r in records] == [
            "log.open",
            "service.start",
            "batch.serve",
        ]
        assert records == log.records()

    def test_read_fail_closed(self, tmp_path):
        path = tmp_path / "bad.jsonl"

        def write(lines):
            path.write_text("\n".join(lines) + "\n")

        header = json.dumps(
            {
                "seq": 0,
                "ts": 0.0,
                "event": "log.open",
                "tenant": None,
                "epoch": None,
                "trace_id": None,
                "span_id": None,
                "fields": {
                    "format": EVENT_LOG_FORMAT,
                    "version": EVENT_LOG_VERSION,
                },
            }
        )
        write([header, "{not json"])
        with pytest.raises(TelemetryError, match="malformed JSON"):
            read_event_log(path)
        write([header, '{"seq": 5}'])
        with pytest.raises(TelemetryError, match="missing keys"):
            read_event_log(path)
        gap = json.loads(header)
        gap["seq"] = 7
        gap["event"] = "x"
        write([header, json.dumps(gap)])
        with pytest.raises(TelemetryError, match="sequence gap"):
            read_event_log(path)
        path.write_text("")
        with pytest.raises(TelemetryError, match="empty log"):
            read_event_log(path)
        bad_head = json.loads(header)
        bad_head["fields"]["format"] = "other"
        write([json.dumps(bad_head)])
        with pytest.raises(TelemetryError, match="not an event log"):
            read_event_log(path)
        bad_version = json.loads(header)
        bad_version["fields"]["version"] = 99
        write([json.dumps(bad_version)])
        with pytest.raises(TelemetryError, match="version"):
            read_event_log(path)

    def test_null_log_is_inert(self, tmp_path):
        assert not NULL_LOG.enabled
        assert NULL_LOG.emit("anything", tenant="t") == {}
        assert NULL_LOG.records() == []
        NULL_LOG.close()  # no-op, never raises

    def test_with_log_derivation_shares_instruments(self):
        telemetry = Telemetry()
        log = EventLog()
        derived = telemetry.with_log(log)
        assert derived.log is log
        assert telemetry.log is NULL_LOG
        assert derived.registry is telemetry.registry
