"""Thread-safety of the metrics registry and quantile sketch.

The stack sampler (:mod:`repro.telemetry.profile`) is the library's
first real second thread, and a metrics scraper is the obvious next
one — so concurrent ``observe()`` / interning / snapshotting must
neither lose observations nor blow up on a dict mutated mid-iteration.
"""

from __future__ import annotations

import threading

from repro.telemetry import MetricsRegistry, QuantileSketch


def _run_threads(workers):
    threads = [threading.Thread(target=w) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


THREADS = 8
PER_THREAD = 2000


class TestSketchConcurrency:
    def test_concurrent_observe_loses_nothing(self):
        sketch = QuantileSketch()

        def observe():
            for i in range(PER_THREAD):
                sketch.observe(0.001 * (1 + i % 7))

        _run_threads([observe] * THREADS)
        assert sketch.count == THREADS * PER_THREAD
        assert sketch.min == 0.001
        assert sketch.max == 0.007

    def test_quantile_reads_during_ingest(self):
        # A reader iterating buckets while writers insert new ones
        # would raise RuntimeError on an unlocked dict.
        sketch = QuantileSketch()
        sketch.observe(1.0)
        stop = threading.Event()
        errors = []

        def read():
            while not stop.is_set():
                try:
                    sketch.quantile(0.99)
                except Exception as exc:  # pragma: no cover - failure
                    errors.append(exc)
                    return

        def write():
            for i in range(PER_THREAD):
                sketch.observe(float(1 + i))
            stop.set()

        _run_threads([read, write])
        assert errors == []
        assert sketch.count == PER_THREAD + 1

    def test_concurrent_cross_merge_no_deadlock(self):
        a = QuantileSketch()
        b = QuantileSketch()
        for i in range(100):
            a.observe(float(i + 1))
            b.observe(float(i + 1))

        def merge_ab():
            for _ in range(50):
                a.merge(b)

        def merge_ba():
            for _ in range(50):
                b.merge(a)

        # Lock ordering by id means this cannot deadlock; the join in
        # _run_threads would hang forever otherwise.
        _run_threads([merge_ab, merge_ba])
        assert a.count > 100
        assert b.count > 100

    def test_self_merge_doubles(self):
        sketch = QuantileSketch()
        for i in range(10):
            sketch.observe(float(i + 1))
        sketch.merge(sketch)
        assert sketch.count == 20
        assert sketch.sum == 2 * sum(range(1, 11))

    def test_copy_is_consistent_snapshot(self):
        sketch = QuantileSketch()
        for i in range(100):
            sketch.observe(float(i + 1))
        clone = sketch.copy()
        sketch.observe(1000.0)
        assert clone.count == 100
        assert clone.max == 100.0
        assert sketch.count == 101


class TestRegistryConcurrency:
    def test_interning_race_yields_one_instrument(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(THREADS)

        def intern():
            barrier.wait()
            counter = registry.counter("hits", tenant="t")
            seen.append(counter)
            for _ in range(PER_THREAD):
                counter.inc()

        _run_threads([intern] * THREADS)
        assert len({id(c) for c in seen}) == 1
        assert registry.counter("hits", tenant="t").value == (
            THREADS * PER_THREAD
        )

    def test_instance_labels_unique_under_race(self):
        registry = MetricsRegistry()
        ordinals = []
        barrier = threading.Barrier(THREADS)

        def take():
            barrier.wait()
            for _ in range(100):
                ordinals.append(
                    registry.instance_labels(tenant="t")["instance"]
                )

        _run_threads([take] * THREADS)
        assert len(ordinals) == THREADS * 100
        assert len(set(ordinals)) == len(ordinals)

    def test_snapshot_during_registration(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def scrape():
            while not stop.is_set():
                try:
                    registry.snapshot()
                    registry.metrics()
                except Exception as exc:  # pragma: no cover - failure
                    errors.append(exc)
                    return

        def register():
            for i in range(PER_THREAD):
                registry.gauge(f"g.{i % 199}", shard=i % 17).set(i)
                registry.histogram("h", shard=i % 13).observe(0.001)
            stop.set()

        _run_threads([scrape, register])
        assert errors == []
