"""Unit tests for the phase profiler, the stack sampler, and the
slow-query flight recorder (:mod:`repro.telemetry.profile`)."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.exceptions import TelemetryError
from repro.telemetry import (
    FLIGHT_FORMAT,
    NULL_FLIGHT,
    NULL_PROFILER,
    FlightRecorder,
    PhaseProfiler,
    PROFILE_FORMAT,
    SamplingProfiler,
    Telemetry,
    Tracer,
    profile_document,
    samples_to_collapsed,
    span_phase_breakdown,
    validate_flight,
    validate_profile,
)


def _spin(seconds: float) -> None:
    """Busy-wait so both wall and CPU clocks advance."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass


class TestPhaseProfiler:
    def test_attribution_sums_to_root_wall(self):
        tracer = Tracer()
        profiler = PhaseProfiler(trace_allocations=False).attach(tracer)
        with tracer.span("outer"):
            _spin(0.004)
            with tracer.span("inner"):
                _spin(0.004)
        profiler.detach()
        phases = profiler.phases()
        assert set(phases) == {"outer", "inner"}
        root = tracer.finished_roots()[0]
        total_self = sum(s.wall_self_seconds for s in phases.values())
        assert total_self == pytest.approx(
            root.duration_seconds, rel=0.10
        )
        assert profiler.total_wall_seconds() == pytest.approx(total_self)
        # The parent's self time excludes the child.
        assert (
            phases["outer"].wall_self_seconds
            < phases["outer"].wall_seconds
        )

    def test_counts_and_summary_order(self):
        tracer = Tracer()
        profiler = PhaseProfiler(trace_allocations=False).attach(tracer)
        for _ in range(3):
            with tracer.span("fast"):
                pass
        with tracer.span("slow"):
            _spin(0.003)
        profiler.detach()
        rows = profiler.phase_summary()
        assert [r["phase"] for r in rows] == ["slow", "fast"]
        by_phase = {r["phase"]: r for r in rows}
        assert by_phase["fast"]["count"] == 3
        assert by_phase["slow"]["count"] == 1

    def test_allocation_delta_tracked(self):
        tracer = Tracer()
        profiler = PhaseProfiler().attach(tracer)
        with tracer.span("alloc"):
            keep = [list(range(1000)) for _ in range(50)]
        profiler.detach()
        assert profiler.phases()["alloc"].alloc_net_bytes > 0
        del keep

    def test_double_attach_other_tracer_rejected(self):
        profiler = PhaseProfiler(trace_allocations=False)
        first = Tracer()
        profiler.attach(first)
        assert profiler.attach(first) is profiler  # idempotent
        with pytest.raises(TelemetryError, match="already attached"):
            profiler.attach(Tracer())
        profiler.detach()
        assert not profiler.attached

    def test_span_open_before_attach_is_ignored(self):
        tracer = Tracer()
        profiler = PhaseProfiler(trace_allocations=False)
        with tracer.span("early"):
            profiler.attach(tracer)
            with tracer.span("late"):
                pass
        profiler.detach()
        assert set(profiler.phases()) == {"late"}

    def test_clear_drops_stats(self):
        tracer = Tracer()
        profiler = PhaseProfiler(trace_allocations=False).attach(tracer)
        with tracer.span("x"):
            pass
        profiler.clear()
        assert profiler.phases() == {}
        profiler.detach()

    def test_null_profiler_is_inert(self):
        tracer = Tracer()
        assert NULL_PROFILER.attach(tracer) is NULL_PROFILER
        assert not NULL_PROFILER.enabled
        with tracer.span("x"):
            pass
        assert NULL_PROFILER.phases() == {}

    def test_with_profiler_attaches_and_records(self):
        telemetry = Telemetry()
        profiler = PhaseProfiler(trace_allocations=False)
        derived = telemetry.with_profiler(profiler)
        assert derived.profiler is profiler
        assert profiler.attached
        with derived.span("phase.a"):
            pass
        assert "phase.a" in profiler.phases()
        profiler.detach()

    def test_with_profiler_on_disabled_bundle_never_attaches(self):
        disabled = Telemetry(enabled=False)
        profiler = PhaseProfiler(trace_allocations=False)
        derived = disabled.with_profiler(profiler)
        assert derived.profiler is profiler
        assert not profiler.attached


class TestSamplingProfiler:
    def test_final_sample_guarantees_output(self):
        sampler = SamplingProfiler(interval_seconds=10.0)
        sampler.start()
        sampler.stop()
        assert sampler.sample_count >= 1
        text = sampler.collapsed()
        assert text.endswith("\n")
        stack, _, count = text.splitlines()[0].rpartition(" ")
        assert ";" in stack
        assert int(count) >= 1

    def test_samples_accumulate_while_running(self):
        sampler = SamplingProfiler(interval_seconds=0.001)
        sampler.start()
        _spin(0.03)
        sampler.stop()
        assert sampler.sample_count >= 2
        assert not sampler.running
        sampler.clear()
        assert sampler.sample_count == 0

    def test_double_start_and_bad_interval_rejected(self):
        with pytest.raises(TelemetryError, match="interval"):
            SamplingProfiler(interval_seconds=0.0)
        sampler = SamplingProfiler()
        sampler.start()
        try:
            with pytest.raises(TelemetryError, match="already running"):
                sampler.start()
        finally:
            sampler.stop()

    def test_collapsed_round_trips_string_keys(self):
        counts = {("a.f", "b.g"): 2, ("a.f",): 1}
        text = samples_to_collapsed(counts)
        assert text == "a.f 1\na.f;b.g 2\n"
        # A JSON round trip turns tuple keys into joined strings.
        joined = {";".join(k): v for k, v in counts.items()}
        assert samples_to_collapsed(joined) == text
        assert samples_to_collapsed({}) == ""


class TestProfileDocument:
    def _document(self):
        tracer = Tracer()
        profiler = PhaseProfiler(trace_allocations=False).attach(tracer)
        with tracer.span("work"):
            _spin(0.002)
        profiler.detach()
        sampler = SamplingProfiler(interval_seconds=5.0)
        sampler.start()
        sampler.stop()
        return profile_document(profiler, sampler)

    def test_document_shape_and_validation(self):
        document = self._document()
        assert document["format"] == PROFILE_FORMAT
        assert document["phases"][0]["phase"] == "work"
        assert document["samples"] >= 1
        assert document["collapsed"]
        assert validate_profile(document) is document
        # JSON round trip stays valid.
        assert validate_profile(json.loads(json.dumps(document)))

    def test_validation_fail_closed(self):
        with pytest.raises(TelemetryError, match="JSON object"):
            validate_profile([])
        with pytest.raises(TelemetryError, match="format"):
            validate_profile({"format": "other"})
        with pytest.raises(TelemetryError, match="version"):
            validate_profile({"format": PROFILE_FORMAT, "version": 99})
        with pytest.raises(TelemetryError, match="phases"):
            validate_profile(
                {"format": PROFILE_FORMAT, "version": 1}
            )


class TestSpanPhaseBreakdown:
    def test_values_sum_to_root_duration(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                _spin(0.002)
            with tracer.span("child"):
                pass
        root = tracer.finished_roots()[0]
        breakdown = span_phase_breakdown(root)
        assert set(breakdown) == {"root", "child"}
        assert sum(breakdown.values()) == pytest.approx(
            root.duration_seconds, rel=1e-6
        )


class TestFlightRecorder:
    def test_fixed_threshold_captures(self):
        recorder = FlightRecorder(threshold_seconds=0.01)
        assert not recorder.consider(0.005, route="point")
        assert recorder.consider(
            0.05,
            pair=("a", "b"),
            route="point",
            mechanism="tree",
            epoch=2,
            tenant="t",
            cache_hit=False,
        )
        assert recorder.captured == 1
        assert recorder.considered == 2
        record = recorder.records()[0]
        assert record["pair"] == ["a", "b"]
        assert record["mechanism"] == "tree"
        assert record["epoch"] == 2
        assert record["adaptive"] is False
        assert record["threshold_seconds"] == pytest.approx(0.01)
        assert record["span"] is None

    def test_cold_without_fallback_captures_nothing(self):
        recorder = FlightRecorder(warmup=5)
        for _ in range(4):
            assert not recorder.consider(100.0)
        assert recorder.current_threshold() is None
        assert recorder.captured == 0

    def test_adaptive_threshold_after_warmup(self):
        recorder = FlightRecorder(warmup=50, quantile=0.99)
        for _ in range(50):
            recorder.consider(0.001, route="point")
        threshold = recorder.current_threshold("point")
        assert threshold == pytest.approx(0.001, rel=0.01)
        assert recorder.consider(0.01, route="point")
        assert recorder.records()[-1]["adaptive"] is True
        # Per-route sketches: another route is still cold.
        assert recorder.current_threshold("batch") is None

    def test_slow_query_does_not_raise_its_own_bar(self):
        recorder = FlightRecorder(warmup=1)
        recorder.consider(0.001)
        # The sketch is warm; the next latency is judged against the
        # p99 *before* it is observed.
        assert recorder.consider(1.0)

    def test_ring_eviction(self):
        recorder = FlightRecorder(capacity=2, threshold_seconds=0.001)
        for i in range(5):
            recorder.consider(0.01, pair=(i, i))
        assert len(recorder) == 2
        assert recorder.captured == 5
        assert [r["pair"][0] for r in recorder.records()] == ["3", "4"]

    def test_span_subtree_and_breakdown_recorded(self):
        tracer = Tracer()
        with tracer.span("query.point") as span:
            with tracer.span("engine.sssp"):
                _spin(0.002)
        recorder = FlightRecorder(threshold_seconds=0.0001)
        assert recorder.consider(0.01, span=span)
        record = recorder.records()[0]
        assert record["span"]["name"] == "query.point"
        assert set(record["phases"]) == {"query.point", "engine.sssp"}

    def test_document_round_trip(self):
        recorder = FlightRecorder(threshold_seconds=0.001)
        recorder.consider(0.01, pair=("s", "t"))
        document = recorder.to_document()
        assert document["format"] == FLIGHT_FORMAT
        assert document["captured"] == 1
        parsed = json.loads(json.dumps(document))
        assert validate_flight(parsed)["records"][0]["pair"] == ["s", "t"]

    def test_validation_and_parameters_fail_closed(self):
        with pytest.raises(TelemetryError, match="capacity"):
            FlightRecorder(capacity=0)
        with pytest.raises(TelemetryError, match="threshold"):
            FlightRecorder(threshold_seconds=-1.0)
        with pytest.raises(TelemetryError, match="quantile"):
            FlightRecorder(quantile=1.0)
        with pytest.raises(TelemetryError, match="warmup"):
            FlightRecorder(warmup=0)
        with pytest.raises(TelemetryError, match="format"):
            validate_flight({"format": "nope"})
        with pytest.raises(TelemetryError, match="records"):
            validate_flight({"format": FLIGHT_FORMAT, "version": 1})

    def test_clear_resets_counts_and_sketches(self):
        recorder = FlightRecorder(warmup=1, threshold_seconds=0.001)
        recorder.consider(0.01)
        recorder.clear()
        assert recorder.captured == 0
        assert recorder.considered == 0
        assert recorder.current_threshold() == pytest.approx(0.001)

    def test_null_flight_is_inert(self):
        assert not NULL_FLIGHT.enabled
        assert NULL_FLIGHT.consider(1e9) is False
        assert NULL_FLIGHT.records() == []

    def test_with_flight_derivation(self):
        telemetry = Telemetry()
        recorder = FlightRecorder(threshold_seconds=0.001)
        derived = telemetry.with_flight(recorder)
        assert derived.flight is recorder
        assert telemetry.flight is NULL_FLIGHT
        assert derived.registry is telemetry.registry
