"""Unit tests for :mod:`repro.telemetry.monitor` — declarative alert
rules and the noise-calibration watchdog."""

from __future__ import annotations

import json
import math

import pytest

from repro.exceptions import TelemetryError
from repro.graphs.generators import grid_graph
from repro.rng import Rng
from repro.serving.service import DistanceService
from repro.telemetry import Telemetry
from repro.telemetry.monitor import (
    ALERT_RULES_FORMAT,
    ALERT_RULES_VERSION,
    AlertRule,
    CalibrationWatchdog,
    evaluate_rules,
    load_alert_rules,
)


def _rules_doc(*rules: dict) -> str:
    return json.dumps(
        {
            "format": ALERT_RULES_FORMAT,
            "version": ALERT_RULES_VERSION,
            "rules": list(rules),
        }
    )


def _snapshot() -> dict:
    telemetry = Telemetry()
    telemetry.registry.counter("serving.queries", tenant="west").inc(40)
    telemetry.registry.gauge("budget.eps.spent", tenant="west").set(0.9)
    telemetry.registry.gauge(
        "budget.eps.remaining", tenant="west"
    ).set(0.1)
    telemetry.registry.gauge("budget.eps.spent", tenant="east").set(0.2)
    telemetry.registry.gauge(
        "budget.eps.remaining", tenant="east"
    ).set(0.8)
    latency = telemetry.registry.histogram(
        "serving.query.latency", tenant="west"
    )
    for value in (1e-6, 2e-6, 100e-6):
        latency.observe(value)
    return telemetry.snapshot()


class TestRuleParsing:
    def test_round_trip(self):
        rules = load_alert_rules(
            _rules_doc(
                {
                    "name": "hot-queries",
                    "metric": "serving.queries",
                    "op": ">",
                    "value": 10,
                },
                {
                    "name": "budget-burn",
                    "kind": "burn-rate",
                    "op": ">=",
                    "value": 0.8,
                    "severity": "critical",
                },
            )
        )
        assert [r.name for r in rules] == ["hot-queries", "budget-burn"]
        assert rules[1].kind == "burn-rate"
        assert rules[1].severity == "critical"

    def test_foreign_format_rejected(self):
        with pytest.raises(TelemetryError, match="format"):
            load_alert_rules(json.dumps({"format": "x", "version": 1}))

    def test_wrong_version_rejected(self):
        with pytest.raises(TelemetryError, match="version"):
            load_alert_rules(
                json.dumps(
                    {"format": ALERT_RULES_FORMAT, "version": 99, "rules": []}
                )
            )

    def test_unknown_rule_fields_rejected(self):
        with pytest.raises(TelemetryError, match="unknown fields"):
            load_alert_rules(
                _rules_doc({"name": "r", "metric": "m", "surprise": 1})
            )

    @pytest.mark.parametrize(
        "bad",
        [
            {"name": ""},
            {"name": "r", "kind": "nope"},
            {"name": "r", "kind": "threshold"},  # no metric
            {"name": "r", "metric": "m", "field": "p42"},
            {"name": "r", "metric": "m", "op": "~"},
            {"name": "r", "metric": "m", "severity": "meh"},
        ],
    )
    def test_invalid_rules_rejected(self, bad):
        with pytest.raises(TelemetryError):
            AlertRule(**bad)


class TestThresholdRules:
    def test_counter_threshold_fires(self):
        rules = load_alert_rules(
            _rules_doc(
                {
                    "name": "hot",
                    "metric": "serving.queries",
                    "op": ">",
                    "value": 10,
                }
            )
        )
        alerts = evaluate_rules(rules, _snapshot())
        assert len(alerts) == 1
        assert alerts[0].rule == "hot"
        assert alerts[0].observed == 40.0
        assert alerts[0].labels == {"tenant": "west"}

    def test_quiet_rule_stays_quiet(self):
        rules = [
            AlertRule(name="q", metric="serving.queries", op=">", value=1e9)
        ]
        assert evaluate_rules(rules, _snapshot()) == []

    def test_label_subset_matching(self):
        rules = [
            AlertRule(
                name="east-only",
                metric="serving.queries",
                op=">",
                value=0,
                labels={"tenant": "east"},
            )
        ]
        assert evaluate_rules(rules, _snapshot()) == []

    def test_histogram_quantile_field(self):
        # The streaming sketch's p99 over three samples lands near the
        # median (~2us); the rule reads the published quantile, so the
        # threshold sits below it.
        rules = [
            AlertRule(
                name="slow-p99",
                metric="serving.query.latency",
                field="p99",
                op=">",
                value=1e-6,
                severity="critical",
            )
        ]
        alerts = evaluate_rules(rules, _snapshot())
        assert len(alerts) == 1
        assert alerts[0].severity == "critical"

    def test_histogram_max_field(self):
        rules = [
            AlertRule(
                name="slow-max",
                metric="serving.query.latency",
                field="max",
                op=">=",
                value=100e-6,
            )
        ]
        (alert,) = evaluate_rules(rules, _snapshot())
        assert alert.observed == pytest.approx(100e-6)

    def test_missing_field_is_not_a_fire(self):
        # Counters have no quantiles: the rule silently skips them.
        rules = [
            AlertRule(
                name="r", metric="serving.queries", field="p99",
                op=">", value=0,
            )
        ]
        assert evaluate_rules(rules, _snapshot()) == []

    def test_alert_as_dict_json_safe(self):
        rules = [
            AlertRule(name="hot", metric="serving.queries", op=">", value=1)
        ]
        (alert,) = evaluate_rules(rules, _snapshot())
        assert json.loads(json.dumps(alert.as_dict()))["rule"] == "hot"


class TestBurnRateRules:
    def test_fires_per_burning_tenant(self):
        rules = [
            AlertRule(
                name="burn", kind="burn-rate", op=">=", value=0.8,
                severity="critical",
            )
        ]
        alerts = evaluate_rules(rules, _snapshot())
        assert len(alerts) == 1
        assert alerts[0].labels == {"tenant": "west"}
        assert alerts[0].observed == pytest.approx(0.9)

    def test_zero_total_budget_skipped(self):
        telemetry = Telemetry()
        telemetry.registry.gauge("budget.eps.spent", tenant="t").set(0.0)
        telemetry.registry.gauge(
            "budget.eps.remaining", tenant="t"
        ).set(0.0)
        rules = [
            AlertRule(name="burn", kind="burn-rate", op=">=", value=0.0)
        ]
        assert evaluate_rules(rules, telemetry.snapshot()) == []


class TestCalibrationWatchdog:
    def test_band_validation(self):
        with pytest.raises(TelemetryError, match="band"):
            CalibrationWatchdog([(0, 1)], band=(2.0, 1.0))
        with pytest.raises(TelemetryError, match="min_epochs"):
            CalibrationWatchdog([(0, 1)], min_epochs=1)

    def test_unknown_pair_rejected(self):
        watchdog = CalibrationWatchdog([(0, 1)])
        with pytest.raises(TelemetryError, match="not one of"):
            watchdog.observe_value((7, 8), 1.0, 1.0)

    def test_pending_before_min_epochs(self):
        watchdog = CalibrationWatchdog([(0, 1)], min_epochs=3)
        watchdog.observe_value((0, 1), 5.0, 1.0)
        report = watchdog.report()
        assert report["pairs"][0]["status"] == "pending"
        assert report["drifting"] == []

    def test_ok_within_band(self):
        # Two observations with sample std exactly sqrt(2) against an
        # advertised scale of 1.0 (advertised std sqrt(2)): ratio 1.
        watchdog = CalibrationWatchdog([(0, 1)])
        watchdog.observe_value((0, 1), 0.0, 1.0, epoch=0)
        watchdog.observe_value((0, 1), 2.0, 1.0, epoch=1)
        report = watchdog.report()
        entry = report["pairs"][0]
        assert entry["status"] == "ok"
        assert entry["ratio"] == pytest.approx(
            math.sqrt(2.0) / math.sqrt(2.0)
        )

    def test_overdispersed_answers_drift(self):
        watchdog = CalibrationWatchdog([(0, 1)], band=(0.5, 2.0))
        watchdog.observe_value((0, 1), 0.0, 1.0, epoch=0)
        watchdog.observe_value((0, 1), 100.0, 1.0, epoch=1)
        report = watchdog.report()
        assert report["pairs"][0]["status"] == "drift"
        assert report["drifting"] == ["0->1"]

    def test_suspiciously_quiet_answers_drift(self):
        # Identical answers under a nonzero advertised scale mean the
        # noise is NOT being applied: also a calibration failure.
        watchdog = CalibrationWatchdog([(0, 1)], band=(0.5, 2.0))
        watchdog.observe_value((0, 1), 5.0, 1.0, epoch=0)
        watchdog.observe_value((0, 1), 5.0, 1.0, epoch=1)
        assert watchdog.report()["pairs"][0]["status"] == "drift"

    def test_deterministic_pairs(self):
        watchdog = CalibrationWatchdog([(0, 0)])
        watchdog.observe_value((0, 0), 0.0, 0.0, epoch=0)
        watchdog.observe_value((0, 0), 0.0, 0.0, epoch=1)
        assert watchdog.report()["pairs"][0]["status"] == "deterministic"
        watchdog.observe_value((0, 0), 1.0, 0.0, epoch=2)
        assert watchdog.report()["pairs"][0]["status"] == "drift"

    def test_publishes_metrics_when_wired(self):
        telemetry = Telemetry()
        watchdog = CalibrationWatchdog([(0, 1)], telemetry=telemetry)
        watchdog.observe_value((0, 1), 0.0, 1.0, epoch=0)
        watchdog.observe_value((0, 1), 100.0, 1.0, epoch=1)
        watchdog.report()
        names = {
            (m["name"], m["labels"].get("pair"))
            for m in telemetry.registry.snapshot()
        }
        assert ("calibration.ratio", "0->1") in names
        assert ("calibration.drift", "0->1") in names

    def test_alerts_render_drift_as_critical(self):
        watchdog = CalibrationWatchdog([(0, 1)])
        watchdog.observe_value((0, 1), 0.0, 1.0, epoch=0)
        watchdog.observe_value((0, 1), 100.0, 1.0, epoch=1)
        (alert,) = watchdog.alerts()
        assert alert.rule == "calibration-watchdog"
        assert alert.severity == "critical"
        assert alert.labels == {"pair": "0->1"}

    def test_seeded_service_is_calibrated(self):
        # End to end: refresh a live service with IDENTICAL weights
        # each epoch so probe dispersion is pure Laplace noise, and
        # check the observed/advertised std ratio lands in a generous
        # band.  Deterministic via the seed.
        graph = grid_graph(4, 4)
        service = DistanceService(graph, 1.0, Rng(7))
        pair = ((0, 0), (3, 3))
        watchdog = CalibrationWatchdog(
            [pair], band=(0.3, 3.0), min_epochs=2
        )
        watchdog.observe_epoch(service)
        for _ in range(19):
            service.refresh(graph)
            watchdog.observe_epoch(service)
        report = watchdog.report()
        entry = report["pairs"][0]
        assert entry["samples"] == 20
        assert entry["status"] == "ok", entry
        assert report["drifting"] == []
        assert watchdog.alerts() == []
