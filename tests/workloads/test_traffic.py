"""Unit tests for :mod:`repro.workloads.traffic`."""

from __future__ import annotations

import pytest

from repro import GraphError, Rng
from repro.algorithms import is_connected
from repro.workloads import (
    congestion_weights,
    geometric_road_network,
    grid_road_network,
    rush_hour_scenario,
)


class TestGridRoadNetwork:
    def test_shape(self, rng):
        network = grid_road_network(6, 8, rng)
        assert network.num_vertices == 48
        assert is_connected(network.graph)
        assert set(network.positions) == set(network.graph.vertices())

    def test_block_times_in_band(self, rng):
        network = grid_road_network(5, 5, rng, block_minutes=2.0, irregularity=0.3)
        for _, _, w in network.graph.edges():
            assert 2.0 * 0.7 <= w <= 2.0 * 1.3

    def test_invalid_args(self, rng):
        with pytest.raises(GraphError):
            grid_road_network(5, 5, rng, block_minutes=0.0)
        with pytest.raises(GraphError):
            grid_road_network(5, 5, rng, irregularity=1.0)


class TestGeometricRoadNetwork:
    def test_connected(self, rng):
        network = geometric_road_network(40, rng)
        assert is_connected(network.graph)

    def test_speed_scales_times(self, rng):
        slow = geometric_road_network(30, Rng(3), speed=1.0)
        fast = geometric_road_network(30, Rng(3), speed=2.0)
        for (u, v, w_slow), (_, _, w_fast) in zip(
            slow.graph.edges(), fast.graph.edges()
        ):
            assert w_fast == pytest.approx(w_slow / 2.0)

    def test_invalid_args(self, rng):
        with pytest.raises(GraphError):
            geometric_road_network(1, rng)
        with pytest.raises(GraphError):
            geometric_road_network(10, rng, speed=0.0)


class TestCongestion:
    def test_congestion_only_increases(self, rng):
        network = grid_road_network(5, 5, rng)
        congested = congestion_weights(network, rng, congestion_level=0.5)
        for (u, v, base), (_, _, after) in zip(
            network.graph.edges(), congested.edges()
        ):
            assert after >= base
            assert after <= base * 1.5 + 1e-12

    def test_cap_bounds_weights(self, rng):
        network = grid_road_network(5, 5, rng)
        congested = congestion_weights(
            network, rng, congestion_level=3.0, cap=2.5
        )
        for _, _, w in congested.edges():
            assert w <= 2.5

    def test_invalid_level(self, rng):
        network = grid_road_network(3, 3, rng)
        with pytest.raises(GraphError):
            congestion_weights(network, rng, congestion_level=-0.1)

    def test_cap_equal_to_min_base_time_clips_everything(self, rng):
        """With the cap at the minimum base time, every congested time
        (>= its base >= the minimum) is clipped to exactly the cap —
        the degenerate-but-valid M for Section 4.2."""
        network = grid_road_network(4, 4, rng, irregularity=0.2)
        min_base = min(w for _, _, w in network.graph.edges())
        congested = congestion_weights(
            network, rng, congestion_level=0.5, cap=min_base
        )
        for _, _, w in congested.edges():
            assert w == min_base


class TestRushHour:
    def test_hotspot_slows_inside_only(self, rng):
        network = grid_road_network(8, 8, rng, irregularity=0.0)
        slowed = rush_hour_scenario(
            network, rng, center=(1.0, 1.0), hot_radius=1.5, slowdown=3.0
        )
        inside_count = 0
        for u, v, base in network.graph.edges():
            after = slowed.weight(u, v)
            ux, uy = network.positions[u]
            vx, vy = network.positions[v]
            inside = (
                (ux - 1) ** 2 + (uy - 1) ** 2 <= 1.5**2
                and (vx - 1) ** 2 + (vy - 1) ** 2 <= 1.5**2
            )
            if inside:
                inside_count += 1
                assert after > base * 2.0  # ~3x with ±10% jitter
            else:
                assert after == base
        assert inside_count > 0

    def test_hotspot_covering_zero_edges_changes_nothing(self, rng):
        """A hot-spot placed off the map covers no edges; the scenario
        must return the base weights untouched (and not crash on the
        empty hot set)."""
        network = grid_road_network(4, 4, rng)
        slowed = rush_hour_scenario(
            network, rng, center=(100.0, 100.0), hot_radius=1.0
        )
        for u, v, base in network.graph.edges():
            assert slowed.weight(u, v) == base

    def test_invalid_args(self, rng):
        network = grid_road_network(3, 3, rng)
        with pytest.raises(GraphError):
            rush_hour_scenario(network, rng, (0, 0), hot_radius=0.0)
        with pytest.raises(GraphError):
            rush_hour_scenario(network, rng, (0, 0), 1.0, slowdown=0.5)
