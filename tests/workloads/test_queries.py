"""Unit tests for :mod:`repro.workloads.queries`."""

from __future__ import annotations

import pytest

from repro import GraphError, WeightedGraph
from repro.algorithms import bfs_hop_distances
from repro.graphs import generators
from repro.workloads import (
    fixed_source_pairs,
    pairs_by_hop_bucket,
    uniform_pairs,
)


class TestUniformPairs:
    def test_count_and_distinctness(self, grid5, rng):
        pairs = uniform_pairs(grid5, 50, rng)
        assert len(pairs) == 50
        assert all(s != t for s, t in pairs)
        assert all(grid5.has_vertex(s) and grid5.has_vertex(t) for s, t in pairs)

    def test_too_small_graph(self, rng):
        g = WeightedGraph()
        g.add_vertex(0)
        with pytest.raises(GraphError):
            uniform_pairs(g, 1, rng)


class TestFixedSource:
    def test_all_targets(self, grid5):
        pairs = fixed_source_pairs(grid5, (0, 0))
        assert len(pairs) == 24
        assert all(s == (0, 0) for s, _ in pairs)

    def test_sampled_targets(self, grid5, rng):
        pairs = fixed_source_pairs(grid5, (0, 0), count=5, rng=rng)
        assert len(pairs) == 5

    def test_sampling_requires_rng(self, grid5):
        with pytest.raises(GraphError):
            fixed_source_pairs(grid5, (0, 0), count=5)


class TestHopBuckets:
    def test_buckets_respected(self, rng):
        g = generators.grid_graph(8, 8)
        buckets = [(1, 2), (5, 8)]
        result = pairs_by_hop_bucket(g, rng, per_bucket=10, buckets=buckets)
        for bucket, pairs in result.items():
            lo, hi = bucket
            assert len(pairs) == 10
            for s, t in pairs:
                hops = bfs_hop_distances(g, s)[t]
                assert lo <= hops <= hi

    def test_unfillable_bucket_comes_back_short(self, rng):
        g = generators.path_graph(4)  # max hops = 3
        result = pairs_by_hop_bucket(
            g, rng, per_bucket=5, buckets=[(10, 20)]
        )
        assert result[(10, 20)] == []

    def test_invalid_bucket(self, grid5, rng):
        with pytest.raises(GraphError):
            pairs_by_hop_bucket(grid5, rng, 1, [(0, 2)])
        with pytest.raises(GraphError):
            pairs_by_hop_bucket(grid5, rng, 1, [(3, 2)])
