"""Property-based tests (hypothesis) for the graph substrate."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Rng, WeightedGraph
from repro.graphs import generators
from repro.graphs.io import graph_from_json, graph_to_json


@st.composite
def random_graphs(draw) -> WeightedGraph:
    """A connected random graph with arbitrary nonnegative weights."""
    n = draw(st.integers(min_value=2, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    p = draw(st.floats(min_value=0.0, max_value=0.5))
    rng = Rng(seed)
    graph = generators.erdos_renyi_graph(n, p, rng)
    return generators.assign_random_weights(graph, rng, 0.0, 10.0)


@st.composite
def random_trees(draw) -> WeightedGraph:
    n = draw(st.integers(min_value=1, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = Rng(seed)
    tree = generators.random_tree(n, rng)
    return generators.assign_random_weights(tree, rng, 0.0, 5.0)


class TestGraphInvariants:
    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_json_round_trip_preserves_everything(self, graph):
        restored = graph_from_json(graph_to_json(graph))
        assert restored.num_vertices == graph.num_vertices
        assert restored.num_edges == graph.num_edges
        assert restored.weights() == graph.weights()

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_copy_equals_original(self, graph):
        clone = graph.copy()
        assert clone.weights() == graph.weights()
        assert clone.vertex_list() == graph.vertex_list()

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_weight_vector_round_trip(self, graph):
        vector = graph.weight_vector()
        rebuilt = graph.with_weights(vector)
        assert rebuilt.weights() == graph.weights()

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_total_weight_equals_vector_sum(self, graph):
        assert graph.total_weight() == sum(graph.weight_vector())

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_degrees_sum_to_twice_edges(self, graph):
        degree_sum = sum(graph.degree(v) for v in graph.vertices())
        assert degree_sum == 2 * graph.num_edges


class TestTreeInvariants:
    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_tree_edge_count(self, tree):
        assert tree.num_edges == tree.num_vertices - 1

    @given(random_trees())
    @settings(max_examples=30, deadline=None)
    def test_rooted_tree_path_weight_matches_distance(self, tree):
        from repro.graphs import RootedTree

        rooted = RootedTree(tree, 0)
        for v in list(tree.vertices())[:10]:
            path = rooted.path(0, v)
            assert tree.path_weight(path) == rooted.distance_from_root(v)

    @given(random_trees())
    @settings(max_examples=30, deadline=None)
    def test_splitter_satisfies_algorithm1_condition(self, tree):
        from repro.graphs import RootedTree

        rooted = RootedTree(tree, 0)
        v_star = rooted.splitter()
        n = tree.num_vertices
        assert rooted.subtree_size(v_star) > n / 2
        for child in rooted.children(v_star):
            assert rooted.subtree_size(child) <= n / 2

    @given(random_trees())
    @settings(max_examples=30, deadline=None)
    def test_lca_is_common_ancestor(self, tree):
        from repro.graphs import RootedTree

        rooted = RootedTree(tree, 0)
        vertices = list(tree.vertices())
        x, y = vertices[0], vertices[-1]
        z = rooted.lca(x, y)
        assert z in rooted.path_to_root(x)
        assert z in rooted.path_to_root(y)
