"""Property-based tests (hypothesis) for the DP layer and mechanisms."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PrivacyParams, Rng
from repro.dp import (
    advanced_composition,
    basic_composition,
    bounds,
    l1_distance,
    weights_are_neighboring,
)
from repro.dp.composition import advanced_composition_epsilon_per_query

eps_strategy = st.floats(min_value=1e-3, max_value=5.0)
delta_strategy = st.floats(min_value=1e-12, max_value=0.1)
k_strategy = st.integers(min_value=1, max_value=5000)


class TestNeighboringProperties:
    @given(
        st.dictionaries(
            st.integers(0, 20),
            st.floats(min_value=0, max_value=100),
            max_size=20,
        )
    )
    @settings(max_examples=50)
    def test_l1_distance_to_self_is_zero(self, weights):
        assert l1_distance(weights, dict(weights)) == 0.0
        assert weights_are_neighboring(weights, dict(weights))

    @given(
        st.dictionaries(
            st.integers(0, 10),
            st.floats(min_value=0, max_value=10),
            max_size=10,
        ),
        st.dictionaries(
            st.integers(0, 10),
            st.floats(min_value=0, max_value=10),
            max_size=10,
        ),
    )
    @settings(max_examples=50)
    def test_l1_symmetry(self, w1, w2):
        assert l1_distance(w1, w2) == l1_distance(w2, w1)


class TestCompositionProperties:
    @given(eps_strategy, k_strategy)
    @settings(max_examples=50)
    def test_basic_composition_linear(self, eps, k):
        total = basic_composition(PrivacyParams(eps), k)
        assert math.isclose(total.eps, eps * k, rel_tol=1e-9)

    @given(eps_strategy, st.integers(2, 1000), delta_strategy)
    @settings(max_examples=50)
    def test_advanced_composition_positive_overhead(self, eps, k, delta):
        total = advanced_composition(PrivacyParams(eps), k, delta)
        assert total.eps > eps  # composing more than one query costs

    @given(
        st.floats(min_value=0.01, max_value=3.0),
        st.integers(min_value=1, max_value=10000),
        st.floats(min_value=1e-10, max_value=0.01),
    )
    @settings(max_examples=50, deadline=None)
    def test_inverse_composition_consistent(self, total_eps, k, delta):
        eps_q = advanced_composition_epsilon_per_query(total_eps, k, delta)
        assert eps_q > 0
        recomposed = advanced_composition(PrivacyParams(eps_q), k, delta)
        assert recomposed.eps <= total_eps * (1 + 1e-6)


class TestBoundProperties:
    @given(
        st.integers(min_value=2, max_value=10**6),
        eps_strategy,
        st.floats(min_value=0.001, max_value=0.5),
    )
    @settings(max_examples=50)
    def test_tree_bounds_monotone_in_v(self, v, eps, gamma):
        smaller = bounds.tree_single_source_error(v, eps, gamma)
        larger = bounds.tree_single_source_error(2 * v, eps, gamma)
        assert larger >= smaller

    @given(
        st.integers(min_value=1, max_value=1000),
        st.integers(min_value=1, max_value=10**6),
        eps_strategy,
        st.floats(min_value=0.001, max_value=0.5),
    )
    @settings(max_examples=50)
    def test_shortest_path_bound_linear_in_hops(self, hops, edges, eps, gamma):
        one = bounds.shortest_path_error(hops, edges, eps, gamma)
        two = bounds.shortest_path_error(2 * hops, edges, eps, gamma)
        assert math.isclose(two, 2 * one, rel_tol=1e-9)

    @given(eps_strategy, st.floats(min_value=0.0, max_value=0.3))
    @settings(max_examples=50)
    def test_reconstruction_bound_in_unit_interval(self, eps, delta):
        alpha = bounds.reconstruction_lower_bound(101, eps, delta)
        assert 0.0 <= alpha <= 100.0

    @given(eps_strategy)
    @settings(max_examples=50)
    def test_row_recovery_at_most_half(self, eps):
        assert 0.0 < bounds.row_recovery_bound(eps, 0.0) <= 0.5


class TestMechanismProperties:
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.floats(min_value=0.1, max_value=10.0),
        st.lists(
            st.floats(min_value=-100, max_value=100),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=50)
    def test_laplace_mechanism_preserves_shape(self, seed, eps, values):
        from repro import LaplaceMechanism

        mech = LaplaceMechanism(1.0, eps, Rng(seed))
        released = mech.release_vector(values)
        assert released.shape == (len(values),)
        # Noise is finite.
        assert all(math.isfinite(x) for x in released)
