"""Property-based tests for the Appendix A hierarchy's internals and
the tree release's recursion plan."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Rng, release_path_hierarchy, release_tree_single_source
from repro.graphs import RootedTree, generators


class TestDyadicDecomposition:
    @given(
        st.integers(min_value=2, max_value=600),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_prefix_decomposition_covers_exactly(self, n, seed):
        """The segments summed for prefix(x) tile [0, x) exactly: with
        zero noise... we can't zero the noise, but determinism lets us
        verify through exactness on integer weights: the estimate of
        prefix(x) differs from the true prefix by the same noise for
        repeated queries (consistency), and the number of terms is at
        most the number of levels."""
        graph = generators.path_graph(n)
        release = release_path_hierarchy(graph, eps=1.0, rng=Rng(seed))
        for position in {0, 1, n // 2, n - 1}:
            first, terms1 = release.prefix_estimate(position)
            second, terms2 = release.prefix_estimate(position)
            assert first == second  # deterministic post-processing
            assert terms1 == terms2 <= release.num_levels

    @given(
        st.integers(min_value=3, max_value=300),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_distance_additivity_along_path(self, n, seed):
        """prefix consistency: d(a, c) = d(a, b) + d(b, c) for ordered
        a <= b <= c — the release is built from prefix differences, so
        additivity must hold *exactly* (not just approximately)."""
        graph = generators.path_graph(n)
        release = release_path_hierarchy(graph, eps=1.0, rng=Rng(seed))
        a, b, c = 0, n // 2, n - 1
        lhs = release.distance(a, c)
        rhs = release.distance(a, b) + release.distance(b, c)
        assert abs(lhs - rhs) < 1e-9

    @given(
        st.integers(min_value=2, max_value=400),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_segment_count_under_2e(self, n, seed):
        graph = generators.path_graph(n)
        release = release_path_hierarchy(graph, eps=1.0, rng=Rng(seed))
        assert release.num_segments < 2 * max(n - 1, 1)


class TestRecursionPlanProperties:
    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_plan_depth_public_and_reproducible(self, n, seed):
        """The recursion depth depends only on topology: two releases
        of the same tree (different noise) report identical depth and
        query counts."""
        rng = Rng(seed)
        tree = generators.random_tree(n, rng)
        r1 = release_tree_single_source(tree, eps=1.0, rng=rng, root=0)
        r2 = release_tree_single_source(tree, eps=1.0, rng=rng, root=0)
        assert r1.recursion_depth == r2.recursion_depth
        assert r1.num_queries == r2.num_queries

    @given(
        st.integers(min_value=2, max_value=200),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_weights_do_not_change_plan(self, n, seed):
        """Reweighting the same topology leaves the (public) plan
        unchanged — required for the privacy argument."""
        rng = Rng(seed)
        tree = generators.random_tree(n, rng)
        heavy = generators.assign_random_weights(tree, rng, 50.0, 100.0)
        r1 = release_tree_single_source(tree, eps=1.0, rng=rng, root=0)
        r2 = release_tree_single_source(heavy, eps=1.0, rng=rng, root=0)
        assert r1.recursion_depth == r2.recursion_depth
        assert r1.num_queries == r2.num_queries
