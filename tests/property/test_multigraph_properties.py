"""Property-based tests for multigraphs and the gadget encodings."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Rng, WeightedMultiGraph
from repro.algorithms import dijkstra_path
from repro.core import lower_bounds as lb


@st.composite
def random_multigraphs(draw) -> WeightedMultiGraph:
    """A connected-ish multigraph over a path backbone with extra
    random parallel edges."""
    n = draw(st.integers(min_value=2, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = Rng(seed)
    mg = WeightedMultiGraph()
    for i in range(1, n):
        mg.add_edge(i - 1, i, rng.uniform(0.0, 5.0))
    extra = draw(st.integers(min_value=0, max_value=15))
    for _ in range(extra):
        u = rng.integer(0, n)
        v = rng.integer(0, n)
        if u != v:
            mg.add_edge(u, v, rng.uniform(0.0, 5.0))
    return mg


class TestProjectionProperties:
    @given(random_multigraphs())
    @settings(max_examples=40, deadline=None)
    def test_projection_keeps_min_weight_per_pair(self, mg):
        simple, chosen = mg.min_weight_projection()
        for (u, v), key in chosen.items():
            parallel = mg.parallel_keys(u, v)
            assert mg.weight(key) == min(mg.weight(k) for k in parallel)
            assert simple.weight(u, v) == mg.weight(key)

    @given(random_multigraphs())
    @settings(max_examples=40, deadline=None)
    def test_projection_vertex_set_preserved(self, mg):
        simple, _ = mg.min_weight_projection()
        assert set(simple.vertices()) == set(mg.vertices())

    @given(random_multigraphs())
    @settings(max_examples=30, deadline=None)
    def test_to_simple_preserves_shortest_distance(self, mg):
        """Subdivision conversion preserves s-t distances exactly."""
        simple_min, _ = mg.min_weight_projection()
        subdivided, _ = mg.to_simple()
        n = mg.num_vertices
        _, d1 = dijkstra_path(simple_min, 0, n - 1)
        _, d2 = dijkstra_path(subdivided, 0, n - 1)
        assert abs(d1 - d2) < 1e-9


class TestGadgetEncodingProperties:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_path_encoding_round_trips_through_exact_solver(self, bits):
        gadget = lb.parallel_path_gadget(len(bits))
        keys = lb.exact_gadget_path(gadget, lb.path_weights_from_bits(bits))
        assert lb.decode_path_bits(len(bits), keys) == bits

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_star_encoding_round_trips_through_exact_mst(self, bits):
        gadget = lb.star_gadget(len(bits))
        tree = lb.exact_gadget_mst(gadget, lb.star_weights_from_bits(bits))
        assert lb.decode_star_bits(len(bits), tree) == bits

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_hourglass_encoding_round_trips(self, bits):
        gadget = lb.hourglass_gadget(len(bits))
        matching = lb.exact_gadget_matching(
            gadget, lb.hourglass_weights_from_bits(bits)
        )
        assert lb.decode_matching_bits(len(bits), matching) == bits

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_encoded_optimum_is_zero(self, bits):
        """Every encoding admits a 0-weight solution (the secret)."""
        gadget = lb.parallel_path_gadget(len(bits))
        weights = lb.path_weights_from_bits(bits)
        concrete = gadget.with_weights(weights)
        keys = lb.exact_gadget_path(gadget, weights)
        assert concrete.path_weight(keys) == 0.0
