"""Property-based tests for the core releases: structural invariants
that must hold for every input graph and every seed."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Rng,
    release_private_mst,
    release_private_paths,
    release_synthetic_graph,
    release_tree_all_pairs,
    release_tree_single_source,
)
from repro.graphs import RootedTree, generators


@st.composite
def graphs_and_rngs(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = Rng(seed)
    graph = generators.erdos_renyi_graph(n, 0.2, rng)
    graph = generators.assign_random_weights(graph, rng, 0.0, 5.0)
    return graph, rng


@st.composite
def trees_and_rngs(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = Rng(seed)
    tree = generators.random_tree(n, rng)
    tree = generators.assign_random_weights(tree, rng, 0.0, 5.0)
    return tree, rng


class TestPrivatePathInvariants:
    @given(graphs_and_rngs(), st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_released_paths_live_in_public_topology(self, graph_rng, eps):
        graph, rng = graph_rng
        release = release_private_paths(graph, eps, 0.1, rng)
        vertices = graph.vertex_list()
        paths = release.paths_from(vertices[0])
        for target, path in paths.items():
            assert graph.is_path(path)
            assert path[0] == vertices[0]
            assert path[-1] == target

    @given(graphs_and_rngs())
    @settings(max_examples=30, deadline=None)
    def test_released_graph_nonnegative(self, graph_rng):
        graph, rng = graph_rng
        release = release_private_paths(graph, 0.5, 0.1, rng)
        assert (release.graph.weight_vector() >= 0).all()


class TestSyntheticGraphInvariants:
    @given(graphs_and_rngs())
    @settings(max_examples=30, deadline=None)
    def test_topology_identical(self, graph_rng):
        graph, rng = graph_rng
        release = release_synthetic_graph(graph, 1.0, rng)
        assert release.graph.edge_list() == graph.edge_list()
        assert release.graph.vertex_list() == graph.vertex_list()


class TestTreeReleaseInvariants:
    @given(trees_and_rngs(), st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_root_estimate_exactly_zero(self, tree_rng, eps):
        tree, rng = tree_rng
        release = release_tree_single_source(tree, eps=eps, rng=rng, root=0)
        assert release.distance_from_root(0) == 0.0

    @given(trees_and_rngs())
    @settings(max_examples=30, deadline=None)
    def test_every_vertex_estimated(self, tree_rng):
        tree, rng = tree_rng
        release = release_tree_single_source(tree, eps=1.0, rng=rng, root=0)
        estimates = release.all_distances()
        assert set(estimates) == set(tree.vertices())

    @given(trees_and_rngs())
    @settings(max_examples=20, deadline=None)
    def test_all_pairs_consistent_with_lca_combination(self, tree_rng):
        tree, rng = tree_rng
        if tree.num_vertices < 2:
            return
        rooted = RootedTree(tree, 0)
        release = release_tree_all_pairs(rooted, eps=1.0, rng=rng)
        single = release.single_source
        vertices = tree.vertex_list()
        x, y = vertices[0], vertices[-1]
        z = rooted.lca(x, y)
        expected = (
            single.distance_from_root(x)
            + single.distance_from_root(y)
            - 2 * single.distance_from_root(z)
        )
        assert abs(release.distance(x, y) - expected) < 1e-9

    @given(trees_and_rngs())
    @settings(max_examples=30, deadline=None)
    def test_query_budget_2v(self, tree_rng):
        tree, rng = tree_rng
        release = release_tree_single_source(tree, eps=1.0, rng=rng, root=0)
        assert release.num_queries <= 2 * tree.num_vertices


class TestMstReleaseInvariants:
    @given(graphs_and_rngs())
    @settings(max_examples=30, deadline=None)
    def test_release_is_spanning_tree_of_public_topology(self, graph_rng):
        graph, rng = graph_rng
        release = release_private_mst(graph, eps=1.0, rng=rng)
        assert len(release.tree_edges) == graph.num_vertices - 1
        for u, v in release.tree_edges:
            assert graph.has_edge(u, v)

    @given(graphs_and_rngs())
    @settings(max_examples=30, deadline=None)
    def test_true_weight_never_below_optimum(self, graph_rng):
        from repro.algorithms import kruskal_mst, spanning_tree_weight

        graph, rng = graph_rng
        optimum = spanning_tree_weight(graph, kruskal_mst(graph))
        release = release_private_mst(graph, eps=1.0, rng=rng)
        assert release.true_weight(graph) >= optimum - 1e-9
